"""Figure 1: the life-cycle emissions shift from operational to embodied.

Regenerates the iPhone 3GS vs iPhone 11 bars: a decade of efficiency work
cut the operational footprint ~2.5x, while manufacturing complexity pushed
the embodied share from ~45% to ~79% of the device total.
"""

from __future__ import annotations

from repro.data.devices import device_report
from repro.experiments.base import (
    Check,
    ExperimentResult,
    check_in_band,
)
from repro.reporting.figures import FigureData, Series

EXPERIMENT_ID = "fig1"
TITLE = "Life-cycle footprint shift: iPhone 3GS (2009) vs iPhone 11 (2019)"


def run() -> ExperimentResult:
    """Regenerate Figure 1 (left) and check the paper's shares."""
    old = device_report("iphone3gs")
    new = device_report("iphone11")
    devices = (old, new)

    figure = FigureData(
        title="Figure 1 (left): life-cycle footprint by phase",
        x_label="device",
        y_label="kg CO2e",
        series=(
            Series(
                "manufacturing",
                tuple(d.name for d in devices),
                tuple(d.manufacturing_kg for d in devices),
            ),
            Series(
                "operational use",
                tuple(d.name for d in devices),
                tuple(d.use_kg for d in devices),
            ),
            Series(
                "transport + end-of-life",
                tuple(d.name for d in devices),
                tuple(
                    d.total_kg * (d.transport_share + d.eol_share) for d in devices
                ),
            ),
        ),
    )

    operational_reduction = old.use_kg / new.use_kg
    checks = (
        check_in_band(
            "iPhone 3GS manufacturing share",
            old.manufacturing_share, 0.40, 0.50, paper="45%",
        ),
        check_in_band(
            "iPhone 3GS operational share", old.use_share, 0.44, 0.54, paper="49%"
        ),
        check_in_band(
            "iPhone 11 manufacturing share",
            new.manufacturing_share, 0.74, 0.84, paper="79%",
        ),
        check_in_band(
            "iPhone 11 operational share", new.use_share, 0.12, 0.22, paper="17%"
        ),
        check_in_band(
            "operational footprint reduction over the decade",
            operational_reduction, 2.0, 3.0, paper="2.5x",
        ),
        Check(
            name="dominant phase flipped from use to manufacturing",
            passed=(old.use_kg > old.manufacturing_kg)
            and (new.manufacturing_kg > new.use_kg),
            observed=(
                f"3GS use {old.use_kg:.1f} vs manuf {old.manufacturing_kg:.1f}; "
                f"11 manuf {new.manufacturing_kg:.1f} vs use {new.use_kg:.1f}"
            ),
            expected="use-dominated in 2009, manufacturing-dominated in 2019",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=(figure,),
        reference={
            "iphone3gs shares": "45% manufacturing / 49% use / 6% rest",
            "iphone11 shares": "79% manufacturing / 17% use / 4% rest",
            "operational reduction": "2.5x",
        },
        checks=checks,
    )
