"""Attributing a shared platform's footprint across workloads.

Eq. 1 charges a workload ``T/LT`` of the embodied footprint — but when many
workloads share the hardware, how the idle remainder is attributed becomes
a policy choice.  This module implements the standard options so carbon
accounting across co-located applications (the Reuse tenet's
"co-locating apps for utilization") is explicit:

* **time** — embodied split by occupancy time; idle time is unattributed
  (the platform owner absorbs it).
* **time_grossed_up** — embodied split by occupancy share of *busy* time,
  so the full embodied footprint lands on the workloads (idle overhead is
  socialized across them).
* **energy** — both embodied and operational split by energy share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ParameterError, UnknownEntryError
from repro.core.parameters import require_non_negative, require_positive

TIME = "time"
TIME_GROSSED_UP = "time_grossed_up"
ENERGY = "energy"

_POLICIES = (TIME, TIME_GROSSED_UP, ENERGY)


@dataclass(frozen=True)
class WorkloadUsage:
    """One workload's use of the shared platform over the period.

    Attributes:
        name: Workload label.
        busy_hours: Hours the workload occupied the hardware.
        energy_kwh: Energy it consumed.
    """

    name: str
    busy_hours: float
    energy_kwh: float

    def __post_init__(self) -> None:
        require_non_negative("busy_hours", self.busy_hours)
        require_non_negative("energy_kwh", self.energy_kwh)


@dataclass(frozen=True)
class Attribution:
    """One workload's attributed emissions (grams CO2)."""

    name: str
    operational_g: float
    embodied_g: float

    @property
    def total_g(self) -> float:
        return self.operational_g + self.embodied_g


def attribute(
    usages: tuple[WorkloadUsage, ...],
    *,
    embodied_g: float,
    period_hours: float,
    ci_use_g_per_kwh: float,
    lifetime_hours: float,
    policy: str = TIME,
) -> tuple[Attribution, ...]:
    """Split a shared platform's period emissions across workloads.

    Args:
        usages: Per-workload occupancy and energy over the period.
        embodied_g: The platform's full embodied footprint.
        period_hours: Length of the accounting period.
        ci_use_g_per_kwh: Use-phase carbon intensity.
        lifetime_hours: Platform lifetime (for the Eq. 1 amortization).
        policy: Attribution policy (see module docstring).

    Raises:
        ParameterError: If occupancy exceeds the period (single-tenant
            occupancy model) or the policy is unknown.
    """
    if policy not in _POLICIES:
        raise UnknownEntryError("attribution policy", policy, _POLICIES)
    require_positive("period_hours", period_hours)
    require_positive("lifetime_hours", lifetime_hours)
    require_non_negative("embodied_g", embodied_g)
    require_non_negative("ci_use_g_per_kwh", ci_use_g_per_kwh)
    busy_total = sum(usage.busy_hours for usage in usages)
    if busy_total > period_hours * (1 + 1e-9):
        raise ParameterError(
            f"workloads occupy {busy_total:.1f} h of a "
            f"{period_hours:.1f} h period"
        )
    energy_total = sum(usage.energy_kwh for usage in usages)
    period_embodied = embodied_g * period_hours / lifetime_hours

    results = []
    for usage in usages:
        operational = usage.energy_kwh * ci_use_g_per_kwh
        if policy == TIME:
            share = usage.busy_hours / period_hours
        elif policy == TIME_GROSSED_UP:
            share = usage.busy_hours / busy_total if busy_total else 0.0
        else:  # ENERGY
            share = usage.energy_kwh / energy_total if energy_total else 0.0
        results.append(
            Attribution(
                name=usage.name,
                operational_g=operational,
                embodied_g=period_embodied * share,
            )
        )
    return tuple(results)


def unattributed_embodied_g(
    usages: tuple[WorkloadUsage, ...],
    *,
    embodied_g: float,
    period_hours: float,
    lifetime_hours: float,
) -> float:
    """The idle-time embodied carbon the TIME policy leaves unattributed.

    This is the quantity consolidation (Reuse) drives toward zero: carbon
    manufactured but serving nobody.
    """
    require_positive("period_hours", period_hours)
    busy_total = sum(usage.busy_hours for usage in usages)
    period_embodied = embodied_g * period_hours / lifetime_hours
    idle_fraction = max(0.0, 1.0 - busy_total / period_hours)
    return period_embodied * idle_fraction
