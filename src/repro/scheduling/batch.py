"""Vectorized schedule evaluation: (window × job set × policy) as columns.

One :class:`ScheduleBatch` row is one *scenario* — a trace window offset,
a policy, a fleet profile, and a fixed-size job set — and the evaluator
simulates every row simultaneously as numpy columns.  Candidate start
hours are priced with **prefix sums** over the window's carbon intensity
(one subtraction per candidate instead of the pinned simulator's
O(window²) per-hour rescans), while the *chosen* placement's emissions
are re-accumulated chronologically with exactly the scalar reference's
association, so a vectorized scenario reproduces
:func:`repro.scheduling.policies.simulate_fleet` bit for bit on
exact-arithmetic inputs.

The evaluator dispatches through the kernel-backend registry: the
backend's dtype selects the compute precision (``float32`` drifts within
its documented tolerance; ``reference``/``fused`` are float64 and
bit-identical), and its ``cache_token`` namespaces cached results, so
:func:`evaluate_schedule_cached` can share the engine's
:class:`~repro.engine.cache.EvaluationCache` without ever colliding with
Eq. 1-8 entries (schedule keys hash a disjoint, domain-prefixed layout).

Failure semantics: a scenario whose jobs cannot all be placed is *not* an
error here (one bad draw must not kill a 10k-window sweep) — its
``feasible`` series entry is 0 and every other series is NaN.  The scalar
reference raises :class:`~repro.core.errors.ConstraintError` instead;
:func:`verify_schedule_batch` maps between the two conventions when
cross-checking.
"""

from __future__ import annotations

import hashlib
import sys
import threading
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConstraintError, ParameterError, ValidationError
from repro.core.intensity import CarbonIntensityTrace
from repro.engine.backends import KernelBackend, resolve_backend
from repro.engine.cache import DEFAULT_CACHE, EvaluationCache
from repro.obs.context import current_context
from repro.scheduling.fleet import FleetJob, FleetSpec, Machine
from repro.scheduling.policies import (
    DEFAULT_THRESHOLD_QUANTILE,
    POLICY_NAMES,
    WATTS_PER_KW,
    simulate_fleet,
)

#: Policy name -> integer id stored in the ``policy_id`` column.
POLICY_IDS: dict[str, int] = {name: i for i, name in enumerate(POLICY_NAMES)}

_CARBON_LOWEST_ID = POLICY_IDS["carbon_lowest"]
_CARBON_WAITING_ID = POLICY_IDS["carbon_waiting"]

#: Per-scenario (rows,) columns of a :class:`ScheduleBatch`.
SCENARIO_FIELDS: tuple[str, ...] = (
    "window_offset",
    "policy_id",
    "capacity",
    "idle_power_w",
    "active_power_w",
)

#: Per-job (rows, jobs) columns of a :class:`ScheduleBatch`.
JOB_FIELDS: tuple[str, ...] = (
    "arrival_hour",
    "duration_hours",
    "energy_kwh",
    "deadline_hour",
    "preemptible",
    "overhead_kwh",
)


@dataclass(frozen=True)
class ScheduleScenario:
    """One (window, policy, job set, fleet) scenario, pre-vectorization."""

    window_offset: int
    policy: str
    jobs: tuple[FleetJob, ...]
    fleet: FleetSpec


@dataclass(frozen=True)
class ScheduleBatch:
    """SoA of scheduling scenarios sharing one trace and horizon.

    Scenario columns are ``(rows,)`` float64; job columns are
    ``(rows, jobs)`` float64.  All arrays are validated and frozen
    read-only at construction, mirroring the engine's ``ScenarioBatch``
    discipline: a constructed batch is always evaluable.

    Attributes:
        trace_g_per_kwh: One period of the shared intensity trace.
        horizon_hours: Window length; every deadline must fit inside it.
        threshold_quantile: ``carbon_waiting``'s green-start quantile.
    """

    window_offset: np.ndarray
    policy_id: np.ndarray
    capacity: np.ndarray
    idle_power_w: np.ndarray
    active_power_w: np.ndarray
    arrival_hour: np.ndarray
    duration_hours: np.ndarray
    energy_kwh: np.ndarray
    deadline_hour: np.ndarray
    preemptible: np.ndarray
    overhead_kwh: np.ndarray
    trace_g_per_kwh: tuple[float, ...]
    horizon_hours: int
    threshold_quantile: float = DEFAULT_THRESHOLD_QUANTILE

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "trace_g_per_kwh",
            tuple(float(v) for v in self.trace_g_per_kwh),
        )
        if not self.trace_g_per_kwh:
            raise ParameterError("a schedule batch needs a non-empty trace")
        if min(self.trace_g_per_kwh) < 0:
            raise ParameterError("carbon intensities must be non-negative")
        if self.horizon_hours < 1:
            raise ParameterError(
                f"horizon_hours must be >= 1, got {self.horizon_hours}"
            )
        if not 0.0 <= self.threshold_quantile <= 1.0:
            raise ParameterError(
                "threshold_quantile must be in [0, 1], got "
                f"{self.threshold_quantile}"
            )
        for name in SCENARIO_FIELDS + JOB_FIELDS:
            column = np.ascontiguousarray(
                getattr(self, name), dtype=np.float64
            )
            expected_ndim = 1 if name in SCENARIO_FIELDS else 2
            if column.ndim != expected_ndim:
                raise ParameterError(
                    f"column {name!r} must be {expected_ndim}-dimensional, "
                    f"got shape {column.shape}"
                )
            if not np.all(np.isfinite(column)):
                raise ParameterError(f"column {name!r} contains NaN/Inf")
            column.setflags(write=False)
            object.__setattr__(self, name, column)
        rows = self.window_offset.shape[0]
        if rows == 0:
            raise ParameterError("a schedule batch needs at least one row")
        jobs = self.arrival_hour.shape[1] if self.arrival_hour.ndim == 2 else 0
        if jobs == 0:
            raise ParameterError("a schedule batch needs at least one job")
        for name in SCENARIO_FIELDS:
            if getattr(self, name).shape != (rows,):
                raise ParameterError(
                    f"column {name!r} has shape {getattr(self, name).shape}, "
                    f"expected ({rows},)"
                )
        for name in JOB_FIELDS:
            if getattr(self, name).shape != (rows, jobs):
                raise ParameterError(
                    f"column {name!r} has shape {getattr(self, name).shape}, "
                    f"expected ({rows}, {jobs})"
                )
        self._validate_domains()

    def _validate_domains(self) -> None:
        for name in ("window_offset", "policy_id", "capacity"):
            column = getattr(self, name)
            if not np.array_equal(column, np.floor(column)):
                raise ParameterError(f"column {name!r} must be integer-valued")
        if np.any(self.window_offset < 0):
            raise ParameterError("window_offset must be non-negative")
        if np.any(
            (self.policy_id < 0) | (self.policy_id >= len(POLICY_NAMES))
        ):
            raise ParameterError(
                f"policy_id must be in [0, {len(POLICY_NAMES)})"
            )
        if np.any(self.capacity < 1):
            raise ParameterError("capacity must be >= 1 slot")
        if np.any(self.idle_power_w < 0) or np.any(self.active_power_w < 0):
            raise ParameterError("machine power must be non-negative")
        for name in ("arrival_hour", "deadline_hour"):
            column = getattr(self, name)
            if not np.array_equal(column, np.floor(column)):
                raise ParameterError(f"column {name!r} must be integer-valued")
        if np.any(self.arrival_hour < 0):
            raise ParameterError("arrival_hour must be non-negative")
        if np.any(self.duration_hours <= 0):
            raise ParameterError("duration_hours must be positive")
        if np.any(self.energy_kwh < 0) or np.any(self.overhead_kwh < 0):
            raise ParameterError("job energy must be non-negative")
        if not np.all(np.isin(self.preemptible, (0.0, 1.0))):
            raise ParameterError("preemptible must be 0 or 1")
        slots = np.ceil(self.duration_hours)
        if np.any(self.deadline_hour < self.arrival_hour + slots):
            raise ParameterError(
                "deadline_hour must allow ceil(duration) slots after arrival"
            )
        if np.any(self.deadline_hour > self.horizon_hours):
            raise ParameterError(
                f"every deadline must fit the {self.horizon_hours}h horizon"
            )

    def __len__(self) -> int:
        return self.window_offset.shape[0]

    @property
    def jobs_per_scenario(self) -> int:
        return self.arrival_hour.shape[1]

    @classmethod
    def from_scenarios(
        cls,
        scenarios: "tuple[ScheduleScenario, ...] | list[ScheduleScenario]",
        trace: CarbonIntensityTrace,
        *,
        horizon_hours: int,
        threshold_quantile: float = DEFAULT_THRESHOLD_QUANTILE,
    ) -> "ScheduleBatch":
        """Build a batch from per-scenario objects (uniform job count).

        Jobs are stored as given — callers wanting the fleet's DVFS cap
        applied stretch them via ``FleetSpec.effective_duration`` /
        ``effective_energy`` first (the sweep sampler does).
        """
        if not scenarios:
            raise ParameterError("need at least one scenario")
        jobs = len(scenarios[0].jobs)
        if jobs == 0:
            raise ParameterError("scenarios need at least one job")
        for scenario in scenarios:
            if len(scenario.jobs) != jobs:
                raise ParameterError(
                    "every scenario must carry the same number of jobs "
                    f"(got {len(scenario.jobs)} vs {jobs})"
                )
        rows = len(scenarios)
        columns = {
            name: np.zeros((rows, jobs)) for name in JOB_FIELDS
        }
        scen = {name: np.zeros(rows) for name in SCENARIO_FIELDS}
        for row, scenario in enumerate(scenarios):
            if scenario.policy not in POLICY_IDS:
                raise ParameterError(
                    f"unknown policy {scenario.policy!r} in scenario {row}"
                )
            scen["window_offset"][row] = scenario.window_offset
            scen["policy_id"][row] = POLICY_IDS[scenario.policy]
            scen["capacity"][row] = scenario.fleet.capacity
            scen["idle_power_w"][row] = scenario.fleet.idle_power_w
            scen["active_power_w"][row] = scenario.fleet.active_power_w
            for j, job in enumerate(scenario.jobs):
                columns["arrival_hour"][row, j] = job.arrival_hour
                columns["duration_hours"][row, j] = job.duration_hours
                columns["energy_kwh"][row, j] = job.energy_kwh
                columns["deadline_hour"][row, j] = job.deadline_hour
                columns["preemptible"][row, j] = float(job.preemptible)
                columns["overhead_kwh"][row, j] = (
                    job.suspend_resume_overhead_kwh
                )
        return cls(
            **scen,
            **columns,
            trace_g_per_kwh=trace.hourly_g_per_kwh,
            horizon_hours=horizon_hours,
            threshold_quantile=threshold_quantile,
        )

    def row_scenario(self, row: int) -> ScheduleScenario:
        """Reconstruct one row as scalar-reference inputs (for
        cross-checks; the fleet comes back as a single equivalent
        machine)."""
        if not 0 <= row < len(self):
            raise ParameterError(f"row {row} out of range for {len(self)}")
        jobs = tuple(
            FleetJob(
                name=f"row{row}-job{j}",
                arrival_hour=int(self.arrival_hour[row, j]),
                duration_hours=float(self.duration_hours[row, j]),
                energy_kwh=float(self.energy_kwh[row, j]),
                deadline_hour=int(self.deadline_hour[row, j]),
                preemptible=bool(self.preemptible[row, j]),
                suspend_resume_overhead_kwh=float(self.overhead_kwh[row, j]),
            )
            for j in range(self.jobs_per_scenario)
        )
        fleet = FleetSpec(
            (
                Machine(
                    name=f"row{row}",
                    capacity=int(self.capacity[row]),
                    idle_power_w=float(self.idle_power_w[row]),
                    active_power_w=float(self.active_power_w[row]),
                ),
            )
        )
        return ScheduleScenario(
            window_offset=int(self.window_offset[row]),
            policy=POLICY_NAMES[int(self.policy_id[row])],
            jobs=jobs,
            fleet=fleet,
        )


#: Output series of a :class:`ScheduleBatchResult`, in storage order.
SCHEDULE_SERIES: tuple[str, ...] = (
    "emissions_g",
    "energy_kwh",
    "mean_wait_hours",
    "max_wait_hours",
    "preemptions",
    "feasible",
)


@dataclass(frozen=True)
class ScheduleBatchResult:
    """Per-scenario outcomes, one entry per batch row.

    ``feasible`` is 1.0 where every job was placed; infeasible rows carry
    NaN in every other series (never a plausible-looking number).
    """

    emissions_g: np.ndarray
    energy_kwh: np.ndarray
    mean_wait_hours: np.ndarray
    max_wait_hours: np.ndarray
    preemptions: np.ndarray
    feasible: np.ndarray

    def __post_init__(self) -> None:
        rows = self.emissions_g.shape[0]
        for name in SCHEDULE_SERIES:
            series = np.ascontiguousarray(getattr(self, name))
            if series.shape != (rows,):
                raise ParameterError(
                    f"series {name!r} has shape {series.shape}, "
                    f"expected ({rows},)"
                )
            series.setflags(write=False)
            object.__setattr__(self, name, series)

    def __len__(self) -> int:
        return self.emissions_g.shape[0]


def schedule_batch_key(batch: ScheduleBatch) -> str:
    """Content hash of a schedule batch for cache keying.

    The digest layout is domain-prefixed and structurally different from
    the engine's ``batch_key`` (trace, horizon, and 2-D job columns enter
    the hash), so schedule entries can share an
    :class:`~repro.engine.cache.EvaluationCache` with Eq. 1-8 results
    without any possibility of key collision.
    """
    digest = hashlib.sha256()
    digest.update(b"schedule-batch\x00")
    digest.update(len(batch).to_bytes(8, "little"))
    digest.update(batch.jobs_per_scenario.to_bytes(8, "little"))
    digest.update(int(batch.horizon_hours).to_bytes(8, "little"))
    digest.update(np.float64(batch.threshold_quantile).tobytes())
    digest.update(np.asarray(batch.trace_g_per_kwh).tobytes())
    for name in SCENARIO_FIELDS + JOB_FIELDS:
        digest.update(name.encode("ascii"))
        digest.update(getattr(batch, name).tobytes())
    return digest.hexdigest()


def evaluate_schedule_batch(
    batch: ScheduleBatch,
    backend: "KernelBackend | str | None" = None,
) -> ScheduleBatchResult:
    """Simulate every scenario of ``batch`` under its row's policy.

    The backend's dtype selects the compute precision.  Emits a
    ``scheduling.evaluate_batch`` span plus ``scheduling.windows`` /
    ``scheduling.preemptions`` counters on an active run context.
    """
    resolved = resolve_backend(backend)
    context = current_context()
    if context.enabled:
        with context.span(
            "scheduling.evaluate_batch",
            rows=len(batch),
            jobs=batch.jobs_per_scenario,
            backend=resolved.name,
        ):
            result = _simulate_columns(batch, np.dtype(resolved.dtype))
        context.count("scheduling.windows", len(batch))
        preemptions = result.preemptions
        finite = preemptions[np.isfinite(preemptions)]
        if finite.size:
            context.count("scheduling.preemptions", float(finite.sum()))
        return result
    return _simulate_columns(batch, np.dtype(resolved.dtype))


def _simulate_columns(
    batch: ScheduleBatch, dtype: np.dtype
) -> ScheduleBatchResult:
    """The vectorized simulation over every row at once."""
    rows = len(batch)
    jobs = batch.jobs_per_scenario
    horizon = int(batch.horizon_hours)
    row_index = np.arange(rows)
    zero = dtype.type(0.0)
    one = dtype.type(1.0)
    pool = _scratch_pool((rows, jobs, horizon, dtype.str))

    trace = np.asarray(batch.trace_g_per_kwh, dtype=dtype)
    offsets = batch.window_offset.astype(np.int64)
    period = trace.shape[0]
    # Each row's CI view is a contiguous window of the tiled trace, so a
    # single first-axis gather over sliding windows replaces a full
    # (rows, horizon) modular index computation.
    reps = -(-(period - 1 + horizon) // period)
    windows = np.lib.stride_tricks.sliding_window_view(
        np.tile(trace, reps), horizon
    )
    ci = np.take(
        windows,
        offsets % period,
        axis=0,
        out=_scratch(pool, "ci", (rows, horizon), dtype),
    )
    ci_prefix = _scratch(pool, "ci_prefix", (rows, horizon + 1), dtype)
    ci_prefix[:, 0] = zero
    np.cumsum(ci, axis=1, out=ci_prefix[:, 1:])

    capacity = batch.capacity.astype(np.int16)
    policy_id = batch.policy_id.astype(np.int64)
    idle_kw = (batch.idle_power_w / WATTS_PER_KW).astype(dtype)
    active_kw = (batch.active_power_w / WATTS_PER_KW).astype(dtype)

    arrival = batch.arrival_hour.astype(np.int64)
    deadline = batch.deadline_hour.astype(np.int64)
    slots = np.ceil(batch.duration_hours).astype(np.int64)
    duration = batch.duration_hours.astype(dtype)
    energy = batch.energy_kwh.astype(dtype)
    fraction = duration - (slots - 1).astype(dtype)
    weight = energy / duration + active_kw[:, None]
    overhead = batch.overhead_kwh.astype(dtype)
    preemptible = batch.preemptible.astype(bool)
    max_slots = int(slots.max())

    order = _priority_order(policy_id, arrival, deadline, slots)

    # Pre-gather job attributes in priority order once, laid out
    # (jobs, rows): each step then reads one fully contiguous row of
    # each attribute instead of a strided column, and the narrow
    # integer dtypes keep the per-step compares cheap.  Flat take on
    # transposed indices is a single C gather per attribute.
    flat_t = row_index[None, :] * jobs + order.T
    arr_o = np.take(arrival, flat_t).astype(np.int32)
    dl_o = np.take(deadline, flat_t).astype(np.int32)
    slots_o = np.take(slots, flat_t).astype(np.int32)
    dur_o = np.take(duration, flat_t)
    frac_o = np.take(fraction, flat_t)
    weight_o = np.take(weight, flat_t)
    energy_o = np.take(energy, flat_t)
    overhead_o = np.take(overhead, flat_t)
    preempt_o = np.take(preemptible, flat_t)

    # The policy of a row never changes across job steps, so the
    # carbon-policy machinery runs on fixed row subsets: gathering the
    # subset (and its quantile threshold) once beats recomputing
    # full-width columns per step.
    waiting_idx = np.flatnonzero(policy_id == _CARBON_WAITING_ID)
    lowest_idx = np.flatnonzero(policy_id == _CARBON_LOWEST_ID)
    ci_waiting = np.take(
        ci,
        waiting_idx,
        axis=0,
        out=_scratch(pool, "ci_waiting", (waiting_idx.shape[0], horizon), dtype),
    )
    threshold_waiting = (
        np.quantile(ci_waiting, batch.threshold_quantile, axis=1).astype(
            dtype
        )
        if waiting_idx.size
        else np.empty(0, dtype=dtype)
    )
    # Edge-padded CI prefix / CI for the carbon_lowest rows: pricing a
    # start hour h with s slots reads column h + s - 1, so padding lets
    # every slots-group use plain slices instead of gathers.  The padded
    # tail only feeds hours the deadline mask rejects.
    n_lowest = lowest_idx.shape[0]
    prefix_lowest_pad = _scratch(
        pool, "prefix_lowest_pad", (n_lowest, horizon + max_slots), dtype
    )
    prefix_lowest_pad[:, : horizon + 1] = ci_prefix[lowest_idx]
    prefix_lowest_pad[:, horizon + 1 :] = prefix_lowest_pad[
        :, horizon : horizon + 1
    ]
    ci_lowest_pad = _scratch(
        pool, "ci_lowest_pad", (n_lowest, horizon + max_slots), dtype
    )
    ci_lowest_pad[:, :horizon] = ci[lowest_idx]
    ci_lowest_pad[:, horizon:] = ci_lowest_pad[:, horizon - 1 : horizon]
    bits = _make_bitset_context(
        pool, rows, horizon, max_slots, ci_waiting, threshold_waiting
    )
    ctx = _ColumnContext(
        horizon=horizon,
        max_slots=max_slots,
        hour_grid=np.arange(horizon, dtype=np.int32)[None, :],
        capacity=capacity,
        ci=ci,
        waiting_idx=waiting_idx,
        ci_waiting=ci_waiting,
        threshold_waiting=threshold_waiting,
        lowest_idx=lowest_idx,
        prefix_lowest_pad=prefix_lowest_pad,
        ci_lowest_pad=ci_lowest_pad,
        free_pad=(
            None if bits is not None
            else _make_free_pad(pool, rows, horizon, max_slots)
        ),
        feasible_buf=(
            None if bits is not None
            else _scratch(pool, "feasible_buf", (rows, horizon), bool)
        ),
        cost_buf=_scratch(pool, "cost_buf", (n_lowest, horizon), dtype),
        bits=bits,
    )

    alive = np.ones(rows, dtype=bool)
    occupancy = _scratch(pool, "occupancy", (rows, horizon), np.int16)
    occupancy.fill(0)
    emissions_total = idle_kw * ci_prefix[:, horizon]
    energy_total = idle_kw * dtype.type(horizon)
    wait_sum = np.zeros(rows, dtype=dtype)
    wait_max = np.full(rows, -np.inf, dtype=dtype)
    preempt_total = np.zeros(rows, dtype=np.int64)

    slot_grid = np.arange(max_slots, dtype=np.int32)[None, :]
    lowest_mask = policy_id == _CARBON_LOWEST_ID
    for k in range(jobs):
        arr_k = arr_o[k]
        dl_k = dl_o[k]
        slots_k = slots_o[k]
        dur_k = dur_o[k]
        frac_k = frac_o[k]
        weight_k = weight_o[k]
        energy_k = energy_o[k]
        overhead_k = overhead_o[k]
        split = preempt_o[k] & lowest_mask

        chosen, feasible_now = _choose_hours_columns(
            ctx, split, occupancy, arr_k, dl_k, slots_k, frac_k, weight_k
        )
        active = alive & feasible_now
        alive &= feasible_now

        valid = (slot_grid < slots_k[:, None]) & active[:, None]
        hour_safe = np.clip(chosen, 0, horizon - 1)
        # A job's hours are distinct within a step, so a plain fancy
        # increment is safe (and much faster than a buffered add.at).
        occ_rows, occ_slots = np.nonzero(valid)
        occupancy[occ_rows, hour_safe[occ_rows, occ_slots]] += 1

        # Chronological re-accumulation: per hour, resume overhead first,
        # then (weight * fraction) * CI — the scalar reference's exact
        # association, so chosen placements price identically.  The slot
        # matrices are built in one shot; the left-to-right column adds
        # keep the scalar reference's summation order bit-for-bit.
        ci_hours = ci[row_index[:, None], hour_safe]
        gap = np.zeros(valid.shape, dtype=bool)
        gap[:, 1:] = valid[:, 1:] & (chosen[:, 1:] > chosen[:, :-1] + 1)
        f_mat = np.where(
            slot_grid == (slots_k - 1)[:, None], frac_k[:, None], one
        )
        main = np.where(
            valid, (weight_k[:, None] * f_mat) * ci_hours, zero
        )
        over = np.where(gap, overhead_k[:, None] * ci_hours, zero)
        job_acc = np.zeros(rows, dtype=dtype)
        for s in range(max_slots):
            if s > 0:
                job_acc = job_acc + over[:, s]
            job_acc = job_acc + main[:, s]
        job_preempts = gap.sum(axis=1)

        last_hour = chosen[row_index, np.maximum(slots_k - 1, 0)]
        completion = last_hour.astype(dtype) + frac_k
        wait = completion - (arr_k.astype(dtype) + dur_k)

        emissions_total = emissions_total + np.where(active, job_acc, zero)
        energy_total = energy_total + np.where(
            active,
            (energy_k + job_preempts * overhead_k) + active_kw * dur_k,
            zero,
        )
        wait_sum = wait_sum + np.where(active, wait, zero)
        wait_max = np.maximum(
            wait_max, np.where(active, wait, -np.inf)
        )
        preempt_total += np.where(active, job_preempts, 0)

    nan = dtype.type(np.nan)
    feasible = alive.astype(np.float64)
    return ScheduleBatchResult(
        emissions_g=np.where(alive, emissions_total, nan),
        energy_kwh=np.where(alive, energy_total, nan),
        mean_wait_hours=np.where(
            alive, wait_sum / dtype.type(jobs), nan
        ),
        max_wait_hours=np.where(alive, wait_max, nan),
        preemptions=np.where(alive, preempt_total.astype(dtype), nan),
        feasible=feasible,
    )


def _priority_order(
    policy_id: np.ndarray,
    arrival: np.ndarray,
    deadline: np.ndarray,
    slots: np.ndarray,
) -> np.ndarray:
    """Per-row job consideration order, matching the scalar reference."""
    rows, jobs = arrival.shape
    tiebreak = np.broadcast_to(np.arange(jobs, dtype=np.int64), (rows, jobs))
    order = np.lexsort((tiebreak, arrival), axis=-1)
    edf_rows = np.flatnonzero(policy_id == POLICY_IDS["edf"])
    if edf_rows.size:
        order[edf_rows] = np.lexsort(
            (tiebreak[: edf_rows.size], arrival[edf_rows], deadline[edf_rows]),
            axis=-1,
        )
    lowest_rows = np.flatnonzero(policy_id == _CARBON_LOWEST_ID)
    if lowest_rows.size:
        slack = (deadline[lowest_rows] - slots[lowest_rows]) - arrival[
            lowest_rows
        ]
        order[lowest_rows] = np.lexsort(
            (tiebreak[: lowest_rows.size], arrival[lowest_rows], slack),
            axis=-1,
        )
    return order


@dataclass
class _ColumnContext:
    """Step-invariant state of one :func:`_simulate_columns` run.

    Policy row subsets (and their gathered CI views) are fixed across job
    steps — precomputing them lets each step run the carbon-policy
    machinery on just the rows that use it instead of the whole batch.
    ``free_pad`` is a reusable scratch buffer whose tail columns stay
    ``True`` so windows running past the horizon match the scalar
    reference's clip-at-horizon semantics; the ``*_buf`` scratch arrays
    are reused every step so the hot loop never re-allocates (large
    numpy temporaries go straight back to the OS, so fresh allocations
    would page-fault on every step).
    """

    horizon: int
    max_slots: int
    hour_grid: np.ndarray
    capacity: np.ndarray
    ci: np.ndarray
    waiting_idx: np.ndarray
    ci_waiting: np.ndarray
    threshold_waiting: np.ndarray
    lowest_idx: np.ndarray
    prefix_lowest_pad: np.ndarray
    ci_lowest_pad: np.ndarray
    free_pad: "np.ndarray | None"
    feasible_buf: "np.ndarray | None"
    cost_buf: np.ndarray
    bits: "_BitsetContext | None" = None


_SCRATCH = threading.local()


def _scratch_pool(signature: tuple) -> dict:
    """Per-thread scratch arrays reused across equal-shaped evaluations.

    Chunked sweeps and repeated calls evaluate many identically shaped
    batches; recycling the large intermediates skips ~tens of MB of
    allocation and first-touch page faults per call.  Only the most
    recent signature's buffers are retained (one batch shape per
    thread), every buffer is fully (re)written before use, and no
    returned array ever aliases the pool.
    """
    if getattr(_SCRATCH, "signature", None) != signature:
        _SCRATCH.pool = {}
        _SCRATCH.signature = signature
    return _SCRATCH.pool


def _scratch(
    pool: dict, name: str, shape: tuple, dtype: "np.dtype | type"
) -> np.ndarray:
    arr = pool.get(name)
    if arr is None or arr.shape != shape or arr.dtype != dtype:
        arr = np.empty(shape, dtype)
        pool[name] = arr
    return arr


def _make_free_pad(
    pool: dict, rows: int, horizon: int, max_slots: int
) -> np.ndarray:
    pad = _scratch(pool, "free_pad", (rows, horizon + max_slots - 1), bool)
    pad[:, horizon:] = True
    return pad


_U64_ONE = np.uint64(1)
_U64_MASK = (1 << 64) - 1


@dataclass
class _BitsetContext:
    """Single-word hour bitsets for horizons that fit one uint64.

    Bit ``h`` of a row's word is hour ``h``; hours at or past the
    horizon stay set in ``bool_buf`` so a window running off the end
    matches the scalar reference's clip-at-horizon semantics.  The
    window-AND, arrival/deadline masks, and first/last/green-hour
    searches all become O(rows) integer ops instead of
    O(rows × horizon) boolean matrices — the general matrix path below
    remains the implementation for wider horizons.
    """

    bool_buf: np.ndarray  # (rows, 64) scratch; [:, horizon:] stays True
    ge_table: np.ndarray  # ge_table[t] = bits t..63 set
    le_table: np.ndarray  # le_table[t] = bits 0..t-1 set
    green_bits: np.ndarray  # per-waiting-row hours with CI <= threshold
    snap_buf: np.ndarray  # (rows,) uint64 scratch


def _pack_hour_bits(mask: np.ndarray) -> np.ndarray:
    """Pack a (rows, 64) boolean matrix into one uint64 per row."""
    return np.packbits(mask, axis=1, bitorder="little").view(np.uint64)[:, 0]


def _unpack_hour_bits(bits: np.ndarray, horizon: int) -> np.ndarray:
    """Unpack (rows,) uint64 words back to (rows, horizon) booleans."""
    as_bytes = np.ascontiguousarray(bits).view(np.uint8).reshape(-1, 8)
    return np.unpackbits(
        as_bytes, axis=1, bitorder="little", count=horizon
    ).view(np.bool_)


def _lowbit_index(bits: np.ndarray) -> np.ndarray:
    """Index of each word's lowest set bit (0 for empty words).

    Isolating the bit yields a power of two <= 2**63, which float64
    represents exactly, so ``log2`` recovers the index without error.
    Empty words map to index 0; callers mask those rows out via the
    accompanying ``!= 0`` feasibility check.
    """
    low = bits & (~bits + _U64_ONE)
    low = np.where(low == 0, _U64_ONE, low)
    return np.log2(low.astype(np.float64)).astype(np.int64)


def _highbit_index(bits: np.ndarray) -> np.ndarray:
    """Index of each word's highest set bit (0 for empty words)."""
    smear = bits.copy()
    for shift in (1, 2, 4, 8, 16, 32):
        smear |= smear >> np.uint64(shift)
    high = smear ^ (smear >> _U64_ONE)
    high = np.where(high == 0, _U64_ONE, high)
    return np.log2(high.astype(np.float64)).astype(np.int64)


def _make_bitset_context(
    pool: dict,
    rows: int,
    horizon: int,
    max_slots: int,
    ci_waiting: np.ndarray,
    threshold_waiting: np.ndarray,
) -> "_BitsetContext | None":
    """Bitset tables when every window fits one little-endian word."""
    if horizon + max_slots - 1 > 64 or sys.byteorder != "little":
        return None
    bool_buf = _scratch(pool, "bool_buf", (rows, 64), bool)
    bool_buf[:, horizon:] = True
    ge_table = np.array(
        [(~0 << t) & _U64_MASK for t in range(horizon + 1)],
        dtype=np.uint64,
    )
    le_table = np.array(
        [(1 << t) - 1 for t in range(horizon + 1)], dtype=np.uint64
    )
    if threshold_waiting.size:
        green_buf = _scratch(
            pool, "green_buf", (ci_waiting.shape[0], 64), bool
        )
        green_buf[:, horizon:] = False
        green_buf[:, :horizon] = ci_waiting <= threshold_waiting[:, None]
        green_bits = _pack_hour_bits(green_buf)
    else:
        green_bits = np.empty(0, dtype=np.uint64)
    return _BitsetContext(
        bool_buf=bool_buf,
        ge_table=ge_table,
        le_table=le_table,
        green_bits=green_bits,
        snap_buf=_scratch(pool, "snap_buf", (rows,), np.uint64),
    )


def _choose_hours_columns(
    ctx: _ColumnContext,
    split: np.ndarray,
    occupancy: np.ndarray,
    arr_k: np.ndarray,
    dl_k: np.ndarray,
    slots_k: np.ndarray,
    frac_k: np.ndarray,
    weight_k: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """``(chosen hours (rows, max_slots), feasible (rows,))`` for the
    current priority step's job on every row."""
    if ctx.bits is not None:
        return _choose_hours_bitset(
            ctx, split, occupancy, arr_k, dl_k, slots_k, frac_k, weight_k
        )
    horizon = ctx.horizon
    hour_grid = ctx.hour_grid
    slot_grid = np.arange(ctx.max_slots, dtype=np.int64)[None, :]

    # A window [h, h + s) is free iff every hour in it has spare
    # capacity.  Grouping rows by slot count lets each group gather its
    # padded free rows once and AND s shifted slices of that contiguous
    # copy — the per-row window lookup never touches rows with a
    # different slot count, and the arrival/deadline masks ride along on
    # the same group slice.
    free = ctx.free_pad
    np.less(occupancy, ctx.capacity[:, None], out=free[:, :horizon])
    feasible = ctx.feasible_buf
    for s in range(1, ctx.max_slots + 1):
        group = np.flatnonzero(slots_k == s)
        if not group.size:
            continue
        padded = free[group]
        window = padded[:, :horizon] & (hour_grid >= arr_k[group, None])
        for shift in range(1, s):
            window &= padded[:, shift : shift + horizon]
        window &= hour_grid <= (dl_k[group] - s)[:, None]
        feasible[group] = window
    any_feasible = feasible.any(axis=1)

    start = np.argmax(feasible, axis=1)

    if ctx.waiting_idx.size:
        idx = ctx.waiting_idx
        feasible_w = feasible[idx]
        green = feasible_w & (ctx.ci_waiting <= ctx.threshold_waiting[:, None])
        any_green = green.any(axis=1)
        green_first = np.argmax(green, axis=1)
        last_start = horizon - 1 - np.argmax(feasible_w[:, ::-1], axis=1)
        start[idx] = np.where(any_green, green_first, last_start)

    if ctx.lowest_idx.size:
        start[ctx.lowest_idx] = _price_lowest_starts(
            ctx, slots_k, weight_k, frac_k, feasible[ctx.lowest_idx]
        )

    chosen = start[:, None] + slot_grid
    feasible_row = any_feasible

    split_idx = np.flatnonzero(split)
    if split_idx.size:
        hour_ok = (
            free[split_idx, :horizon]
            & (hour_grid >= arr_k[split_idx, None])
            & (hour_grid < dl_k[split_idx, None])
        )
        slots_s = slots_k[split_idx]
        enough = hour_ok.sum(axis=1) >= slots_s
        # Stable argsort over (CI, hour): equal intensities keep hour
        # order, matching the scalar reference's sort key exactly.
        ranked = np.argsort(
            np.where(hour_ok, ctx.ci[split_idx], np.inf),
            axis=1,
            kind="stable",
        )
        take = np.arange(ranked.shape[1], dtype=np.int64)[None, :]
        selected = np.where(take < slots_s[:, None], ranked, horizon)
        chosen[split_idx] = np.sort(selected, axis=1)[:, : ctx.max_slots]
        feasible_row[split_idx] = enough

    return chosen, feasible_row


def _price_lowest_starts(
    ctx: _ColumnContext,
    slots_k: np.ndarray,
    weight_k: np.ndarray,
    frac_k: np.ndarray,
    feasible_l: np.ndarray,
) -> np.ndarray:
    """Cheapest feasible start hour for every ``carbon_lowest`` row.

    Prefix-sum pricing: the s-1 full hours starting at h cost the CI
    prefix difference, the partial final slot its shifted CI — one
    subtraction per candidate hour, sliced from the edge-padded arrays.
    Split rows compute a cost too but get overwritten by the caller —
    they are a small minority.
    """
    horizon = ctx.horizon
    idx = ctx.lowest_idx
    slots_l = slots_k[idx]
    weight_l = weight_k[idx]
    frac_l = frac_k[idx]
    cost = ctx.cost_buf
    for s in range(1, ctx.max_slots + 1):
        group = np.flatnonzero(slots_l == s)
        if group.size:
            prefix = ctx.prefix_lowest_pad[group]
            full_sum = prefix[:, s - 1 : s - 1 + horizon] - prefix[:, :horizon]
            final_ci = ctx.ci_lowest_pad[group, s - 1 : s - 1 + horizon]
            cost[group] = weight_l[group, None] * (
                full_sum + frac_l[group, None] * final_ci
            )
    cost[~feasible_l] = np.inf
    return np.argmin(cost, axis=1)


def _choose_hours_bitset(
    ctx: _ColumnContext,
    split: np.ndarray,
    occupancy: np.ndarray,
    arr_k: np.ndarray,
    dl_k: np.ndarray,
    slots_k: np.ndarray,
    frac_k: np.ndarray,
    weight_k: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """The single-word bitset variant of :func:`_choose_hours_columns`.

    Selects the same start hours as the matrix path: bit ``h`` of the
    folded word says the window ``[h, h + s)`` is free, the table
    gathers apply the arrival/deadline bounds, and lowest/highest set
    bits replace the first/last-feasible argmax scans.  Start values
    for rows whose word is empty are meaningless by construction; the
    caller masks those rows via the returned feasibility flags.
    """
    bits = ctx.bits
    horizon = ctx.horizon
    np.less(occupancy, ctx.capacity[:, None], out=bits.bool_buf[:, :horizon])
    free_bits = _pack_hour_bits(bits.bool_buf)

    # Running window-AND: after folding shift s-1, a set bit h means
    # hours [h, h + s) are all free; each row snapshots the fold at its
    # own slot count.  Arrival bounds ride along from the start, the
    # slot-count-dependent deadline bound is applied to the snapshot.
    window = free_bits & bits.ge_table[np.minimum(arr_k, horizon)]
    snap = bits.snap_buf
    for s in range(1, ctx.max_slots + 1):
        if s > 1:
            window &= free_bits >> np.uint64(s - 1)
        np.copyto(snap, window, where=slots_k == s)
    feasible_bits = snap & bits.le_table[
        np.clip(dl_k - slots_k + 1, 0, horizon)
    ]

    any_feasible = feasible_bits != 0
    start = _lowbit_index(feasible_bits)

    if ctx.waiting_idx.size:
        idx = ctx.waiting_idx
        bits_w = feasible_bits[idx]
        green = bits_w & bits.green_bits
        start[idx] = np.where(
            green != 0, _lowbit_index(green), _highbit_index(bits_w)
        )

    if ctx.lowest_idx.size:
        start[ctx.lowest_idx] = _price_lowest_starts(
            ctx,
            slots_k,
            weight_k,
            frac_k,
            _unpack_hour_bits(feasible_bits[ctx.lowest_idx], horizon),
        )

    chosen = start[:, None] + np.arange(ctx.max_slots, dtype=np.int64)[
        None, :
    ]
    feasible_row = any_feasible

    split_idx = np.flatnonzero(split)
    if split_idx.size:
        ok_bits = (
            free_bits[split_idx]
            & bits.ge_table[np.minimum(arr_k[split_idx], horizon)]
            & bits.le_table[np.clip(dl_k[split_idx], 0, horizon)]
        )
        hour_ok = _unpack_hour_bits(ok_bits, horizon)
        slots_s = slots_k[split_idx]
        enough = hour_ok.sum(axis=1) >= slots_s
        # Stable argsort over (CI, hour): equal intensities keep hour
        # order, matching the scalar reference's sort key exactly.
        ranked = np.argsort(
            np.where(hour_ok, ctx.ci[split_idx], np.inf),
            axis=1,
            kind="stable",
        )
        take = np.arange(ranked.shape[1], dtype=np.int64)[None, :]
        selected = np.where(take < slots_s[:, None], ranked, horizon)
        chosen[split_idx] = np.sort(selected, axis=1)[:, : ctx.max_slots]
        feasible_row[split_idx] = enough

    return chosen, feasible_row


def evaluate_schedule_cached(
    batch: ScheduleBatch,
    cache: "EvaluationCache | None" = None,
    backend: "KernelBackend | str | None" = None,
) -> ScheduleBatchResult:
    """Evaluate through an :class:`~repro.engine.cache.EvaluationCache`.

    Entries are keyed by :func:`schedule_batch_key` content and the
    backend's ``cache_token`` (via the cache's generic by-key interface),
    so repeated sweeps over identical windows are served without
    recomputation and never collide with Eq. 1-8 entries.
    """
    if cache is None:
        cache = DEFAULT_CACHE
    resolved = resolve_backend(backend)
    key = schedule_batch_key(batch)
    cached = cache.peek_by_key(key, rows=len(batch), backend=resolved)
    if cached is not None:
        return cached
    result = evaluate_schedule_batch(batch, backend=resolved)
    cache.put_by_key(key, result, backend=resolved)
    return result


def verify_schedule_batch(
    batch: ScheduleBatch,
    result: ScheduleBatchResult | None = None,
    *,
    sample: int = 8,
    backend: "KernelBackend | str | None" = None,
) -> int:
    """Cross-check sampled rows against the scalar reference path.

    The scheduling twin of the engine's guarded cross-check: evenly
    sampled rows are re-simulated with
    :func:`~repro.scheduling.policies.simulate_fleet` and compared within
    the backend's documented tolerance (floored at 1e-9 relative, since
    prefix-sum candidate selection may legitimately differ from the
    chronological reference by an ulp on near-tied costs).  Returns the
    number of rows checked; raises
    :class:`~repro.core.errors.ValidationError` on any disagreement.
    """
    if sample < 1:
        raise ParameterError(f"sample must be >= 1, got {sample}")
    resolved = resolve_backend(backend)
    if result is None:
        result = evaluate_schedule_batch(batch, backend=resolved)
    if len(result) != len(batch):
        raise ParameterError(
            f"result has {len(result)} rows for a {len(batch)}-row batch"
        )
    tolerance = max(float(resolved.tolerance), 1e-9)
    trace = CarbonIntensityTrace("verify", batch.trace_g_per_kwh)
    checked = np.unique(
        np.linspace(0, len(batch) - 1, min(sample, len(batch))).astype(int)
    )
    mismatches = []
    for row in checked:
        scenario = batch.row_scenario(int(row))
        try:
            reference = simulate_fleet(
                scenario.jobs,
                scenario.fleet,
                trace,
                scenario.policy,
                horizon_hours=batch.horizon_hours,
                window_offset=scenario.window_offset,
                threshold_quantile=batch.threshold_quantile,
            )
        except ConstraintError:
            if result.feasible[row] != 0.0:
                mismatches.append(
                    f"row {row}: scalar reference is infeasible but the "
                    f"vectorized path placed every job"
                )
            continue
        if result.feasible[row] == 0.0:
            mismatches.append(
                f"row {row}: vectorized path infeasible but the scalar "
                f"reference placed every job"
            )
            continue
        expected = reference.total_emissions_g
        got = float(result.emissions_g[row])
        scale = max(1.0, abs(expected))
        if abs(got - expected) > tolerance * scale:
            mismatches.append(
                f"row {row} ({scenario.policy}): emissions {got!r} vs "
                f"scalar reference {expected!r} "
                f"(tolerance {tolerance:g} relative)"
            )
    if mismatches:
        raise ValidationError(
            "vectorized schedule evaluation diverged from the scalar "
            f"reference on {len(mismatches)} of {len(checked)} sampled "
            "rows",
            mismatches,
        )
    return int(len(checked))
