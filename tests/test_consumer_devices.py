"""Consumer-device life-cycle survey."""

import pytest

from repro.core.errors import UnknownEntryError
from repro.data.consumer_devices import (
    SURVEY_DEVICES,
    average_manufacturing_share,
    devices_in_class,
    manufacturing_dominated_fraction,
    survey_device,
)


class TestSurveyData:
    def test_shares_sum_to_one(self):
        for device in SURVEY_DEVICES.values():
            total = (
                device.manufacturing_share
                + device.use_share
                + device.transport_share
                + device.eol_share
            )
            assert total == pytest.approx(1.0), device.name

    def test_lookup_normalization(self):
        assert survey_device("Smart Speaker").device_class == "speaker"

    def test_unknown_device(self):
        with pytest.raises(UnknownEntryError):
            survey_device("vr_headset")

    def test_unknown_class(self):
        with pytest.raises(UnknownEntryError):
            devices_in_class("mainframe")

    def test_class_grouping(self):
        wearables = devices_in_class("wearable")
        assert {d.name for d in wearables} == {"smartwatch", "fitness_band"}


class TestSurveyFindings:
    def test_majority_manufacturing_dominated(self):
        # The paper's motivating claim from the Chasing Carbon survey.
        assert manufacturing_dominated_fraction() > 0.5

    def test_battery_devices_are_manufacturing_dominated(self):
        for cls in ("wearable", "phone", "tablet", "laptop"):
            for device in devices_in_class(cls):
                assert device.manufacturing_dominated, device.name

    def test_plugged_in_devices_are_use_dominated(self):
        for name in ("game_console", "smart_speaker", "desktop_tower"):
            assert not survey_device(name).manufacturing_dominated

    def test_wearables_have_highest_manufacturing_share(self):
        classes = ("wearable", "phone", "tablet", "laptop", "desktop")
        shares = {cls: average_manufacturing_share(cls) for cls in classes}
        assert max(shares, key=shares.get) == "wearable"

    def test_overall_average_share(self):
        overall = average_manufacturing_share()
        assert 0.5 < overall < 0.8
