"""Observability spine: tracer, metrics, events, manifest, RunContext,
and the instrumentation hooks threaded through the stack."""

import json

import numpy as np
import pytest

from repro.analysis import ActScenario, run_monte_carlo, tornado
from repro.dse.sweep import sweep_grid_batched
from repro.engine.batch import ScenarioBatch
from repro.engine.cache import CacheStats, EvaluationCache
from repro.engine.kernels import evaluate_batch
from repro.experiments import run_experiment
from repro.obs import (
    NULL_CONTEXT,
    Histogram,
    JsonlEventSink,
    MemoryEventSink,
    MetricsRegistry,
    RunContext,
    Span,
    Tracer,
    build_manifest,
    current_context,
    fingerprint_parameters,
    span_cost_table,
    use_context,
)

BASE = ActScenario()


def batch_of(energy):
    return ScenarioBatch.from_columns(
        BASE, len(energy), {"energy_kwh": np.asarray(energy, dtype=np.float64)}
    )


class TestTracer:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner", "sibling"]
        assert tracer.max_depth() == 2

    def test_span_records_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", rows=7) as span:
            pass
        assert span.ended_s is not None
        assert span.duration_s >= 0
        assert span.attributes["rows"] == 7

    def test_exception_marks_span_status_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("boom")
        assert tracer.roots[0].status == "error"
        assert tracer.roots[0].ended_s is not None

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a"):
            assert tracer.current.name == "a"
            with tracer.span("b"):
                assert tracer.current.name == "b"
            assert tracer.current.name == "a"
        assert tracer.current is None

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("b"):
            pass
        assert len(tracer.find("b")) == 2
        depths = [depth for depth, _ in tracer.walk()]
        assert depths == [0, 1, 0]

    def test_render_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", rows=3):
                pass
        text = tracer.render_tree()
        assert "outer" in text
        assert "- inner" in text
        assert "rows=3" in text

    def test_span_cost_table_filters_experiment_roots(self):
        tracer = Tracer()
        with tracer.span("experiment.fig1"):
            pass
        with tracer.span("other"):
            pass
        costs = span_cost_table(tracer)
        assert [name for name, _ in costs] == ["fig1"]
        assert all(seconds >= 0 for _, seconds in costs)

    def test_on_event_callback_fires_on_start_and_end(self):
        seen = []
        tracer = Tracer(on_event=lambda kind, span: seen.append((kind, span.name)))
        with tracer.span("x"):
            pass
        assert seen == [("span_start", "x"), ("span_end", "x")]


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.count("rows")
        registry.count("rows", 9)
        assert registry.counter("rows") == 10
        assert registry.counter("missing") == 0

    def test_timers_aggregate_observations(self):
        registry = MetricsRegistry()
        registry.observe("kernel", 0.25)
        registry.observe("kernel", 0.75)
        stats = registry.timers["kernel"]
        assert stats.count == 2
        assert stats.total_s == pytest.approx(1.0)
        assert stats.mean_s == pytest.approx(0.5)
        assert stats.min_s == pytest.approx(0.25)
        assert stats.max_s == pytest.approx(0.75)

    def test_time_context_manager_observes(self):
        registry = MetricsRegistry()
        with registry.time("block"):
            pass
        assert registry.timers["block"].count == 1

    def test_histogram_buckets_and_overflow(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.record(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.total == 3

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.count("c", 2)
        registry.observe("t", 0.1)
        registry.record("h", 0.01)
        json.dumps(registry.snapshot())

    def test_render_lists_counters_and_timers(self):
        registry = MetricsRegistry()
        registry.count("cache.hits", 3)
        registry.observe("kernel", 0.5)
        text = registry.render()
        assert "cache.hits" in text and "kernel" in text

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render()


class TestEventSinks:
    def test_memory_sink_records_and_filters(self):
        sink = MemoryEventSink()
        sink.emit("chunk", completed=5, total=10)
        sink.emit("other")
        chunks = sink.of_type("chunk")
        assert len(chunks) == 1
        assert chunks[0]["completed"] == 5
        assert "ts" in chunks[0]

    def test_numpy_scalars_are_coerced(self):
        sink = MemoryEventSink()
        sink.emit("chunk", value=np.float64(1.5), count=np.int64(3))
        record = sink.events[0]
        json.dumps(record)
        assert record["value"] == 1.5
        assert record["count"] == 3

    def test_jsonl_sink_writes_one_valid_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlEventSink(path)
        sink.emit("run_start", seed=7)
        sink.emit("run_end")
        sink.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        events = [json.loads(line) for line in lines]
        assert [event["event"] for event in events] == ["run_start", "run_end"]
        assert sink.emitted == 2

    def test_jsonl_sink_flushes_per_event(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlEventSink(path)
        sink.emit("run_start")
        # Readable before close: a killed run leaves a valid prefix.
        assert json.loads(open(path, encoding="utf-8").readline())


class TestManifest:
    def test_fingerprint_is_deterministic_and_order_free(self):
        a = fingerprint_parameters({"x": 1.0, "y": "taiwan"})
        b = fingerprint_parameters({"y": "taiwan", "x": 1.0})
        c = fingerprint_parameters({"x": 2.0, "y": "taiwan"})
        assert a == b
        assert a != c

    def test_build_manifest_captures_provenance(self):
        manifest = build_manifest(
            seed=42, parameters={"p": 1}, argv=["montecarlo"],
            describe_git=False,
        )
        payload = manifest.as_dict()
        assert payload["seed"] == 42
        assert payload["argv"] == ["montecarlo"]
        assert payload["python"]
        assert payload["parameters_fingerprint"]
        json.dumps(payload)


class TestRunContext:
    def test_default_is_the_null_context(self):
        assert current_context() is NULL_CONTEXT
        assert not NULL_CONTEXT.enabled

    def test_null_context_operations_are_noops(self):
        with NULL_CONTEXT.span("anything", rows=1):
            pass
        NULL_CONTEXT.count("x")
        NULL_CONTEXT.observe("x", 1.0)
        NULL_CONTEXT.event("x")
        NULL_CONTEXT.close()

    def test_use_context_installs_and_restores(self):
        context = RunContext.create(describe_git=False)
        with use_context(context):
            assert current_context() is context
            inner = RunContext.create(describe_git=False)
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is context
        assert current_context() is NULL_CONTEXT

    def test_spans_mirror_into_the_event_sink(self):
        context = RunContext.create(describe_git=False)
        with context.span("work", rows=2):
            pass
        sink = context.sink
        assert [e["event"] for e in sink.events[:1]] == ["run_start"]
        assert sink.of_type("span_start")[0]["name"] == "work"
        assert sink.of_type("span_end")[0]["duration_s"] >= 0

    def test_close_emits_run_end_with_metrics_and_is_idempotent(self):
        context = RunContext.create(describe_git=False)
        context.count("rows", 5)
        context.close()
        context.close()
        ends = context.sink.of_type("run_end")
        assert len(ends) == 1
        assert ends[0]["metrics"]["counters"]["rows"] == 5


class TestEngineInstrumentation:
    def test_evaluate_batch_counts_rows_and_opens_a_span(self):
        context = RunContext.create(describe_git=False)
        batch = batch_of([1.0, 2.0, 3.0])
        with use_context(context):
            result = evaluate_batch(batch)
        assert context.metrics.counter("engine.rows_evaluated") == 3
        assert context.metrics.counter("engine.batches_evaluated") == 1
        assert context.metrics.timers["engine.kernel_seconds"].count == 1
        assert context.tracer.find("engine.evaluate_batch")
        # Instrumented path returns the same numbers as the null path.
        np.testing.assert_allclose(result.total_g, evaluate_batch(batch).total_g)

    def test_cache_counts_hits_misses_evictions(self):
        context = RunContext.create(describe_git=False)
        cache = EvaluationCache(capacity=1)
        with use_context(context):
            cache.evaluate(batch_of([1.0]))   # miss
            cache.evaluate(batch_of([1.0]))   # hit
            cache.evaluate(batch_of([2.0]))   # miss + eviction
        assert context.metrics.counter("engine.cache.hits") == 1
        assert context.metrics.counter("engine.cache.misses") == 2
        assert context.metrics.counter("engine.cache.evictions") == 1


class TestCacheStats:
    def test_stats_snapshot_counts_hits_misses_evictions(self):
        cache = EvaluationCache(capacity=1)
        cache.evaluate(batch_of([1.0]))
        cache.evaluate(batch_of([1.0]))
        cache.evaluate(batch_of([2.0]))
        stats = cache.stats()
        assert stats == CacheStats(
            hits=1, misses=2, evictions=1, size=1, capacity=1
        )
        assert stats.hit_rate == pytest.approx(1 / 3)
        json.dumps(stats.as_dict())

    def test_reset_stats_keeps_entries(self):
        cache = EvaluationCache()
        cache.evaluate(batch_of([1.0]))
        cache.reset_stats()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)
        assert stats.size == 1
        cache.evaluate(batch_of([1.0]))
        assert cache.stats().hits == 1

    def test_clear_resets_stats_and_entries(self):
        cache = EvaluationCache()
        cache.evaluate(batch_of([1.0]))
        cache.clear()
        stats = cache.stats()
        assert (stats.size, stats.hits, stats.misses) == (0, 0, 0)

    def test_hit_rate_zero_when_unused(self):
        assert EvaluationCache().stats().hit_rate == 0.0


class TestAnalysisInstrumentation:
    def test_monte_carlo_span_and_draw_count(self):
        context = RunContext.create(describe_git=False)
        with use_context(context):
            run_monte_carlo(BASE, draws=50, seed=1)
        spans = context.tracer.find("analysis.montecarlo")
        assert spans and spans[0].attributes["draws"] == 50
        assert context.metrics.counter("analysis.montecarlo.draws") == 50

    def test_tornado_span(self):
        context = RunContext.create(describe_git=False)
        with use_context(context):
            tornado(BASE)
        assert context.tracer.find("analysis.tornado")
        assert context.metrics.counter("analysis.tornado.parameters") > 0

    def test_sweep_grid_batched_span_and_point_count(self):
        context = RunContext.create(describe_git=False)
        with use_context(context):
            sweep_grid_batched(
                BASE,
                {"energy_kwh": [1.0, 2.0], "duration_hours": [100.0, 200.0]},
            )
        spans = context.tracer.find("dse.sweep_grid")
        assert spans and spans[0].attributes["dimensions"] == 2
        assert context.metrics.counter("dse.sweep.points") == 4


class TestGuardInstrumentation:
    def test_repair_policy_reports_repaired_values(self):
        from repro.robustness import GuardedEngine, RobustnessWarning

        context = RunContext.create(describe_git=False)
        guard = GuardedEngine(policy="repair", cache=EvaluationCache())
        columns = {"energy_kwh": np.asarray([1.0, -5.0])}
        with use_context(context):
            with pytest.warns(RobustnessWarning):
                guard.evaluate_columns(BASE, 2, columns)
        assert context.metrics.counter("guard.repair.batches") == 1
        assert context.metrics.counter("guard.repair.rows") == 2
        assert context.metrics.counter("guard.repair.repaired_values") >= 1
        assert context.tracer.find("guard.evaluate_columns")


class TestCheckpointInstrumentation:
    def test_chunked_monte_carlo_emits_chunk_and_save_events(self, tmp_path):
        from repro.robustness import run_monte_carlo_chunked

        context = RunContext.create(describe_git=False)
        checkpoint = str(tmp_path / "mc.ckpt")
        with use_context(context):
            run_monte_carlo_chunked(
                BASE, draws=100, seed=3, chunk_rows=40, checkpoint=checkpoint
            )
        assert context.metrics.counter("analysis.montecarlo.chunks") == 3
        assert context.metrics.counter("checkpoint.saves") >= 3
        chunk_events = context.sink.of_type("chunk")
        assert chunk_events[-1]["completed"] == 100
        assert context.tracer.find("analysis.montecarlo_chunked")

    def test_resume_emits_restore_event(self, tmp_path):
        from repro.core.errors import RunInterrupted
        from repro.robustness import CancelToken, run_monte_carlo_chunked

        checkpoint = str(tmp_path / "mc.ckpt")
        cancel = CancelToken()
        cancel.cancel()
        with pytest.raises(RunInterrupted):
            run_monte_carlo_chunked(
                BASE, draws=100, seed=3, chunk_rows=40,
                checkpoint=checkpoint, cancel=cancel,
            )
        context = RunContext.create(describe_git=False)
        with use_context(context):
            run_monte_carlo_chunked(
                BASE, draws=100, seed=3, chunk_rows=40,
                checkpoint=checkpoint, resume=True,
            )
        assert context.metrics.counter("checkpoint.restores") == 1
        assert context.sink.of_type("checkpoint_restore")


class TestExperimentTracing:
    def test_fig10_trace_is_at_least_three_levels_deep(self):
        context = RunContext.create(describe_git=False)
        with use_context(context):
            result = run_experiment("fig10")
        assert result.all_passed
        assert context.tracer.max_depth() >= 3
        root = context.tracer.roots[0]
        assert root.name == "experiment.fig10"
        assert root.attributes["passed"] is True
        assert context.metrics.counter("experiments.run") == 1

    def test_null_context_leaves_experiments_untraced(self):
        result = run_experiment("fig14")
        assert result.all_passed
        assert current_context() is NULL_CONTEXT
