"""Carbon-per-area curves across process nodes (paper Figure 6).

Figure 6 has three panels, all with process node on the x-axis:

* top — fab energy per area (EPA), a single rising curve;
* middle — gas emissions per area (GPA), a band between 99% (lower) and 95%
  (upper) abatement, with TSMC's 97% marked;
* bottom — aggregate carbon per area (CPA), a band between a solar-powered
  fab (lower) and the average Taiwan grid (upper), with the 25%-renewable
  default marked.

This module regenerates those series from the Table 7/8 data and the fab
model, so the benchmark for Figure 6 is a direct read-out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.fab_nodes import (
    GPA_ABATEMENT_HIGH,
    GPA_ABATEMENT_LOW,
    TSMC_ABATEMENT,
    ProcessNode,
    node_names,
    process_node,
)
from repro.fabs.fab import FabScenario
from repro.fabs.yield_models import FixedYield


@dataclass(frozen=True)
class CpaPoint:
    """One x-position of Figure 6 with every plotted series.

    All carbon values are g CO2 per cm^2 of *good* die (i.e. post-yield).
    """

    node: str
    epa_kwh_per_cm2: float
    gpa95_g_per_cm2: float
    gpa97_g_per_cm2: float
    gpa99_g_per_cm2: float
    cpa_taiwan_grid: float
    cpa_default: float
    cpa_solar: float


def _scenario(node: ProcessNode, mix: str, perfect_yield: bool) -> FabScenario:
    yield_model = FixedYield(1.0) if perfect_yield else None
    return FabScenario.for_node(node.name, energy_mix=mix, yield_model=yield_model)


def cpa_point(node_name: str, *, perfect_yield: bool = False) -> CpaPoint:
    """All Figure 6 series evaluated at one process node.

    Args:
        node_name: A Table 7 node name.
        perfect_yield: When True, report pre-yield intensities (Y = 1);
            otherwise the calibrated node yields apply.
    """
    node = process_node(node_name)
    upper = _scenario(node, "taiwan_grid", perfect_yield)
    default = _scenario(node, "taiwan_25_renewable", perfect_yield)
    lower = _scenario(node, "solar", perfect_yield)
    return CpaPoint(
        node=node.name,
        epa_kwh_per_cm2=node.epa_kwh_per_cm2,
        gpa95_g_per_cm2=node.gpa_g_per_cm2(GPA_ABATEMENT_LOW),
        gpa97_g_per_cm2=node.gpa_g_per_cm2(TSMC_ABATEMENT),
        gpa99_g_per_cm2=node.gpa_g_per_cm2(GPA_ABATEMENT_HIGH),
        cpa_taiwan_grid=upper.cpa_g_per_cm2(),
        cpa_default=default.cpa_g_per_cm2(),
        cpa_solar=lower.cpa_g_per_cm2(),
    )


def cpa_curve(*, perfect_yield: bool = False) -> tuple[CpaPoint, ...]:
    """Figure 6's full sweep over every named Table 7 node, 28 nm → 3 nm."""
    return tuple(
        cpa_point(name, perfect_yield=perfect_yield) for name in node_names()
    )
