"""Experiment registry: one module per table/figure of the paper.

Every module exposes ``run() -> ExperimentResult``.  :data:`EXPERIMENTS`
maps experiment ids to those callables; :func:`run_all` regenerates the
whole evaluation.
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import UnknownEntryError
from repro.experiments import (
    ext_baselines,
    ext_chiplets,
    ext_dvfs,
    ext_lifecycle,
    ext_networks,
    ext_scheduling,
    ext_server,
    ext_storage,
    fig01_lifecycle_shift,
    fig04_act_vs_lca,
    fig06_cpa_curves,
    fig07_memory_cps,
    fig08_mobile_design_space,
    fig09_provisioning_metrics,
    fig10_ci_sweep,
    fig11_reconfigurable,
    fig12_nvdla_sweep,
    fig13_qos_design,
    fig14_lifetime,
    fig15_ssd_reliability,
    fig16_lca_breakdowns,
    tab04_provisioning,
    tab05_energy_sources,
    tab06_regions,
    tab07_fab_nodes,
    tab09_cps_tables,
    tab12_lca_comparison,
)
from repro.experiments.base import (
    Check,
    ExperimentResult,
    check_close,
    check_equal,
    check_in_band,
    check_true,
    result_summary,
    traced_run,
)

_MODULES = (
    fig01_lifecycle_shift,
    fig04_act_vs_lca,
    fig06_cpa_curves,
    fig07_memory_cps,
    tab04_provisioning,
    fig08_mobile_design_space,
    fig09_provisioning_metrics,
    fig10_ci_sweep,
    fig11_reconfigurable,
    fig12_nvdla_sweep,
    fig13_qos_design,
    fig14_lifetime,
    fig15_ssd_reliability,
    tab05_energy_sources,
    tab06_regions,
    tab07_fab_nodes,
    tab09_cps_tables,
    tab12_lca_comparison,
    fig16_lca_breakdowns,
)

#: Paper artifacts: one experiment per evaluation table/figure.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

_EXTENSION_MODULES = (
    ext_chiplets,
    ext_dvfs,
    ext_scheduling,
    ext_baselines,
    ext_lifecycle,
    ext_server,
    ext_storage,
    ext_networks,
)

#: Extension analyses: levers the paper names but does not case-study.
#: Kept separate so the paper-artifact scorecard stays exactly the paper.
EXTENSION_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    module.EXPERIMENT_ID: module.run for module in _EXTENSION_MODULES
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig8"``, ``"tab4"``, or
    ``"ext-dvfs"``)."""
    key = experiment_id.strip().lower()
    if key in EXPERIMENTS:
        return traced_run(key, EXPERIMENTS[key])
    if key in EXTENSION_EXPERIMENTS:
        return traced_run(key, EXTENSION_EXPERIMENTS[key])
    raise UnknownEntryError(
        "experiment", experiment_id,
        list(EXPERIMENTS) + list(EXTENSION_EXPERIMENTS),
    )


def run_all() -> tuple[ExperimentResult, ...]:
    """Run every paper-artifact experiment, in presentation order.

    Under an active run context each experiment is one root span, so the
    tracer's roots double as a per-figure cost table.
    """
    return tuple(
        traced_run(module.EXPERIMENT_ID, module.run) for module in _MODULES
    )


def run_all_extensions() -> tuple[ExperimentResult, ...]:
    """Run every extension experiment."""
    return tuple(
        traced_run(module.EXPERIMENT_ID, module.run)
        for module in _EXTENSION_MODULES
    )


__all__ = [
    "Check",
    "EXPERIMENTS",
    "EXTENSION_EXPERIMENTS",
    "ExperimentResult",
    "check_close",
    "check_equal",
    "check_in_band",
    "check_true",
    "result_summary",
    "run_all",
    "run_all_extensions",
    "run_experiment",
    "traced_run",
]
