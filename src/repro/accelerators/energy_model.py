"""Energy model for the NVDLA-style NPU (Sections 7 / Figures 12-13).

Energy per inference decomposes into three calibrated terms:

* a constant dynamic-MAC term (the same ~3.9 GMACs execute regardless of
  array width),
* a fixed-power × latency term (controller, SRAM, DRAM interface) that
  *shrinks* as wider arrays finish frames sooner — the sub-linear exponent
  reflects that only part of that fixed power scales down with runtime,
* an array-overhead term (leakage, clock distribution, widened data
  movement) that *grows* linearly with MAC count.

The opposing terms give energy per inference a U-shape whose discrete
minimum sits at 512 MACs — the paper's "energy optimal" configuration,
which carries 1.4x the embodied carbon of the QoS-minimal 256-MAC design
(Figure 13, left).  Coefficients are calibrated so the Figure 12 metric
optima land on the paper's configurations (EDP→2048, CDP→1024, CE2P→512,
CEP→256, C2EP→128 MACs).
"""

from __future__ import annotations

from repro.core.parameters import require_positive

#: MAC count at which the coefficients are normalized.
REFERENCE_MACS = 512

#: Energy per inference of the 512-MAC reference design (joules).
REFERENCE_ENERGY_J = 6.0e-3

#: Calibrated shape coefficients: E(n)/E(512) =
#:   E0 + E_FIXED*(512/n)**FIXED_EXPONENT + E_ARRAY*(n/512).
E0 = 0.0655
E_FIXED = 0.5667
E_ARRAY = 0.3678
FIXED_EXPONENT = 0.7


def relative_energy(n_macs: int) -> float:
    """Energy per inference relative to the 512-MAC reference design."""
    require_positive("n_macs", n_macs)
    ratio = n_macs / REFERENCE_MACS
    return E0 + E_FIXED * ratio ** (-FIXED_EXPONENT) + E_ARRAY * ratio


def energy_per_inference_j(n_macs: int) -> float:
    """Absolute energy per inference in joules."""
    return REFERENCE_ENERGY_J * relative_energy(n_macs)


def average_power_w(n_macs: int, fps: float) -> float:
    """Average power while sustaining ``fps`` inferences per second."""
    require_positive("fps", fps)
    return energy_per_inference_j(n_macs) * fps
