"""Quantitative comparison of ACT against the prior-work baselines.

Backs the Section 2.3 critique with numbers:

* :func:`greenchip_vs_act` — across the 28-3 nm ladder, the old-inventory
  baseline (characterized for 90-28 nm) extrapolates *flat-to-gently-up*
  while ACT's imec-characterized curve rises steeply; the gap grows toward
  advanced nodes.
* :func:`exergy_blind_spot` — two manufacturing scenarios differing only in
  fab energy mix: exergy scores them identically, ACT separates them by the
  full carbon-intensity ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import exergy, greenchip
from repro.data.fab_nodes import node_names, process_node
from repro.fabs.fab import FabScenario


@dataclass(frozen=True)
class NodeComparison:
    """ACT vs the GreenChip-style baseline at one node."""

    node: str
    act_cpa_g_per_cm2: float
    baseline_cpa_g_per_cm2: float
    baseline_extrapolated: bool

    @property
    def act_over_baseline(self) -> float:
        return self.act_cpa_g_per_cm2 / self.baseline_cpa_g_per_cm2


def greenchip_vs_act() -> tuple[NodeComparison, ...]:
    """Carbon-per-area, both models, across the named ACT node ladder."""
    results = []
    for name in node_names():
        node = process_node(name)
        act = FabScenario.for_node(name).cpa_g_per_cm2()
        baseline = greenchip.cpa_estimate(node.feature_nm)
        results.append(
            NodeComparison(
                node=name,
                act_cpa_g_per_cm2=act,
                baseline_cpa_g_per_cm2=baseline.cpa_g_per_cm2,
                baseline_extrapolated=baseline.extrapolated,
            )
        )
    return tuple(results)


@dataclass(frozen=True)
class BlindSpotResult:
    """How each model scores a dirty-fab vs green-fab pair."""

    act_dirty_g: float
    act_green_g: float
    exergy_dirty_kwh: float
    exergy_green_kwh: float

    @property
    def act_separation(self) -> float:
        """ACT's dirty/green ratio (> 1: ACT sees the difference)."""
        return self.act_dirty_g / self.act_green_g

    @property
    def exergy_separation(self) -> float:
        """Exergy's dirty/green ratio (exactly 1: the blind spot)."""
        return self.exergy_dirty_kwh / self.exergy_green_kwh


def exergy_blind_spot(
    node: str = "7",
    area_cm2: float = 1.0,
    use_energy_kwh: float = 10.0,
) -> BlindSpotResult:
    """Score one die under a Taiwan-grid fab vs a solar fab, both models."""
    dirty = FabScenario.for_node(node, energy_mix="taiwan_grid")
    green = FabScenario.for_node(node, energy_mix="solar")
    act_dirty = area_cm2 * dirty.cpa_g_per_cm2(area_cm2)
    act_green = area_cm2 * green.cpa_g_per_cm2(area_cm2)

    def exergy_score(fab: FabScenario) -> float:
        params = fab.params_for_area(area_cm2)
        return exergy.account(
            soc_area_cm2=area_cm2,
            epa_kwh_per_cm2=params.epa_kwh_per_cm2,
            use_energy_kwh=use_energy_kwh,
            fab_yield=params.fab_yield,
        ).total_kwh

    return BlindSpotResult(
        act_dirty_g=act_dirty,
        act_green_g=act_green,
        exergy_dirty_kwh=exergy_score(dirty),
        exergy_green_kwh=exergy_score(green),
    )
