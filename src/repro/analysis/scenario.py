"""A flat, scalar view of the full ACT model for sensitivity studies.

The component/platform API is the right shape for design work, but
sensitivity and uncertainty analysis want the model as one function of the
Table 1 scalars.  :class:`ActScenario` is exactly that: every ACT input as
a named scalar field, with ``total_g()`` evaluating Eq. 1-8 directly.
Ranges for each parameter (Table 1's "Range" column) live alongside so the
analysis modules can sweep and sample without inventing bounds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.errors import UnknownEntryError
from repro.core.parameters import (
    require_fraction,
    require_non_negative,
    require_positive,
)


@dataclass(frozen=True)
class ActScenario:
    """One complete assignment of the ACT model inputs (Table 1).

    Field names follow the paper's symbols.  Units are the library's
    canonical ones (hours, kWh, g CO2, cm^2, GB).
    """

    # Operational side (Eq. 1-2).
    energy_kwh: float = 8.0
    ci_use_g_per_kwh: float = 301.0
    duration_hours: float = 26_280.0  # T: 3 years
    lifetime_hours: float = 26_280.0  # LT: 3 years
    # Logic die (Eq. 4-5).
    soc_area_cm2: float = 1.0
    ci_fab_g_per_kwh: float = 447.5
    epa_kwh_per_cm2: float = 1.52
    gpa_g_per_cm2: float = 275.0
    mpa_g_per_cm2: float = 500.0
    fab_yield: float = 0.875
    # Memory / storage (Eq. 6-8).
    dram_gb: float = 4.0
    cps_dram_g_per_gb: float = 48.0
    ssd_gb: float = 64.0
    cps_ssd_g_per_gb: float = 6.3
    hdd_gb: float = 0.0
    cps_hdd_g_per_gb: float = 4.57
    # Packaging (Eq. 3).
    ic_count: float = 3.0
    packaging_g_per_ic: float = 150.0

    def __post_init__(self) -> None:
        require_non_negative("energy_kwh", self.energy_kwh)
        require_non_negative("ci_use_g_per_kwh", self.ci_use_g_per_kwh)
        require_non_negative("duration_hours", self.duration_hours)
        require_positive("lifetime_hours", self.lifetime_hours)
        require_non_negative("soc_area_cm2", self.soc_area_cm2)
        require_non_negative("ci_fab_g_per_kwh", self.ci_fab_g_per_kwh)
        require_non_negative("epa_kwh_per_cm2", self.epa_kwh_per_cm2)
        require_non_negative("gpa_g_per_cm2", self.gpa_g_per_cm2)
        require_non_negative("mpa_g_per_cm2", self.mpa_g_per_cm2)
        require_fraction("fab_yield", self.fab_yield)
        require_non_negative("dram_gb", self.dram_gb)
        require_non_negative("cps_dram_g_per_gb", self.cps_dram_g_per_gb)
        require_non_negative("ssd_gb", self.ssd_gb)
        require_non_negative("cps_ssd_g_per_gb", self.cps_ssd_g_per_gb)
        require_non_negative("hdd_gb", self.hdd_gb)
        require_non_negative("cps_hdd_g_per_gb", self.cps_hdd_g_per_gb)
        require_non_negative("ic_count", self.ic_count)
        require_non_negative("packaging_g_per_ic", self.packaging_g_per_ic)

    # --- Eq. 1-8, scalar form -------------------------------------------

    def operational_g(self) -> float:
        """Eq. 2."""
        return self.energy_kwh * self.ci_use_g_per_kwh

    def cpa_g_per_cm2(self) -> float:
        """Eq. 5."""
        return (
            self.ci_fab_g_per_kwh * self.epa_kwh_per_cm2
            + self.gpa_g_per_cm2
            + self.mpa_g_per_cm2
        ) / self.fab_yield

    def soc_embodied_g(self) -> float:
        """Eq. 4."""
        return self.soc_area_cm2 * self.cpa_g_per_cm2()

    def embodied_g(self) -> float:
        """Eq. 3."""
        return (
            self.ic_count * self.packaging_g_per_ic
            + self.soc_embodied_g()
            + self.dram_gb * self.cps_dram_g_per_gb
            + self.ssd_gb * self.cps_ssd_g_per_gb
            + self.hdd_gb * self.cps_hdd_g_per_gb
        )

    def total_g(self) -> float:
        """Eq. 1."""
        amortization = self.duration_hours / self.lifetime_hours
        return self.operational_g() + amortization * self.embodied_g()

    def replace(self, **overrides: float) -> "ActScenario":
        """A copy with some fields overridden."""
        unknown = set(overrides) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise UnknownEntryError(
                "scenario parameter", ", ".join(sorted(unknown)),
                [f.name for f in dataclasses.fields(self)],
            )
        return dataclasses.replace(self, **overrides)

    def as_dict(self) -> dict[str, float]:
        """All fields as a plain dict."""
        return dataclasses.asdict(self)


#: Plausible low/high bounds per parameter, following Table 1's ranges and
#: the appendix tables.  Used by sensitivity sweeps and Monte Carlo.
PARAMETER_RANGES: dict[str, tuple[float, float]] = {
    "energy_kwh": (1.0, 40.0),
    "ci_use_g_per_kwh": (11.0, 820.0),  # wind ... coal (Table 5)
    "duration_hours": (8_760.0, 26_280.0),
    "lifetime_hours": (8_760.0, 87_600.0),  # 1-10 years (Table 1)
    "soc_area_cm2": (0.3, 2.0),
    "ci_fab_g_per_kwh": (30.0, 700.0),  # Table 1
    "epa_kwh_per_cm2": (0.8, 3.5),  # Table 1
    "gpa_g_per_cm2": (100.0, 500.0),  # Table 1 / Table 7
    "mpa_g_per_cm2": (250.0, 750.0),
    "fab_yield": (0.5, 1.0),
    "dram_gb": (2.0, 16.0),
    "cps_dram_g_per_gb": (48.0, 600.0),  # Table 9
    "ssd_gb": (32.0, 512.0),
    "cps_ssd_g_per_gb": (3.95, 30.0),  # Table 10
    "hdd_gb": (0.0, 4000.0),
    "cps_hdd_g_per_gb": (1.14, 20.5),  # Table 11
    "ic_count": (1.0, 100.0),
    "packaging_g_per_ic": (75.0, 300.0),
}


def parameter_range(name: str) -> tuple[float, float]:
    """The (low, high) bounds for a named scenario parameter."""
    try:
        return PARAMETER_RANGES[name]
    except KeyError:
        raise UnknownEntryError(
            "scenario parameter", name, PARAMETER_RANGES
        ) from None
