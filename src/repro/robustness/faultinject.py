"""Deterministic fault injection for scenario columns and data tables.

Carbon models feed real design decisions, so "what happens when an input
is corrupt?" must be a tested property, not a hope.  This module corrupts
inputs *on purpose* — reproducibly, from a seeded RNG — so the test suite
can prove that every fault class either raises a typed
:class:`~repro.core.errors.ReproError` somewhere in the stack or surfaces
as an explicitly warned, masked result.  The fault classes mirror the ways
real data goes bad:

========== =========================================================
``nan``    A sensor/parse hole: values become NaN.
``inf``    An overflow artifact: values become ±Inf.
``sign``   A sign flip: values are negated.
``scale``  A unit-scale error (g↔kg, GB↔TB): a whole column or table
           row is multiplied by a constant factor.
``drop``   A dropped entry: a column row or table key disappears.
``dup``    A duplicated entry: a column row or table label appears
           twice.
========== =========================================================

Everything returns *copies* — the bundled tables and caller columns are
never mutated — plus a :class:`FaultRecord` describing exactly what was
corrupted, so tests can assert detection against a clean-run oracle.

Table rows are frozen, eagerly-validated dataclasses; corrupt values are
planted with ``object.__setattr__`` on shallow copies, simulating data
that bypassed construction-time validation (e.g. loaded from disk).
"""

from __future__ import annotations

import copy
import dataclasses
import os
import signal
import time
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import ParameterError

#: Fault classes, in the order the smoke suite sweeps them.
FAULT_NAN = "nan"
FAULT_INF = "inf"
FAULT_SIGN = "sign"
FAULT_SCALE = "scale"
FAULT_DROP = "drop"
FAULT_DUP = "dup"
COLUMN_FAULTS = (FAULT_NAN, FAULT_INF, FAULT_SIGN, FAULT_SCALE, FAULT_DROP, FAULT_DUP)
TABLE_FAULTS = COLUMN_FAULTS

#: Unit-scale error factor: grams read as kilograms (or vice versa).
DEFAULT_SCALE_FACTOR = 1000.0


@dataclasses.dataclass(frozen=True)
class FaultRecord:
    """What a single injection corrupted.

    Attributes:
        kind: The fault class (one of :data:`COLUMN_FAULTS`).
        target: ``"column:<name>"`` or ``"table:<name>"``.
        indices: Corrupted row indices (column faults).
        keys: Corrupted table keys (table faults).
        factor: The multiplier applied (``scale`` faults).
    """

    kind: str
    target: str
    indices: tuple[int, ...] = ()
    keys: tuple[str, ...] = ()
    factor: float | None = None

    def __str__(self) -> str:
        where = (
            f"rows {list(self.indices)}"
            if self.indices
            else f"keys {list(self.keys)}"
        )
        suffix = f" ×{self.factor:g}" if self.factor is not None else ""
        return f"{self.kind} fault on {self.target} ({where}){suffix}"


def _pick_indices(
    rng: np.random.Generator, size: int, fraction: float
) -> np.ndarray:
    count = max(1, int(round(size * fraction)))
    return np.sort(rng.choice(size, size=min(count, size), replace=False))


def inject_column_fault(
    columns: Mapping[str, np.ndarray],
    name: str,
    kind: str,
    *,
    rng: np.random.Generator,
    fraction: float = 0.02,
    factor: float = DEFAULT_SCALE_FACTOR,
) -> tuple[dict[str, np.ndarray], FaultRecord]:
    """A copy of ``columns`` with one column corrupted.

    ``nan``/``inf``/``sign`` hit a sampled ``fraction`` of rows; ``scale``
    multiplies the *whole* column (unit errors are systematic); ``drop``
    and ``dup`` change the column's length, modeling a misaligned data
    feed.

    Args:
        columns: Column arrays keyed by scenario field name.
        name: The column to corrupt (must be present).
        kind: One of :data:`COLUMN_FAULTS`.
        rng: Seeded generator — identical seeds inject identical faults.
        fraction: Share of rows corrupted by the per-row fault classes.
        factor: Multiplier for ``scale`` faults.
    """
    if name not in columns:
        raise ParameterError(f"no column {name!r} to corrupt")
    corrupted = {key: np.array(value) for key, value in columns.items()}
    column = corrupted[name]
    target = f"column:{name}"
    if kind == FAULT_NAN:
        indices = _pick_indices(rng, column.size, fraction)
        column[indices] = np.nan
        record = FaultRecord(kind, target, indices=tuple(map(int, indices)))
    elif kind == FAULT_INF:
        indices = _pick_indices(rng, column.size, fraction)
        signs = np.where(rng.random(indices.size) < 0.5, -np.inf, np.inf)
        column[indices] = signs
        record = FaultRecord(kind, target, indices=tuple(map(int, indices)))
    elif kind == FAULT_SIGN:
        indices = _pick_indices(rng, column.size, fraction)
        column[indices] = -column[indices]
        record = FaultRecord(kind, target, indices=tuple(map(int, indices)))
    elif kind == FAULT_SCALE:
        corrupted[name] = column * factor
        record = FaultRecord(
            kind, target, indices=tuple(range(column.size)), factor=factor
        )
    elif kind == FAULT_DROP:
        index = int(rng.integers(column.size))
        corrupted[name] = np.delete(column, index)
        record = FaultRecord(kind, target, indices=(index,))
    elif kind == FAULT_DUP:
        index = int(rng.integers(column.size))
        corrupted[name] = np.insert(column, index, column[index])
        record = FaultRecord(kind, target, indices=(index,))
    else:
        raise ParameterError(
            f"unknown column fault {kind!r}; use one of {COLUMN_FAULTS}"
        )
    return corrupted, record


def _corrupt_row(row: object, attribute: str, value: float) -> object:
    """A shallow copy of a frozen table row with one attribute overwritten.

    Bypasses ``__post_init__`` validation on purpose — the whole point is
    modeling values that arrived without passing through the constructors.
    """
    clone = copy.copy(row)
    object.__setattr__(clone, attribute, value)
    return clone


def inject_table_fault(
    rows: Mapping[str, object],
    kind: str,
    *,
    rng: np.random.Generator,
    attribute: str = "cps_g_per_gb",
    factor: float = DEFAULT_SCALE_FACTOR,
) -> tuple[dict[str, object], FaultRecord]:
    """A corrupted copy of a bundled data table.

    ``nan``/``inf``/``sign``/``scale`` overwrite ``attribute`` on one
    sampled row; ``drop`` removes a key; ``dup`` inserts an alias key
    whose row carries a duplicate label (what a bad merge produces).

    Args:
        rows: A table mapping (e.g. ``DRAM_TECHNOLOGIES``).  Never mutated.
        kind: One of :data:`TABLE_FAULTS`.
        rng: Seeded generator.
        attribute: The numeric row attribute the value faults overwrite.
        factor: Multiplier for ``scale`` faults.
    """
    if not rows:
        raise ParameterError("cannot corrupt an empty table")
    corrupted: dict[str, object] = dict(rows)
    keys = sorted(corrupted)
    key = keys[int(rng.integers(len(keys)))]
    target = f"table:{attribute}"
    if kind == FAULT_NAN:
        corrupted[key] = _corrupt_row(corrupted[key], attribute, float("nan"))
    elif kind == FAULT_INF:
        corrupted[key] = _corrupt_row(corrupted[key], attribute, float("inf"))
    elif kind == FAULT_SIGN:
        original = getattr(corrupted[key], attribute)
        corrupted[key] = _corrupt_row(corrupted[key], attribute, -original)
    elif kind == FAULT_SCALE:
        original = getattr(corrupted[key], attribute)
        corrupted[key] = _corrupt_row(
            corrupted[key], attribute, original * factor
        )
        return corrupted, FaultRecord(kind, target, keys=(key,), factor=factor)
    elif kind == FAULT_DROP:
        del corrupted[key]
    elif kind == FAULT_DUP:
        alias = f"{key}__dup"
        corrupted[alias] = corrupted[key]
        return corrupted, FaultRecord(kind, target, keys=(key, alias))
    else:
        raise ParameterError(
            f"unknown table fault {kind!r}; use one of {TABLE_FAULTS}"
        )
    return corrupted, FaultRecord(kind, target, keys=(key,))


# --------------------------------------------------------------------------
# Process-level chaos: faults against the execution substrate, not the data.
#
# The column/table faults above corrupt *inputs*; these corrupt the
# *machinery* — kill a worker mid-shard, stall it past its deadline, drop
# its result message, hand it a dangling shared-memory name — so every
# recovery path in the shard supervisor is provable in tests rather than
# assumed.  Faults are armed through a filesystem token budget: each
# planned firing is one token file, consumed atomically (``os.remove``)
# by whichever process fires it.  Tokens survive fork, spawn, respawn,
# and retry — exactly the chaos lifecycle — and "already consumed" is a
# natural no-op, so a retried shard runs clean once its fault has fired.
# --------------------------------------------------------------------------

#: Process fault classes (see :class:`ProcessFault`).
FAULT_KILL = "kill"
FAULT_STALL = "stall"
FAULT_DROP_RESULT = "drop_result"
FAULT_CORRUPT_SHM = "corrupt_shm"
PROCESS_FAULTS = (FAULT_KILL, FAULT_STALL, FAULT_DROP_RESULT, FAULT_CORRUPT_SHM)

#: The segment name planted by ``corrupt_shm`` — attaching to it raises
#: ``FileNotFoundError`` (an infrastructure fault, so the supervisor
#: retries; the retried shard gets the parent's pristine handle).
CORRUPT_SHM_NAME = "repro_faultinject_dangling"


class ResultDropped(BaseException):
    """Chaos signal: the shard ran, but its result message vanished.

    Deliberately a ``BaseException`` so no model-level ``except
    Exception`` can absorb it, and flagged with
    :attr:`repro_dropped_result` so the worker loop's transport layer can
    recognize it without importing this module (the parallel package must
    not depend on the robustness package).
    """

    repro_dropped_result = True


@dataclasses.dataclass(frozen=True)
class ProcessFault:
    """One planned fault against the worker fleet.

    Attributes:
        kind: One of :data:`PROCESS_FAULTS` — ``"kill"`` (SIGKILL the
            worker at shard start), ``"stall"`` (sleep past the shard
            deadline), ``"drop_result"`` (evaluate, then lose the result
            message), ``"corrupt_shm"`` (dangle the task's shared-memory
            handles before attach).
        shard: Only fire on this shard index; ``None`` fires on any.
        times: How many firings this fault is budgeted (each firing
            consumes one token; retried shards run clean once spent).
        stall_seconds: How long a ``"stall"`` fault sleeps.
    """

    kind: str
    shard: int | None = None
    times: int = 1
    stall_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in PROCESS_FAULTS:
            raise ParameterError(
                f"unknown process fault {self.kind!r}; "
                f"use one of {PROCESS_FAULTS}"
            )
        if self.times < 1:
            raise ParameterError(
                f"a process fault must fire at least once, got times={self.times}"
            )
        if not self.stall_seconds >= 0.0:
            raise ParameterError(
                f"stall_seconds must be >= 0, got {self.stall_seconds!r}"
            )


class ProcessFaultPlan:
    """An armed set of process faults with a filesystem token budget.

    The plan directory holds one token file per planned firing.  The
    parent creates the plan and threads its picklable :meth:`spec` into
    each shard task; workers consume tokens as faults fire.  The
    filesystem is the one shared mutable store that survives every chaos
    event we inject (worker death, respawn, interpreter restart under
    ``spawn``), which is what makes ``times=N`` budgets exact.
    """

    def __init__(self, root: Path, faults: Sequence[ProcessFault]):
        self.root = Path(root)
        self.faults = tuple(faults)

    @classmethod
    def create(
        cls, root: "Path | str", faults: Sequence[ProcessFault]
    ) -> "ProcessFaultPlan":
        """Arm ``faults`` under ``root`` (created; must be writable)."""
        plan = cls(Path(root), faults)
        plan.root.mkdir(parents=True, exist_ok=True)
        for index, fault in enumerate(plan.faults):
            for firing in range(fault.times):
                plan._token(index, firing).touch()
        return plan

    def _token(self, index: int, firing: int) -> Path:
        return self.root / f"{index:03d}-{firing:02d}.tok"

    def spec(self) -> dict:
        """The picklable description workers fire faults from."""
        return {
            "faults": [
                {
                    "kind": fault.kind,
                    "shard": fault.shard,
                    "stall_seconds": fault.stall_seconds,
                    "tokens": [
                        str(self._token(index, firing))
                        for firing in range(fault.times)
                    ],
                }
                for index, fault in enumerate(self.faults)
            ]
        }

    def remaining(self, index: int = 0) -> int:
        """Unconsumed firings left in fault ``index``'s budget."""
        fault = self.faults[index]
        return sum(
            self._token(index, firing).exists()
            for firing in range(fault.times)
        )


def _consume_token(paths: Sequence[str]) -> bool:
    """Atomically claim one firing from a fault's token budget.

    ``os.remove`` either succeeds in exactly one process or raises
    ``FileNotFoundError`` — no lock needed even with racing workers.
    """
    for path in paths:
        try:
            os.remove(path)
        except FileNotFoundError:
            continue
        return True
    return False


def apply_process_faults(
    spec: Mapping, shard: int, task: dict, stage: str
) -> None:
    """Fire any armed faults matching this shard at this stage.

    Called by the worker's shard entry point at ``stage="start"`` (before
    transport attach — ``kill``/``stall``/``corrupt_shm`` fire here) and
    ``stage="finish"`` (after evaluation — ``drop_result`` fires here, by
    raising :class:`ResultDropped` so the completed work's message never
    reaches the parent).
    """
    for fault in spec["faults"]:
        if fault["shard"] is not None and fault["shard"] != shard:
            continue
        kind = fault["kind"]
        fires_now = (
            stage == "finish"
            if kind == FAULT_DROP_RESULT
            else stage == "start"
        )
        if not fires_now or not _consume_token(fault["tokens"]):
            continue
        if kind == FAULT_KILL:
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == FAULT_STALL:
            time.sleep(fault["stall_seconds"])
        elif kind == FAULT_CORRUPT_SHM:
            for side in ("input", "output"):
                entry = task.get(side)
                if entry is not None and entry[0] == "shm":
                    _, (_, layout) = entry
                    task[side] = (entry[0], (CORRUPT_SHM_NAME, layout))
        elif kind == FAULT_DROP_RESULT:
            raise ResultDropped(
                f"chaos: dropped result message for shard {shard}"
            )
