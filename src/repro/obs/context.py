"""The RunContext: one object every layer reports through.

Instead of ad-hoc prints and buried counters, the engine, robustness,
analysis, DSE, and experiment layers all observe through the *active*
:class:`RunContext` — a bundle of a :class:`~repro.obs.trace.Tracer`,
a :class:`~repro.obs.metrics.MetricsRegistry`, an event sink, and a
:class:`~repro.obs.manifest.RunManifest`.

The default active context is :data:`NULL_CONTEXT`, a no-op whose
``enabled`` flag is ``False``: instrumented code guards with one attribute
check (or calls the no-op methods, which do nothing), so the hot path costs
essentially nothing when nobody is watching.  The CLI's ``--trace`` /
``--metrics`` flags and the ``profile`` subcommand install a real context
with :func:`use_context`; library callers can do the same::

    with use_context(RunContext.create(trace_path="run.jsonl")) as ctx:
        run_monte_carlo(base, draws=100_000)
    print(ctx.tracer.render_tree())

Context activation is process-global (a simple stack), matching how the
stack is used: one run at a time per process.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.obs.events import EventSink, JsonlEventSink, MemoryEventSink
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer


class _NullSpan:
    """A reusable no-op context manager standing in for a real span."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class RunContext:
    """An active observability context: tracer + metrics + events + manifest.

    Attributes:
        enabled: ``True`` — instrumented code may use this flag to skip
            attribute preparation entirely under the null context.
        tracer: The span tree collector.
        metrics: The counter/timer/histogram registry.
        sink: Structured event sink (span events are mirrored here).
        manifest: Provenance of the run (emitted as the first event).
    """

    enabled: bool = True

    def __init__(
        self,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        sink: EventSink | None = None,
        manifest: RunManifest | None = None,
    ) -> None:
        self.sink = sink if sink is not None else EventSink()
        self.tracer = tracer if tracer is not None else Tracer()
        if self.tracer.on_event is None:
            self.tracer.on_event = self._span_event
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.manifest = manifest
        self._closed = False
        if manifest is not None:
            self.sink.emit("run_start", manifest=manifest.as_dict())

    @classmethod
    def create(
        cls,
        *,
        trace_path: str | None = None,
        seed: int | None = None,
        parameters: Mapping[str, object] | None = None,
        argv: "list[str] | tuple[str, ...] | None" = None,
        describe_git: bool = True,
    ) -> "RunContext":
        """A fully-wired context: JSONL sink when ``trace_path`` is given
        (in-memory otherwise), fresh tracer/metrics, and a built manifest."""
        sink: EventSink = (
            JsonlEventSink(trace_path) if trace_path else MemoryEventSink()
        )
        manifest = build_manifest(
            seed=seed, parameters=parameters, argv=argv,
            describe_git=describe_git,
        )
        return cls(sink=sink, manifest=manifest)

    # --- instrumentation API (what the layers call) ---------------------

    def span(self, name: str, **attributes: object):
        """A nested, timed span (also mirrored to the event sink)."""
        return self.tracer.span(name, **attributes)

    def count(self, name: str, value: float = 1) -> None:
        """Increment a named counter."""
        self.metrics.count(name, value)

    def observe(self, name: str, seconds: float) -> None:
        """Record a duration observation."""
        self.metrics.observe(name, seconds)

    def record(self, name: str, value: float) -> None:
        """Record a value into a histogram."""
        self.metrics.record(name, value)

    def event(self, event: str, **fields: object) -> None:
        """Emit a structured event to the sink."""
        self.sink.emit(event, **fields)

    # --- lifecycle ------------------------------------------------------

    def _span_event(self, kind: str, span: Span) -> None:
        if kind == "span_start":
            self.sink.emit(
                "span_start", name=span.name, attributes=span.attributes
            )
        else:
            self.sink.emit(
                "span_end",
                name=span.name,
                attributes=span.attributes,
                duration_s=span.duration_s,
                status=span.status,
            )

    def close(self) -> None:
        """Emit the final metrics snapshot and close the sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.sink.emit("run_end", metrics=self.metrics.snapshot())
        self.sink.close()


class NullRunContext(RunContext):
    """The do-nothing default context; every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=EventSink())

    def span(self, name: str, **attributes: object):
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        return None

    def observe(self, name: str, seconds: float) -> None:
        return None

    def record(self, name: str, value: float) -> None:
        return None

    def event(self, event: str, **fields: object) -> None:
        return None

    def close(self) -> None:
        return None


#: The process-wide default: observability off, zero work per call.
NULL_CONTEXT = NullRunContext()

_ACTIVE: list[RunContext] = [NULL_CONTEXT]


def current_context() -> RunContext:
    """The innermost active context (the null context by default)."""
    return _ACTIVE[-1]


@contextmanager
def use_context(context: RunContext) -> Iterator[RunContext]:
    """Make ``context`` the active one for the duration of the block.

    Activations nest; the previous context is restored on exit.  The
    context is *not* closed on exit — callers decide when to
    :meth:`RunContext.close` (the CLI closes after printing summaries).
    """
    _ACTIVE.append(context)
    try:
        yield context
    finally:
        _ACTIVE.pop()
