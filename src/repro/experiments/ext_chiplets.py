"""Extension experiment: chiplet partitioning (Figure 1's Reuse lever).

Not a paper figure — the paper names chiplet design as a sustainability
lever without evaluating it.  This experiment quantifies the lever with
the ACT model and pins down its structure: a break-even die size below
which monolithic wins, growing savings toward reticle-class dies, and a
defect-density dependence.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    check_in_band,
    check_true,
)
from repro.fabs.chiplets import (
    chiplet_break_even_area_mm2,
    optimal_partition,
    partition,
    partition_sweep,
)
from repro.fabs.fab import default_fab
from repro.reporting.figures import FigureData, Series

EXPERIMENT_ID = "ext-chiplets"
TITLE = "Extension: chiplet vs monolithic embodied carbon (Reuse lever)"

_DIE_MM2 = 600.0


def run() -> ExperimentResult:
    """Sweep partition counts for a reticle-class 7 nm design."""
    fab = default_fab("7")
    sweep = partition_sweep(_DIE_MM2, fab, max_chiplets=12)
    counts = tuple(design.chiplets for design in sweep)

    figure = FigureData(
        title=f"Chiplet partitioning of a {_DIE_MM2:.0f} mm^2 7nm design",
        x_label="chiplets",
        y_label="kg CO2e",
        series=(
            Series("silicon", counts,
                   tuple(d.silicon_g / 1000.0 for d in sweep)),
            Series("packaging", counts,
                   tuple(d.packaging_g / 1000.0 for d in sweep)),
            Series("total", counts, tuple(d.total_g / 1000.0 for d in sweep)),
        ),
    )

    best = optimal_partition(_DIE_MM2, fab)
    mono = partition(_DIE_MM2, 1, fab)
    break_even = chiplet_break_even_area_mm2(fab)
    small = optimal_partition(40.0, fab)

    checks = (
        check_true(
            "reticle-class dies prefer chiplets",
            best.chiplets > 1,
            f"{best.chiplets} chiplets optimal",
            "> 1 chiplet",
        ),
        check_in_band(
            "chiplet saving on a 600 mm^2 die",
            mono.total_g / best.total_g, 1.3, 3.0,
            paper="(not evaluated in the paper)",
        ),
        check_true(
            "small dies stay monolithic",
            small.chiplets == 1,
            f"{small.chiplets} chiplet(s) at 40 mm^2",
            "monolithic below the break-even size",
        ),
        check_in_band(
            "break-even die size (mm^2)", break_even, 30.0, 300.0,
        ),
        check_true(
            "per-chiplet yield improves with splitting",
            best.per_chiplet_yield > mono.per_chiplet_yield,
            f"{best.per_chiplet_yield:.3f} vs {mono.per_chiplet_yield:.3f}",
            "smaller dies yield better",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=(figure,),
        reference={
            "paper hook": "Figure 1 lists 'chiplet design' under Reuse",
        },
        checks=checks,
    )
