"""Ablation/benchmark: ACT against the prior-work baselines (Section 2.3).

Regenerates the quantitative version of the paper's critique: the old-node
parametric inventory under-predicts modern-node carbon by a factor that
grows toward 3 nm, and exergy accounting is blind to fab energy mix.
"""

from repro.baselines import exergy_blind_spot, greenchip_vs_act


def _run_comparison():
    return greenchip_vs_act(), exergy_blind_spot()


def test_bench_baseline_comparison(benchmark):
    """ACT vs GreenChip-style and exergy baselines."""
    node_rows, blind = benchmark(_run_comparison)
    print()
    for row in node_rows:
        marker = "*" if row.baseline_extrapolated else " "
        print(f"{row.node:9s} ACT={row.act_cpa_g_per_cm2:7.0f} "
              f"baseline={row.baseline_cpa_g_per_cm2:6.0f}{marker} "
              f"ratio={row.act_over_baseline:.2f}")
    print("(* = node outside the baseline's 90-28 nm characterization)")
    ratios = {row.node: row.act_over_baseline for row in node_rows}
    assert ratios["3"] > ratios["28"] > 1.0
    assert ratios["3"] > 3.0  # the divergence the paper warns about
    print(f"exergy separation {blind.exergy_separation:.2f}x vs "
          f"ACT {blind.act_separation:.2f}x")
    assert blind.exergy_separation == 1.0
    assert blind.act_separation > 1.5
