"""Device-level data: product environmental reports and ACT bill-of-ICs.

Two kinds of records feed the device-scale experiments:

* :class:`DeviceReport` — the *top-down* numbers industry product
  environmental reports publish (Figure 1's life-cycle split, and the
  LCA-based IC estimates of Figure 4 via the ~44% IC share of
  manufacturing the paper takes from Apple's sustainability reports).
* Bottom-up ACT platforms (:func:`iphone11_platform`,
  :func:`ipad_platform`) — per-IC bills assembled from public teardowns,
  with the "other ICs" bucket calibrated so the bottom-up totals land near
  the paper's reported 17 kg / 21 kg (the paper's own teardown inputs are
  not public; see DESIGN.md's substitution notes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.components import (
    CATEGORY_OTHER,
    DramComponent,
    LogicComponent,
    SsdComponent,
)
from repro.core.errors import UnknownEntryError
from repro.core.model import Platform
from repro.data.provenance import CALIBRATED, INDUSTRY_REPORT, Source

#: Share of a device's manufacturing footprint owed to ICs ("roughly half,
#: 44%, the manufacturing footprint of all devices owe to ICs").
IC_SHARE_OF_MANUFACTURING = 0.44


@dataclass(frozen=True)
class DeviceReport:
    """A product environmental report's life-cycle split.

    Attributes:
        name: Device name.
        year: Release year.
        total_kg: Reported whole-life footprint (kg CO2e).
        manufacturing_share: Fraction from hardware manufacturing.
        use_share: Fraction from operational use.
        transport_share: Fraction from product transport.
        eol_share: Fraction from end-of-life processing.
        source: Provenance record.
    """

    name: str
    year: int
    total_kg: float
    manufacturing_share: float
    use_share: float
    transport_share: float
    eol_share: float
    source: Source

    @property
    def manufacturing_kg(self) -> float:
        return self.total_kg * self.manufacturing_share

    @property
    def use_kg(self) -> float:
        return self.total_kg * self.use_share

    def lca_ic_estimate_kg(
        self, ic_share: float = IC_SHARE_OF_MANUFACTURING
    ) -> float:
        """Figure 4's top-down IC estimate: total × manufacturing × IC share."""
        return self.manufacturing_kg * ic_share


_APPLE = Source(
    INDUSTRY_REPORT,
    "Apple product environmental reports",
    "totals calibrated so the top-down IC estimates match the paper's "
    "23 kg (iPhone 11) and 28 kg (iPad)",
)

DEVICE_REPORTS: dict[str, DeviceReport] = {
    report.name: report
    for report in (
        # Figure 1 left bar: manufacturing 45%, use 49%, remainder 6%.
        DeviceReport("iphone3gs", 2009, 55.0, 0.45, 0.49, 0.04, 0.02, _APPLE),
        # Figure 1 right bar: manufacturing 79%, use 17%, remainder 4%.
        DeviceReport("iphone11", 2019, 66.2, 0.79, 0.17, 0.03, 0.01, _APPLE),
        DeviceReport("ipad", 2019, 80.6, 0.79, 0.17, 0.03, 0.01, _APPLE),
    )
}


def device_report(name: str) -> DeviceReport:
    """Look up a product environmental report by device name."""
    key = name.strip().lower().replace(" ", "").replace("_", "")
    try:
        return DEVICE_REPORTS[key]
    except KeyError:
        raise UnknownEntryError("device report", name, DEVICE_REPORTS) from None


_TEARDOWN = Source(
    CALIBRATED,
    "public teardowns + calibration",
    "'other ICs' area and IC count calibrated to the paper's bottom-up "
    "totals (~17 kg iPhone 11, ~21 kg iPad)",
)

#: Category label for camera sensor silicon in the Figure 4 breakdown.
CATEGORY_CAMERA = "camera"


def iphone11_platform() -> Platform:
    """The bottom-up ACT bill of ICs for an iPhone 11 (Figure 4, left).

    Components: the 7 nm A13 Bionic SoC (98.5 mm^2), 4 GB LPDDR4X, 64 GB
    V3-TLC NAND, three camera sensors on a mature node, the 14 nm
    modem/RF complex, a calibrated "other ICs" bucket (PMICs, audio, NFC,
    Wi-Fi/BT, display/touch drivers, power amplifiers), and per-IC
    packaging over the device's ~60 packaged semiconductor devices.
    """
    return Platform(
        "iPhone 11",
        (
            LogicComponent.at_node("A13 Bionic", 98.5, "7"),
            DramComponent.of("LPDDR4X DRAM", 4, "lpddr4"),
            SsdComponent.of("NAND flash", 64, "nand_v3_tlc"),
            LogicComponent.at_node(
                "Camera sensors", 90.0, "28", category=CATEGORY_CAMERA, ics=3
            ),
            LogicComponent.at_node(
                "Modem + RF", 80.0, "14", category=CATEGORY_OTHER, ics=4
            ),
            LogicComponent.at_node(
                "Other ICs", 311.0, "28", category=CATEGORY_OTHER, ics=51
            ),
        ),
    )


def ipad_platform() -> Platform:
    """The bottom-up ACT bill of ICs for a 2019 iPad (Figure 4, right).

    Larger display electronics (driver/touch silicon) and more packaged
    parts than the phone, around a 16 nm A10 Fusion SoC.
    """
    return Platform(
        "iPad",
        (
            LogicComponent.at_node("A10 Fusion", 125.0, 16),
            DramComponent.of("LPDDR4 DRAM", 3, "lpddr4"),
            SsdComponent.of("NAND flash", 32, "nand_v3_tlc"),
            LogicComponent.at_node(
                "Camera sensors", 40.0, "28", category=CATEGORY_CAMERA, ics=2
            ),
            LogicComponent.at_node(
                "Modem + display drivers", 100.0, "14", category=CATEGORY_OTHER, ics=6
            ),
            LogicComponent.at_node(
                "Other ICs", 300.0, "28", category=CATEGORY_OTHER, ics=81
            ),
        ),
    )


ACT_PLATFORM_BUILDERS = {
    "iphone11": iphone11_platform,
    "ipad": ipad_platform,
}


def act_platform(name: str) -> Platform:
    """The bottom-up ACT platform for a named device."""
    key = name.strip().lower().replace(" ", "").replace("_", "")
    try:
        return ACT_PLATFORM_BUILDERS[key]()
    except KeyError:
        raise UnknownEntryError(
            "ACT device platform", name, ACT_PLATFORM_BUILDERS
        ) from None
