"""Hardened evaluation: guarded kernels, fault injection, resumable runs.

Three pillars, one discipline — a corrupted input must raise a typed
:class:`~repro.core.errors.ReproError` or degrade *explicitly*, never
return plausible-but-wrong CO2 numbers:

* :mod:`repro.robustness.guard` — :class:`GuardedEngine` pre-validates
  batch columns (NaN/Inf/domain/Table 1 range, per-column per-index
  diagnostics) under ``strict`` / ``repair`` / ``skip`` policies and
  cross-checks kernel anomalies against the scalar reference path,
  raising :class:`~repro.core.errors.DivergenceError` on disagreement.
* :mod:`repro.robustness.faultinject` — deterministic, seeded corruption
  of scenario columns and bundled data tables, so tests can prove every
  fault class is caught end to end.
* :mod:`repro.robustness.checkpoint` — chunked Monte Carlo and grid
  sweeps with atomic write-temp-then-rename checkpoints, fingerprint-
  verified resume (bit-for-bit identical to an uninterrupted run), and
  cooperative timeout/cancellation that salvages partial results.
"""

from repro.robustness.guard import (
    CROSS_CHECK_TOLERANCE,
    POLICIES,
    REPAIR,
    SKIP,
    STRICT,
    ColumnDiagnostic,
    GuardedEngine,
    GuardedResult,
    RobustnessWarning,
    diagnose_columns,
)
from repro.robustness.faultinject import (
    COLUMN_FAULTS,
    DEFAULT_SCALE_FACTOR,
    TABLE_FAULTS,
    FaultRecord,
    inject_column_fault,
    inject_table_fault,
)
from repro.robustness.checkpoint import (
    CHECKPOINT_VERSION,
    DEFAULT_CHUNK_ROWS,
    CancelToken,
    CountingCancelToken,
    run_monte_carlo_chunked,
    run_schedule_sweep_chunked,
    sweep_grid_batched_chunked,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "COLUMN_FAULTS",
    "CROSS_CHECK_TOLERANCE",
    "CancelToken",
    "ColumnDiagnostic",
    "CountingCancelToken",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_SCALE_FACTOR",
    "FaultRecord",
    "GuardedEngine",
    "GuardedResult",
    "POLICIES",
    "REPAIR",
    "RobustnessWarning",
    "SKIP",
    "STRICT",
    "TABLE_FAULTS",
    "diagnose_columns",
    "inject_column_fault",
    "inject_table_fault",
    "run_monte_carlo_chunked",
    "run_schedule_sweep_chunked",
    "sweep_grid_batched_chunked",
]
