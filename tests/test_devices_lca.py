"""Device reports, bottom-up platforms, and the LCA comparison layer."""

import pytest

from repro.core.errors import UnknownEntryError
from repro.data.devices import (
    IC_SHARE_OF_MANUFACTURING,
    act_platform,
    device_report,
    ipad_platform,
    iphone11_platform,
)
from repro.data.lca_reports import (
    TABLE12_ROWS,
    breakdown,
    ic_share,
)
from repro.lca.comparison import COMPARISON_CASES, compare_all
from repro.lca.topdown import topdown_ic_estimate


class TestDeviceReports:
    def test_shares_sum_to_one(self):
        for name in ("iphone3gs", "iphone11", "ipad"):
            report = device_report(name)
            total = (
                report.manufacturing_share
                + report.use_share
                + report.transport_share
                + report.eol_share
            )
            assert total == pytest.approx(1.0), name

    def test_lookup_normalization(self):
        assert device_report("iPhone 11").name == "iphone11"
        assert device_report("iphone_3gs").year == 2009

    def test_unknown_device(self):
        with pytest.raises(UnknownEntryError):
            device_report("pixel 8")

    def test_manufacturing_kg(self):
        report = device_report("iphone11")
        assert report.manufacturing_kg == pytest.approx(
            report.total_kg * 0.79
        )


class TestTopDown:
    def test_iphone11_estimate_23kg(self):
        assert topdown_ic_estimate("iphone11").ic_kg == pytest.approx(23.0, rel=0.01)

    def test_ipad_estimate_28kg(self):
        assert topdown_ic_estimate("ipad").ic_kg == pytest.approx(28.0, rel=0.01)

    def test_default_ic_share(self):
        estimate = topdown_ic_estimate("iphone11")
        assert estimate.ic_share == IC_SHARE_OF_MANUFACTURING == 0.44

    def test_custom_ic_share(self):
        half = topdown_ic_estimate("iphone11", ic_share=0.22)
        assert half.ic_kg == pytest.approx(23.0 / 2, rel=0.01)

    def test_report_object_accepted(self):
        report = device_report("ipad")
        assert topdown_ic_estimate(report).device == "ipad"


class TestBottomUpPlatforms:
    def test_iphone11_near_17kg(self):
        assert iphone11_platform().embodied_kg() == pytest.approx(17.0, rel=0.05)

    def test_ipad_near_21kg(self):
        assert ipad_platform().embodied_kg() == pytest.approx(21.0, rel=0.05)

    def test_bottom_up_below_top_down(self):
        for name in ("iphone11", "ipad"):
            assert (
                act_platform(name).embodied_kg()
                < topdown_ic_estimate(name).ic_kg
            )

    def test_breakdown_categories(self):
        categories = set(iphone11_platform().embodied().by_category())
        assert {"soc", "dram", "ssd", "camera", "other", "packaging"} <= categories

    def test_soc_is_the_biggest_single_die(self):
        report = iphone11_platform().embodied()
        soc = next(i for i in report.items if i.category == "soc")
        camera = next(i for i in report.items if i.category == "camera")
        assert soc.carbon_g > camera.carbon_g

    def test_unknown_platform(self):
        with pytest.raises(UnknownEntryError):
            act_platform("galaxy")


class TestLcaReports:
    def test_table12_row_count(self):
        assert len(TABLE12_ROWS) == 10

    def test_fairphone_ic_share_near_70(self):
        assert ic_share("fairphone3") == pytest.approx(0.70, abs=0.03)

    def test_dell_ic_share_near_80(self):
        assert ic_share("dell_r740") == pytest.approx(0.80, abs=0.03)

    def test_breakdown_lookup_normalizes(self):
        assert breakdown("Dell-R740") is breakdown("dell_r740")

    def test_unknown_breakdown(self):
        with pytest.raises(UnknownEntryError):
            breakdown("macbook")


class TestComparison:
    def test_every_case_has_a_paper_row(self):
        for case in COMPARISON_CASES:
            row = case.paper_row()
            assert row.ic == case.ic
            assert row.device == case.device

    def test_memory_rows_node2_below_node1(self):
        for result in compare_all():
            if result.ic in {"RAM", "Flash", "Flash + RAM"}:
                assert result.our_node2_kg < result.our_node1_kg, result

    def test_logic_rows_node2_above_node1(self):
        for result in compare_all():
            if result.ic in {"CPU", "Other ICs"}:
                assert result.our_node2_kg > result.our_node1_kg, result

    def test_estimates_within_order_of_magnitude_of_paper(self):
        for result in compare_all():
            ratio = result.our_node2_kg / result.paper_node2_kg
            assert 0.1 < ratio < 10.0, result

    def test_fairphone_cpu_close_to_paper(self):
        row = next(
            r for r in compare_all()
            if r.ic == "CPU" and r.device == "Fairphone 3"
        )
        assert row.our_node2_kg == pytest.approx(1.1, rel=0.3)
