"""Mobile platform assembly: from catalog chipsets to ACT design points.

Bridges the SoC catalog + workload substrate into the core model:

* :func:`soc_platform` — the Eq. 3 platform (SoC die + DRAM + packaging)
  behind each Figure 8(c) embodied-carbon bar.
* :func:`soc_design_point` — the (C, E, D, A) tuple each Table 2 metric
  consumes for Figure 8(d).
* :func:`design_space` — all thirteen chipsets at once.
* :func:`annual_efficiency_improvement` — the per-family log-linear
  efficiency regression behind Figure 14 (left).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.components import DramComponent, LogicComponent
from repro.core.metrics import DesignPoint
from repro.core.model import Platform
from repro.data.soc_catalog import (
    FAMILIES,
    MobileSoc,
    all_socs,
    family_socs,
)
from repro.workloads.geekbench import aggregate_delay_s, aggregate_energy_kwh


def soc_platform(soc: MobileSoc) -> Platform:
    """The ACT platform for one chipset: SoC die plus its DRAM.

    The SoC die is manufactured in the default fab for its node; DRAM uses
    the era-appropriate Table 9 technology recorded in the catalog.
    """
    return Platform(
        soc.name,
        (
            LogicComponent.at_node(soc.name, soc.die_area_mm2, soc.node),
            DramComponent.of(
                f"{soc.name} DRAM", soc.dram_gb, soc.dram_technology
            ),
        ),
    )


def soc_embodied_g(soc: MobileSoc) -> float:
    """Embodied carbon (g CO2) of the chipset platform (Figure 8(c))."""
    return soc_platform(soc).embodied_g()


def soc_design_point(soc: MobileSoc) -> DesignPoint:
    """The metric inputs (C, E, D, A) for one chipset.

    Energy and delay are the geometric means over the seven-workload mobile
    suite, matching the paper's methodology.
    """
    return DesignPoint(
        name=soc.name,
        embodied_carbon_g=soc_embodied_g(soc),
        energy_kwh=aggregate_energy_kwh(soc),
        delay_s=aggregate_delay_s(soc),
        area_mm2=soc.die_area_mm2,
    )


def design_space(socs: tuple[MobileSoc, ...] | None = None) -> tuple[DesignPoint, ...]:
    """Design points for a set of chipsets (default: the full catalog)."""
    if socs is None:
        socs = all_socs()
    return tuple(soc_design_point(soc) for soc in socs)


@dataclass(frozen=True)
class EfficiencyTrend:
    """Annual energy-efficiency improvement of one SoC family.

    Attributes:
        family: SoC family name.
        annual_improvement: Multiplicative year-over-year efficiency gain
            (e.g. 1.21 means 21%/year).
        base_year: Earliest release year in the regression.
    """

    family: str
    annual_improvement: float
    base_year: int


def family_efficiency_trend(family: str) -> EfficiencyTrend:
    """Log-linear regression of efficiency vs release year for one family."""
    socs = family_socs(family)
    if len(socs) < 2:
        raise ValueError(f"family {family!r} has too few chipsets to regress")
    years = [float(soc.year) for soc in socs]
    log_eff = [math.log(soc.efficiency) for soc in socs]
    slope = _regression_slope(years, log_eff)
    return EfficiencyTrend(
        family=family,
        annual_improvement=math.exp(slope),
        base_year=int(min(years)),
    )


def _regression_slope(xs: list[float], ys: list[float]) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    variance = sum((x - mean_x) ** 2 for x in xs)
    if variance == 0:
        raise ValueError("all chipsets share one release year; cannot regress")
    return covariance / variance


def annual_efficiency_improvement() -> dict[str, float]:
    """Per-family annual efficiency gains plus their geometric mean.

    This regenerates Figure 14 (left); the paper reports a 1.21x geomean.
    """
    trends = {
        family: family_efficiency_trend(family).annual_improvement
        for family in FAMILIES
    }
    trends["geomean"] = math.prod(
        trends[family] for family in FAMILIES
    ) ** (1.0 / len(FAMILIES))
    return trends
