"""CLI subcommands (exercised in-process through main())."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestFootprint:
    def test_basic_platform(self, capsys):
        code, out, _ = run_cli(
            capsys, "footprint", "--node", "7", "--area", "98.5",
            "--dram", "4", "--ssd", "64",
        )
        assert code == 0
        assert "TOTAL" in out
        assert "SoC" in out and "DRAM" in out and "SSD" in out

    def test_soc_only(self, capsys):
        code, out, _ = run_cli(capsys, "footprint", "--node", "28", "--area", "50")
        assert code == 0
        assert "DRAM" not in out

    def test_mix_changes_total(self, capsys):
        _, default_out, _ = run_cli(capsys, "footprint", "--area", "100")
        _, solar_out, _ = run_cli(
            capsys, "footprint", "--area", "100", "--mix", "solar"
        )
        def total(text):
            return float(
                [line for line in text.splitlines() if "TOTAL" in line][0].split()[-1]
            )
        assert total(solar_out) < total(default_out)


class TestCpa:
    def test_lists_all_nodes(self, capsys):
        code, out, _ = run_cli(capsys, "cpa")
        assert code == 0
        for node in ("28", "7-euv", "3"):
            assert node in out

    def test_abatement_flag(self, capsys):
        _, strict, _ = run_cli(capsys, "cpa", "--abatement", "0.99")
        _, lax, _ = run_cli(capsys, "cpa", "--abatement", "0.95")
        assert strict != lax


class TestExperiment:
    def test_single_experiment(self, capsys):
        code, out, _ = run_cli(capsys, "experiment", "fig14")
        assert code == 0
        assert "PASS" in out
        assert "FAIL" not in out

    def test_all_experiments(self, capsys):
        code, out, _ = run_cli(capsys, "experiment", "all")
        assert code == 0
        assert "fig8" in out and "tab12" in out


class TestSocs:
    def test_catalog_listing(self, capsys):
        code, out, _ = run_cli(capsys, "socs")
        assert code == 0
        assert "Kirin 990" in out and "Snapdragon 835" in out


class TestExport:
    def test_csv(self, capsys):
        code, out, _ = run_cli(capsys, "export", "fig14", "--panel", "1")
        assert code == 0
        assert out.startswith("x,")

    def test_json(self, capsys):
        code, out, _ = run_cli(
            capsys, "export", "fig6", "--format", "json", "--panel", "2"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["title"].startswith("Figure 6")

    def test_panel_out_of_range(self, capsys):
        code, _, err = run_cli(capsys, "export", "fig14", "--panel", "9")
        assert code == 2
        assert "out of range" in err

    def test_table_only_experiment_has_no_panels(self, capsys):
        code, _, err = run_cli(capsys, "export", "tab7")
        assert code == 2
        assert "no figure panels" in err


class TestConfigAndReport:
    CONFIG = (
        '{"name": "cli phone", "components": ['
        '{"type": "logic", "name": "SoC", "area_mm2": 98.5, "node": "7"},'
        '{"type": "dram", "name": "DRAM", "capacity_gb": 4}]}'
    )

    def test_footprint_from_config(self, capsys, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(self.CONFIG)
        code, out, _ = run_cli(capsys, "footprint", "--config", str(path))
        assert code == 0
        assert "SoC" in out and "TOTAL" in out

    def test_report_from_config(self, capsys, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(self.CONFIG)
        code, out, _ = run_cli(capsys, "report", "--config", str(path))
        assert code == 0
        assert "Product environmental report — cli phone" in out
        assert "Assumptions" in out


class TestSensitivity:
    def test_tornado_and_mc(self, capsys):
        code, out, _ = run_cli(capsys, "sensitivity", "--top", "4",
                               "--draws", "100")
        assert code == 0
        assert "Tornado" in out
        assert "Monte Carlo (100 draws)" in out
        # Four parameter rows plus headers.
        assert out.count("\n") > 6


class TestMonteCarlo:
    def test_batched_distribution(self, capsys):
        code, out, _ = run_cli(
            capsys, "montecarlo", "--draws", "500", "--seed", "7",
            "--percentiles", "10,90",
        )
        assert code == 0
        assert "batched engine, 500 draws, seed 7" in out
        assert "p10" in out and "p90" in out
        assert "points/sec" in out

    def test_reproducible_with_seed(self, capsys):
        _, first, _ = run_cli(capsys, "montecarlo", "--draws", "300")
        _, second, _ = run_cli(capsys, "montecarlo", "--draws", "300")
        mean = lambda text: [  # noqa: E731
            line for line in text.splitlines() if line.startswith("mean")
        ][0]
        assert mean(first) == mean(second)

    def test_uniform_distribution_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "montecarlo", "--draws", "200", "--distribution", "uniform"
        )
        assert code == 0
        assert "uniform" in out

    def test_bad_percentiles_rejected(self, capsys):
        code, _, err = run_cli(
            capsys, "montecarlo", "--draws", "100", "--percentiles", "5,banana"
        )
        assert code == 2
        assert "invalid percentile list" in err

    def test_out_of_range_percentiles_rejected(self, capsys):
        code, _, err = run_cli(
            capsys, "montecarlo", "--draws", "100", "--percentiles", "5,101"
        )
        assert code == 2
        assert "must be numbers in [0, 100]" in err


class TestWorkers:
    def test_invalid_worker_count_exits_2(self, capsys):
        code, _, err = run_cli(
            capsys, "montecarlo", "--draws", "100", "--workers", "0"
        )
        assert code == 2
        assert "workers must be" in err

    def test_experiment_invalid_worker_count_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "experiment", "fig14", "--workers", "-3")
        assert code == 2
        assert "workers must be" in err

    def test_montecarlo_invariant_across_worker_counts(self, capsys):
        # The sharded sample stream is a function of (seed, shard size),
        # never of worker count, so the statistics must agree to the digit.
        _, two, _ = run_cli(
            capsys, "montecarlo", "--draws", "400", "--workers", "2"
        )
        code, four, _ = run_cli(
            capsys, "montecarlo", "--draws", "400", "--workers", "4"
        )
        assert code == 0
        stats = lambda text: [  # noqa: E731
            line
            for line in text.splitlines()
            if line.startswith(("mean", "std", "p"))
        ]
        assert stats(two) == stats(four)

    def test_sensitivity_invariant_across_worker_counts(self, capsys):
        _, two, _ = run_cli(capsys, "sensitivity", "--draws", "300", "--workers", "2")
        code, four, _ = run_cli(
            capsys, "sensitivity", "--draws", "300", "--workers", "4"
        )
        assert code == 0
        assert two == four

    def test_parallel_experiment_matches_serial(self, capsys):
        # Experiments sweep fixed grids (no sampling), so the parallel
        # output is byte-identical to the serial run.
        _, serial, _ = run_cli(capsys, "experiment", "fig14")
        code, parallel, _ = run_cli(
            capsys, "experiment", "fig14", "--workers", "2"
        )
        assert code == 0
        assert parallel == serial


class TestBaselines:
    def test_comparison_output(self, capsys):
        code, out, _ = run_cli(capsys, "baselines")
        assert code == 0
        assert "GreenChip" in out
        assert "Exergy blind spot" in out
        assert "identically" in out


class TestValidate:
    def test_shipped_data_passes(self, capsys):
        code, out, _ = run_cli(capsys, "validate")
        assert code == 0
        assert "FAIL" not in out
        assert "checks passed" in out


class TestExtensions:
    def test_extension_summary(self, capsys):
        code, out, _ = run_cli(capsys, "experiment", "extensions")
        assert code == 0
        assert "ext-chiplets" in out and "ext-server" in out

    def test_single_extension(self, capsys):
        code, out, _ = run_cli(capsys, "experiment", "ext-baselines")
        assert code == 0
        assert "PASS" in out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestErrorHandling:
    def test_repro_error_becomes_one_line_exit_2(self, capsys):
        code, out, err = run_cli(capsys, "experiment", "fig999")
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_debug_flag_reraises(self):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            main(["--debug", "experiment", "fig999"])


class TestMonteCarloGuarded:
    def test_strict_policy_runs_and_is_labelled(self, capsys):
        code, out, _ = run_cli(
            capsys, "montecarlo", "--draws", "300", "--policy", "strict"
        )
        assert code == 0
        assert "policy=strict" in out

    def test_guarded_mean_matches_unguarded(self, capsys):
        _, plain, _ = run_cli(capsys, "montecarlo", "--draws", "300")
        _, guarded, _ = run_cli(
            capsys, "montecarlo", "--draws", "300", "--policy", "strict"
        )
        mean = lambda text: [  # noqa: E731
            line for line in text.splitlines() if line.startswith("mean")
        ][0]
        assert mean(plain) == mean(guarded)


class TestMonteCarloCheckpoint:
    def test_interrupted_run_exits_3_with_resume_hint(self, capsys, tmp_path):
        path = tmp_path / "mc.npz"
        code, _, err = run_cli(
            capsys, "montecarlo", "--draws", "5000", "--chunk-rows", "512",
            "--checkpoint", str(path), "--max-seconds", "0",
        )
        assert code == 3
        assert "interrupted" in err
        assert "--resume" in err
        assert path.exists()

    def test_resume_completes_with_same_output_as_uninterrupted(
        self, capsys, tmp_path
    ):
        path = tmp_path / "mc.npz"
        run_cli(
            capsys, "montecarlo", "--draws", "2000", "--chunk-rows", "256",
            "--checkpoint", str(path), "--max-seconds", "0",
        )
        code, resumed, _ = run_cli(
            capsys, "montecarlo", "--draws", "2000", "--chunk-rows", "256",
            "--checkpoint", str(path), "--resume",
        )
        assert code == 0
        _, uninterrupted, _ = run_cli(capsys, "montecarlo", "--draws", "2000")
        stats = lambda text: [  # noqa: E731
            line for line in text.splitlines()
            if line.startswith(("mean", "| p"))
        ]
        assert stats(resumed) == stats(uninterrupted)

    def test_resume_with_wrong_seed_is_a_one_line_error(self, capsys, tmp_path):
        path = tmp_path / "mc.npz"
        run_cli(
            capsys, "montecarlo", "--draws", "2000", "--chunk-rows", "256",
            "--checkpoint", str(path), "--max-seconds", "0",
        )
        code, _, err = run_cli(
            capsys, "montecarlo", "--draws", "2000", "--seed", "99",
            "--checkpoint", str(path), "--resume",
        )
        assert code == 2
        assert err.startswith("error: ")
        assert "different run configuration" in err

    def test_resume_without_checkpoint_file_errors_cleanly(
        self, capsys, tmp_path
    ):
        code, _, err = run_cli(
            capsys, "montecarlo", "--draws", "100",
            "--checkpoint", str(tmp_path / "missing.npz"), "--resume",
        )
        assert code == 2
        assert "does not exist" in err


class TestObservabilityFlags:
    def test_profile_prints_a_deep_span_tree(self, capsys):
        code, out, _ = run_cli(capsys, "profile", "fig10")
        assert code == 0
        assert "span tree:" in out
        assert "experiment.fig10" in out
        assert "engine.kernels" in out
        # Three nesting levels: experiment -> provisioning -> kernels.
        assert "      - engine.kernels" in out
        assert "cache:" in out

    def test_profile_all_prints_per_experiment_costs(self, capsys):
        code, out, _ = run_cli(capsys, "profile", "all")
        assert code == 0
        assert "per-experiment cost:" in out
        assert "fig10" in out

    def test_trace_flag_writes_valid_jsonl(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, _, err = run_cli(
            capsys, "profile", "fig10", "--trace", str(path)
        )
        assert code == 0
        assert "trace:" in err
        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {event["event"] for event in events}
        assert {"run_start", "span_start", "span_end",
                "cache_stats", "run_end"} <= kinds
        assert events[0]["event"] == "run_start"
        assert events[0]["manifest"]["argv"] is not None
        stats = [e for e in events if e["event"] == "cache_stats"][0]
        assert {"hits", "misses", "evictions"} <= set(stats)

    def test_trace_works_on_ordinary_subcommands(self, capsys, tmp_path):
        path = tmp_path / "mc.jsonl"
        code, out, _ = run_cli(
            capsys, "montecarlo", "--draws", "500", "--trace", str(path)
        )
        assert code == 0
        events = [json.loads(line) for line in path.read_text().splitlines()]
        names = [e.get("name") for e in events if e["event"] == "span_start"]
        assert "analysis.montecarlo" in names
        end = [e for e in events if e["event"] == "run_end"][0]
        assert end["metrics"]["counters"]["engine.cache.misses"] >= 1

    def test_metrics_flag_prints_summary_to_stderr(self, capsys):
        code, out, err = run_cli(
            capsys, "montecarlo", "--draws", "500", "--metrics"
        )
        assert code == 0
        assert "== metrics ==" in err
        assert "engine.rows_evaluated" in err
        assert "== metrics ==" not in out

    def test_without_flags_the_null_context_stays_active(self, capsys):
        from repro.obs.context import NULL_CONTEXT, current_context

        code, _, err = run_cli(capsys, "experiment", "fig14")
        assert code == 0
        assert current_context() is NULL_CONTEXT
        assert "metrics" not in err


class TestExperimentJson:
    def test_single_experiment_json(self, capsys):
        code, out, _ = run_cli(capsys, "experiment", "fig14", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["all_passed"] is True
        assert payload["experiments"][0]["experiment_id"] == "fig14"
        checks = payload["experiments"][0]["checks"]
        assert checks and all("passed" in check for check in checks)

    def test_all_experiments_json(self, capsys):
        code, out, _ = run_cli(capsys, "experiment", "all", "--json")
        assert code == 0
        payload = json.loads(out)
        assert len(payload["experiments"]) == 19
        assert payload["all_passed"] is True


class TestMonteCarloCacheStats:
    def test_cache_line_reports_hits_and_misses(self, capsys):
        code, out, _ = run_cli(capsys, "montecarlo", "--draws", "500")
        assert code == 0
        line = [l for l in out.splitlines() if l.startswith("cache:")][0]
        assert "misses" in line and "hit rate" in line

    def test_guarded_run_also_reports_cache_stats(self, capsys):
        code, out, _ = run_cli(
            capsys, "montecarlo", "--draws", "500", "--policy", "repair"
        )
        assert code == 0
        assert any(l.startswith("cache:") for l in out.splitlines())


class TestSchedule:
    def test_sweep_prints_policy_table_and_pareto(self, capsys):
        code, out, _ = run_cli(
            capsys, "schedule", "--windows", "40", "--seed", "11",
        )
        assert code == 0
        assert "Carbon-aware scheduling sweep" in out
        for name in ("fifo", "edf", "carbon_waiting", "carbon_lowest"):
            assert name in out
        assert "Pareto front (emissions vs waiting):" in out
        assert "emissions vs fifo" in out

    def test_single_policy_on_flat_grid(self, capsys):
        code, out, _ = run_cli(
            capsys, "schedule", "--windows", "20",
            "--policy", "carbon_lowest", "--grid", "flat",
        )
        assert code == 0
        assert "carbon_lowest" in out
        assert "fifo" not in out.split("Pareto front")[1]

    def test_unknown_policy_is_one_line_error(self, capsys):
        code, _, err = run_cli(
            capsys, "schedule", "--windows", "5", "--policy", "greedy",
        )
        assert code == 2
        assert "greedy" in err

    def test_workers_match_serial_output(self, capsys):
        _, serial, _ = run_cli(
            capsys, "schedule", "--windows", "30", "--seed", "4",
        )
        code, parallel, _ = run_cli(
            capsys, "schedule", "--windows", "30", "--seed", "4",
            "--workers", "2", "--shard-rows", "32", "--verify-sample", "4",
        )
        assert code == 0
        table = lambda text: [  # noqa: E731
            line for line in text.splitlines() if line.startswith("|")
        ]
        assert table(parallel) == table(serial)

    def test_interrupted_run_exits_3_with_resume_hint(self, capsys, tmp_path):
        path = tmp_path / "schedule.npz"
        code, _, err = run_cli(
            capsys, "schedule", "--windows", "400", "--chunk-rows", "64",
            "--checkpoint", str(path), "--max-seconds", "0",
        )
        assert code == 3
        assert "--resume" in err
        assert path.exists()

    def test_resume_completes_with_same_output(self, capsys, tmp_path):
        path = tmp_path / "schedule.npz"
        run_cli(
            capsys, "schedule", "--windows", "200", "--chunk-rows", "128",
            "--checkpoint", str(path), "--max-seconds", "0",
        )
        code, resumed, _ = run_cli(
            capsys, "schedule", "--windows", "200", "--chunk-rows", "128",
            "--checkpoint", str(path), "--resume",
        )
        assert code == 0
        _, uninterrupted, _ = run_cli(capsys, "schedule", "--windows", "200")
        table = lambda text: [  # noqa: E731
            line for line in text.splitlines() if line.startswith("|")
        ]
        assert table(resumed) == table(uninterrupted)
