"""Four-phase life-cycle assembly (Figure 3, end to end).

Combines the ACT embodied model (manufacturing), the transport model, the
operational model, and end-of-life processing into one
:class:`LifecycleReport`, so a bottom-up device model can be compared
phase-by-phase against a published product environmental report (the
Figure 1 bars).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units
from repro.core.eol import EolOutcome, eol_footprint
from repro.core.model import Platform
from repro.core.operational import EnergyProfile
from repro.core.parameters import require_non_negative, require_positive
from repro.core.transport import DEFAULT_ROUTE, TransportLeg, transport_footprint_g


@dataclass(frozen=True)
class LifecycleReport:
    """A device's emissions split across the four Figure 3 phases (grams)."""

    manufacturing_g: float
    transport_g: float
    use_g: float
    eol: EolOutcome

    @property
    def total_g(self) -> float:
        return (
            self.manufacturing_g
            + self.transport_g
            + self.use_g
            + self.eol.net_g
        )

    @property
    def total_kg(self) -> float:
        return units.g_to_kg(self.total_g)

    def shares(self) -> dict[str, float]:
        """Phase shares of the total — directly comparable to the product
        environmental reports' splits."""
        total = self.total_g
        if total == 0:
            return {
                "manufacturing": 0.0, "transport": 0.0, "use": 0.0, "eol": 0.0
            }
        return {
            "manufacturing": self.manufacturing_g / total,
            "transport": self.transport_g / total,
            "use": self.use_g / total,
            "eol": self.eol.net_g / total,
        }

    @property
    def manufacturing_dominated(self) -> bool:
        """Whether manufacturing outweighs use — the paper's headline test."""
        return self.manufacturing_g > self.use_g


def device_lifecycle(
    platform: Platform,
    *,
    mass_kg: float,
    average_power_w: float,
    utilization: float,
    ci_use_g_per_kwh: float,
    lifetime_years: float,
    charging_efficiency: float = 0.9,
    route: tuple[TransportLeg, ...] = DEFAULT_ROUTE,
    recovery_rate: float = 0.35,
) -> LifecycleReport:
    """Assemble the full four-phase footprint of one device.

    Args:
        platform: The ACT bill of ICs (manufacturing phase; note this is
            the IC footprint — housings/displays need
            ``FixedCarbonComponent`` entries to be included).
        mass_kg: Shipped mass (device + packaging) for transport/EOL.
        average_power_w: Power while active.
        utilization: Fraction of the lifetime spent active.
        ci_use_g_per_kwh: Use-phase grid intensity.
        lifetime_years: Service life.
        charging_efficiency: Battery charging efficiency (<1 inflates wall
            energy).
        route: Transport legs from factory to user.
        recovery_rate: EOL material recovery fraction.
    """
    require_positive("lifetime_years", lifetime_years)
    require_non_negative("utilization", utilization)
    require_positive("charging_efficiency", charging_efficiency)
    active_hours = units.years_to_hours(lifetime_years) * utilization
    energy = EnergyProfile(
        power_w=average_power_w,
        duration_hours=active_hours,
        effectiveness=1.0 / charging_efficiency,
    )
    return LifecycleReport(
        manufacturing_g=platform.embodied_g(),
        transport_g=transport_footprint_g(mass_kg, route),
        use_g=energy.footprint_g(ci_use_g_per_kwh),
        eol=eol_footprint(
            mass_kg,
            recovery_rate=recovery_rate,
            grid_ci_g_per_kwh=ci_use_g_per_kwh,
        ),
    )
