"""Table 4: mobile AI inference on CPU / GPU / DSP provisioning choices.

Regenerates the latency / power / per-inference operational footprint /
embodied footprint table for the Snapdragon-845-class study, plus the
break-even utilization claims in the surrounding prose.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    check_close,
    check_in_band,
)
from repro.provisioning.mobile_soc import (
    CONFIGURATIONS,
    CPU_ONLY,
    WITH_DSP,
    WITH_GPU,
    breakeven_utilization,
)

EXPERIMENT_ID = "tab4"
TITLE = "Mobile AI inference: CPU vs GPU vs DSP (latency/power/OPCF/ECF)"


def run() -> ExperimentResult:
    """Regenerate Table 4 and check its anchors."""
    rows = []
    for config in CONFIGURATIONS:
        block = config.serving_block
        rows.append(
            (
                config.name,
                block.latency_s * 1e3,  # ms
                block.power_w,
                block.operational_g_per_inference() * 1e6,  # µg CO2
                config.embodied_g(),
            )
        )

    cpu = CPU_ONLY.serving_block
    dsp = WITH_DSP.serving_block
    gpu = WITH_GPU.serving_block

    checks = (
        check_close(
            "CPU per-inference operational footprint (µg CO2)",
            cpu.operational_g_per_inference() * 1e6, 3.3, rel_tol=0.05,
        ),
        check_close(
            "DSP per-inference operational footprint (µg CO2)",
            dsp.operational_g_per_inference() * 1e6, 1.5, rel_tol=0.05,
        ),
        check_close(
            "CPU-only embodied footprint (g CO2)",
            CPU_ONLY.embodied_g(), 253.0, rel_tol=0.03,
        ),
        check_close(
            "DSP energy advantage over CPU",
            cpu.energy_per_inference_j / dsp.energy_per_inference_j,
            2.2, rel_tol=0.05,
        ),
        check_in_band(
            "GPU energy advantage over CPU",
            cpu.energy_per_inference_j / gpu.energy_per_inference_j,
            1.0, 1.25, paper="1.08x",
        ),
        check_in_band(
            "CPU+GPU embodied vs CPU-only",
            WITH_GPU.embodied_g() / CPU_ONLY.embodied_g(),
            1.8, 2.0, paper="1.9x",
        ),
        check_in_band(
            "CPU+DSP embodied vs CPU-only",
            WITH_DSP.embodied_g() / CPU_ONLY.embodied_g(),
            1.7, 1.9, paper="1.8x",
        ),
        check_in_band(
            "DSP break-even lifetime utilization",
            breakeven_utilization(WITH_DSP), 0.01, 0.03, paper=">1%",
        ),
        check_in_band(
            "GPU break-even lifetime utilization",
            breakeven_utilization(WITH_GPU), 0.05, 0.12, paper=">5%",
        ),
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=(
            "configuration", "latency (ms)", "power (W)",
            "OPCF (µg CO2/inf)", "ECF (g CO2)",
        ),
        table_rows=tuple(rows),
        reference={
            "paper Table 4": "CPU 6.0ms/6.6W/3.3µg/253g; efficient "
            "co-processor 2.2x lower energy; co-processors add 1.8-1.9x "
            "embodied",
            "note": "the paper's Table 4 swaps the GPU/DSP operating points "
            "relative to its prose and Figure 9; this reproduction follows "
            "the prose (see module docstring)",
        },
        checks=checks,
    )
