"""Extension experiment: carbon-aware scheduling on time-varying grids.

Not a paper figure — the appendix notes carbon intensity "can fluctuate
over time" and the Reduce tenet includes renewable-driven hardware.  This
experiment quantifies what a flat-average model (the paper's CI_use) hides:
on a solar-heavy grid, placing deferrable work in the greenest window
saves a measurable factor that shrinks as the window widens.
"""

from __future__ import annotations

from repro.core.intensity import (
    constant_trace,
    scheduling_saving,
    solar_diurnal_trace,
)
from repro.experiments.base import ExperimentResult, check_in_band, check_true
from repro.reporting.figures import FigureData, Series
from repro.scheduling.simulator import (
    nightly_batch_workload,
    schedule_carbon_aware,
    schedule_fifo,
    scheduling_benefit,
)
from repro.scheduling.sweep import ScheduleSweepSpec, run_policy_sweep

EXPERIMENT_ID = "ext-scheduling"
TITLE = "Extension: carbon-aware scheduling vs the flat-average CI model"

_WINDOWS = (1, 2, 4, 8, 12, 24)

#: Windows in the fleet policy sweep — small enough to keep the
#: experiment interactive, large enough that policy means are stable.
_SWEEP_WINDOWS = 200


def run() -> ExperimentResult:
    """Sweep deferrable-job windows over flat and solar-diurnal grids."""
    solar = solar_diurnal_trace(base_ci_g_per_kwh=500.0, solar_share_at_noon=0.7)
    flat = constant_trace(solar.average)
    solar_savings = tuple(scheduling_saving(w, solar) for w in _WINDOWS)
    flat_savings = tuple(scheduling_saving(w, flat) for w in _WINDOWS)

    figures = (
        FigureData(
            title="Daily carbon-intensity profiles",
            x_label="hour",
            y_label="g CO2/kWh",
            series=(
                Series("solar-heavy grid", tuple(range(24)),
                       solar.hourly_g_per_kwh),
                Series("flat average", tuple(range(24)),
                       flat.hourly_g_per_kwh),
            ),
        ),
        FigureData(
            title="Greenest-window saving vs job duration",
            x_label="window (hours)",
            y_label="x vs average placement",
            series=(
                Series("solar-heavy grid", _WINDOWS, solar_savings),
                Series("flat grid", _WINDOWS, flat_savings),
            ),
        ),
    )

    # End-to-end simulation: a nightly batch workload on the solar grid.
    jobs = nightly_batch_workload(4)
    fifo = schedule_fifo(jobs, solar)
    aware = schedule_carbon_aware(jobs, solar)
    simulated_benefit = scheduling_benefit(jobs, solar)

    # Fleet-scale policy sweep on the vectorized evaluator: every policy
    # schedules the same randomized windows, exposing the emissions /
    # waiting-time trade-off the single-workload simulation cannot show.
    sweep = run_policy_sweep(
        ScheduleSweepSpec(trace=solar, windows=_SWEEP_WINDOWS)
    )
    fifo_point = sweep.point_for("fifo")
    lowest_point = sweep.point_for("carbon_lowest")
    waiting_point = sweep.point_for("carbon_waiting")
    tradeoff_series = tuple(
        Series(
            point.policy,
            (point.mean_wait_hours - fifo_point.mean_wait_hours,),
            (
                100.0
                * (point.mean_emissions_g / fifo_point.mean_emissions_g - 1.0),
            ),
        )
        for point in sweep.points
        if point.policy != "fifo" and point.feasible_windows > 0
    )
    figures = figures + (
        FigureData(
            title=(
                "Policy trade-off vs FIFO: emissions delta against "
                "mean-waiting delta"
            ),
            x_label="Δ mean waiting vs fifo (hours)",
            y_label="Δ mean emissions vs fifo (%)",
            series=tradeoff_series,
        ),
    )
    lowest_saving = (
        1.0 - lowest_point.mean_emissions_g / fifo_point.mean_emissions_g
    )

    shrinking = all(a >= b - 1e-12 for a, b in zip(solar_savings, solar_savings[1:]))
    checks = (
        check_true(
            "the batch-scheduler simulation realizes the opportunity",
            simulated_benefit > 1.2 and aware.all_deadlines_met
            and fifo.all_deadlines_met,
            f"{simulated_benefit:.2f}x with all deadlines met",
            "> 1.2x emissions saving over run-immediately FIFO",
        ),
        check_in_band(
            "short-job saving on the solar-heavy grid",
            solar_savings[1], 1.15, 2.5,
        ),
        check_true(
            "saving shrinks as the window widens",
            shrinking,
            " -> ".join(f"{s:.2f}" for s in solar_savings),
            "monotone non-increasing",
        ),
        check_true(
            "a 24h job cannot be scheduled around the sun",
            abs(solar_savings[-1] - 1.0) < 1e-9,
            f"{solar_savings[-1]:.3f}x",
            "exactly 1x",
        ),
        check_true(
            "a flat grid offers no scheduling opportunity",
            all(abs(s - 1.0) < 1e-9 for s in flat_savings),
            "all 1.00x",
            "1x at every window",
        ),
        check_true(
            "carbon_lowest cuts fleet emissions vs FIFO on the solar grid",
            lowest_saving >= 0.05,
            f"{lowest_saving:.1%} mean-emission reduction over "
            f"{_SWEEP_WINDOWS} windows",
            ">= 5% below run-immediately FIFO",
        ),
        check_true(
            "the emission cut is paid for in waiting time",
            lowest_point.mean_wait_hours
            >= fifo_point.mean_wait_hours - 1e-9,
            f"{lowest_point.mean_wait_hours:.2f} h vs FIFO's "
            f"{fifo_point.mean_wait_hours:.2f} h mean waiting",
            "carbon_lowest waits at least as long as FIFO",
        ),
        check_true(
            "carbon_waiting never jumps the FIFO queue",
            waiting_point.mean_wait_hours
            >= fifo_point.mean_wait_hours - 1e-9,
            f"{waiting_point.mean_wait_hours:.2f} h vs FIFO's "
            f"{fifo_point.mean_wait_hours:.2f} h mean waiting",
            "deferring can only increase mean waiting",
        ),
        check_true(
            "the Pareto front keeps both extremes",
            "carbon_lowest" in sweep.pareto_policies
            and any(
                p in sweep.pareto_policies for p in ("fifo", "carbon_waiting")
            ),
            ", ".join(sweep.pareto_policies),
            "lowest-emissions and lowest-waiting policies both survive",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=figures,
        reference={
            "paper hook": "appendix: average CI values hide fluctuation; "
            "Reduce tenet: renewable-energy-driven hardware",
            "policy sweep": f"{_SWEEP_WINDOWS} windows x "
            f"{len(sweep.spec.policies)} policies on the vectorized "
            "evaluator; Pareto front: "
            + ", ".join(sweep.pareto_policies),
        },
        checks=checks,
    )
