"""Admission control: who gets in, who is shed, who is served degraded.

Three independent gates stand between a request and the engine:

* a per-client :class:`TokenBucket` rate limit (429 when empty),
* a bounded :class:`AdmissionQueue` of in-flight requests (429 when
  full — load is shed at the door instead of growing an unbounded
  backlog), and
* a :class:`CircuitBreaker` that trips after repeated backend failures
  and moves the service to cache-only serving (503 on cache misses)
  until a cooldown probe proves the backend healthy again.

All three are plain lock-guarded state machines with injectable clocks,
so tests drive them deterministically without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

from repro.core.errors import ReproError


class ServiceOverload(ReproError, RuntimeError):
    """The service refused work to protect itself (HTTP 429/503).

    Attributes:
        retry_after_s: How long the client should back off before
            retrying (sent as the ``Retry-After`` header).
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0):
        self.retry_after_s = retry_after_s
        super().__init__(message)


class RateLimited(ServiceOverload):
    """A client exhausted its token bucket (HTTP 429)."""


class QueueFull(ServiceOverload):
    """The admission queue is at capacity; load was shed (HTTP 429)."""


class ServiceUnavailable(ServiceOverload):
    """The service cannot currently answer: breaker open with a cache
    miss, or draining for shutdown (HTTP 503)."""


class DeadlineExceeded(ReproError, TimeoutError):
    """A request's deadline expired before its result was ready (HTTP 504).

    Attributes:
        deadline_s: The deadline the request carried.
        stage: Where the deadline fired (``"queued"``, ``"batched"``,
            ``"evaluating"``).
    """

    def __init__(self, message: str, *, deadline_s: float = 0.0, stage: str = ""):
        self.deadline_s = deadline_s
        self.stage = stage
        super().__init__(message)


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/sec, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._refilled = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` means rate-limited."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled) * self.rate
            )
            self._refilled = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False


class RateLimiter:
    """Per-client token buckets, lazily created, LRU-bounded.

    A ``rate`` of 0 disables limiting entirely (every check passes).
    The client map is capped so an adversary cycling client ids cannot
    grow memory without bound; the *least recently seen* client's bucket
    is dropped — every ``allow`` refreshes its client's recency, so an
    actively limited client's bucket is never recycled into a fresh
    (full) one by a churn of one-shot ids.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        max_clients: int = 10_000,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    def allow(self, client: str) -> bool:
        """Whether ``client`` may make one more request right now."""
        if self.rate <= 0:
            return True
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    self._buckets.popitem(last=False)
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, self._clock
                )
            else:
                self._buckets.move_to_end(client)
        return bucket.try_acquire()


class AdmissionQueue:
    """A bounded count of admitted-but-unanswered requests.

    Admission is a counter, not a holding pen: requests that get in
    proceed immediately to the batcher/engine, and leave the count when
    their response is written.  ``try_enter`` failing is the shed-load
    signal (429).  ``drain`` flips the service to refuse new work and
    waits for the in-flight count to reach zero — the SIGTERM path.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._depth = 0
        self._draining = False
        self._lock = threading.Lock()
        self._empty = threading.Condition(self._lock)

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def try_enter(self) -> bool:
        """Admit one request; ``False`` = full or draining (shed it)."""
        with self._lock:
            if self._draining or self._depth >= self.limit:
                return False
            self._depth += 1
            return True

    def leave(self) -> None:
        """Mark one admitted request answered."""
        with self._lock:
            self._depth = max(0, self._depth - 1)
            if self._depth == 0:
                self._empty.notify_all()

    def drain(self, timeout_s: float) -> bool:
        """Refuse new work and wait for in-flight requests to finish.

        Returns ``True`` when the queue emptied within ``timeout_s``.
        Idempotent; safe to call from a signal handler thread.
        """
        deadline = time.monotonic() + timeout_s
        with self._lock:
            self._draining = True
            while self._depth > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._empty.wait(remaining)
            return True


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BackendLease:
    """Permission from the breaker for one request to touch the backend.

    Truthy by construction — callers test ``if lease:`` exactly like the
    old boolean — and in half-open state the single granted lease *is*
    the probe.  A probing lease that resolves **without** a backend
    outcome (the query was answered from cache, dropped before
    evaluation, or refused by a draining batcher) must be
    :meth:`release`\\ d, or the probe slot leaks and the breaker sticks
    half-open serving cache-only forever.

    ``release`` is idempotent and becomes a no-op once
    :meth:`CircuitBreaker.record_success` / ``record_failure`` settled
    the probe (or a newer probe generation was claimed), so callers may
    release unconditionally on every no-outcome path.
    """

    __slots__ = ("_breaker", "_token")

    def __init__(self, breaker: "CircuitBreaker", token: int | None) -> None:
        self._breaker = breaker
        self._token = token

    @property
    def is_probe(self) -> bool:
        """Whether this lease holds the half-open probe slot."""
        return self._token is not None

    def release(self) -> None:
        """Return an unused probe slot (no-op for non-probe leases)."""
        token, self._token = self._token, None
        if token is not None:
            self._breaker._release_probe(token)


class CircuitBreaker:
    """Trips to cache-only serving after repeated backend failures.

    closed → (``threshold`` consecutive failures) → open →
    (``cooldown_s`` elapsed) → half-open: exactly one probe request is
    allowed through; its success closes the breaker, its failure
    re-opens it for another cooldown, and a probe that never reaches the
    backend at all hands its slot back via
    :meth:`BackendLease.release`.  Only *backend* failures count —
    client errors (validation, unknown parameters) never trip it.
    """

    def __init__(
        self,
        threshold: int,
        cooldown_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Generation counter for probe claims: a stale lease released
        #: after the breaker moved on (probe failed, new probe claimed)
        #: must not free the *newer* claim.
        self._probe_token = 0
        self._lock = threading.Lock()
        #: Lifetime transition counters for observability.
        self.trips = 0
        self.recoveries = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
            self._probing = False

    def allow_backend(self) -> "BackendLease | None":
        """A :class:`BackendLease` when the backend may be touched,
        ``None`` (falsy, like the old boolean) when it may not.

        In half-open state exactly one caller gets a lease (the probe);
        everyone else stays on the cache-only path until the probe
        reports back — or releases its unused slot.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return BackendLease(self, None)
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                self._probe_token += 1
                return BackendLease(self, self._probe_token)
            return None

    def _release_probe(self, token: int) -> None:
        """Free the probe slot claimed under ``token``, if still current."""
        with self._lock:
            if (
                self._state == HALF_OPEN
                and self._probing
                and token == self._probe_token
            ):
                self._probing = False

    def record_success(self) -> None:
        """A backend call completed; closes a probing breaker."""
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._state = CLOSED
                self._probing = False
                self.recoveries += 1

    def record_failure(self) -> None:
        """A backend call failed; may trip or re-open the breaker."""
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False
                self.trips += 1
            elif self._state == CLOSED and self._failures >= self.threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1
