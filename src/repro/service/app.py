"""The carbon-query application: endpoints, validation, failure mapping.

:class:`CarbonQueryService` is the transport-independent core of the
service — it takes parsed requests (method, path, raw body, client id)
and returns ``(status, payload, headers)`` triples, so the whole failure
matrix is testable without opening a socket.  The stdlib HTTP wrapper in
:mod:`repro.service.http` is a thin adapter over :meth:`~CarbonQueryService.handle`.

Every model-stack error maps to a *typed* HTTP failure — never a silent
wrong answer:

=====================================  ======  =================================
error                                  status  meaning
=====================================  ======  =================================
malformed body / wrong shape           400     ``ValidationError``
unknown parameter / bad value          422     ``UnknownEntryError`` (with
                                               suggestion) / ``ParameterError``
rate limit or queue full               429     shed; ``Retry-After`` set
breaker open, draining                 503     degraded / unavailable
deadline expired, run cancelled        504     ``DeadlineExceeded`` /
                                               ``RunInterrupted``
engine/reference divergence            500     ``DivergenceError`` + diagnostics
anything unexpected                    500     opaque internal error
=====================================  ======  =================================
"""

from __future__ import annotations

import json
import time
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.scenario import ActScenario
from repro.core.errors import (
    DivergenceError,
    ParameterError,
    ReproError,
    RunInterrupted,
    UnknownEntryError,
    ValidationError,
)
from repro.core.metrics import METRICS, DesignPoint
from repro.engine.batch import FIELD_NAMES, ScenarioBatch
from repro.engine.cache import EvaluationCache, scenario_key
from repro.engine.kernels import BatchResult
from repro.engine.metrics import score_table_batched, winners_batched
from repro.obs.context import current_context
from repro.obs.events import EventSink
from repro.service.admission import (
    AdmissionQueue,
    CircuitBreaker,
    DeadlineExceeded,
    OPEN,
    QueueFull,
    RateLimited,
    RateLimiter,
    ServiceOverload,
    ServiceUnavailable,
)
from repro.service.batcher import MicroBatcher
from repro.service.config import ServiceConfig

#: Output series a sweep request may ask for (BatchResult columns).
RESPONSE_SERIES: tuple[str, ...] = tuple(BatchResult.__dataclass_fields__)


class Response:
    """One HTTP-shaped answer: status, JSON payload, extra headers."""

    __slots__ = ("status", "payload", "headers")

    def __init__(
        self,
        status: int,
        payload: Mapping[str, object],
        headers: Mapping[str, str] | None = None,
    ) -> None:
        self.status = status
        self.payload = dict(payload)
        self.headers = dict(headers or {})

    def body(self) -> bytes:
        return json.dumps(self.payload).encode("utf-8")


def _require_mapping(value: object, what: str) -> dict:
    if not isinstance(value, dict):
        raise ValidationError(
            f"{what} must be a JSON object, got {type(value).__name__}"
        )
    return value


def _number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{what} must be a number, got {value!r}")
    return float(value)


def parse_body(raw: bytes) -> dict:
    """The request body as a JSON object (400 on anything else)."""
    if not raw:
        return {}
    try:
        decoded = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValidationError(f"malformed JSON body: {error}") from None
    return _require_mapping(decoded, "request body")


def parse_scenario(params: object) -> ActScenario:
    """A ``params`` object as a validated :class:`ActScenario`.

    Unknown names raise :class:`UnknownEntryError` with the usual
    did-you-mean suggestion; out-of-domain values raise
    :class:`ParameterError`.  Both surface as 422.
    """
    overrides = _require_mapping(params if params is not None else {}, "params")
    unknown = set(overrides) - set(FIELD_NAMES)
    if unknown:
        raise UnknownEntryError(
            "scenario parameter", ", ".join(sorted(unknown)), FIELD_NAMES
        )
    values = {
        name: _number(value, f"params.{name}")
        for name, value in overrides.items()
    }
    return ActScenario(**values)


def error_response(error: BaseException, config: ServiceConfig) -> Response:
    """The typed HTTP answer for one failure (the failure matrix)."""
    retry = {"Retry-After": f"{config.retry_after_s:g}"}
    if isinstance(error, ServiceOverload):
        status = 503 if isinstance(error, ServiceUnavailable) else 429
        kind = {
            RateLimited: "rate_limited",
            QueueFull: "queue_full",
        }.get(type(error), "unavailable")
        return Response(
            status,
            {"error": kind, "message": str(error)},
            {"Retry-After": f"{error.retry_after_s:g}"},
        )
    if isinstance(error, DeadlineExceeded):
        return Response(
            504,
            {
                "error": "deadline_exceeded",
                "message": str(error),
                "stage": error.stage,
            },
        )
    if isinstance(error, RunInterrupted):
        return Response(
            504,
            {
                "error": "deadline_exceeded",
                "message": str(error),
                "completed": error.completed,
                "total": error.total,
            },
        )
    if isinstance(error, ValidationError):
        return Response(
            400,
            {
                "error": "validation",
                "message": str(error),
                "diagnostics": [str(d) for d in error.diagnostics],
            },
        )
    if isinstance(error, UnknownEntryError):
        payload: dict[str, object] = {
            "error": "unknown_parameter",
            "message": str(error),
        }
        if error.suggestion:
            payload["suggestion"] = error.suggestion
        if error.available is not None:
            payload["available"] = [str(name) for name in error.available]
        return Response(422, payload)
    if isinstance(error, ParameterError):
        return Response(422, {"error": "parameter", "message": str(error)})
    if isinstance(error, DivergenceError):
        return Response(
            500,
            {
                "error": "divergence",
                "message": str(error),
                "series": error.series,
                "indices": list(error.indices),
                "batched": list(error.batched),
                "reference": list(error.reference),
                "tolerance": error.tolerance,
            },
        )
    if isinstance(error, ReproError):
        return Response(
            500, {"error": "model", "message": str(error)}, retry
        )
    return Response(
        500,
        {"error": "internal", "message": f"{type(error).__name__}: {error}"},
        retry,
    )


class CarbonQueryService:
    """The long-running carbon-query application.

    Owns the shared cache, the micro-batcher, and the admission stack;
    every endpoint is a ``_endpoint_*`` method returning a
    :class:`Response`.  Transport adapters call :meth:`handle`.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        cache: EvaluationCache | None = None,
        access_log: EventSink | None = None,
        fault_plan: object = None,
    ) -> None:
        #: Armed :class:`~repro.robustness.faultinject.ProcessFaultPlan`
        #: threaded into parallel Monte Carlo runs — chaos testing only.
        self.fault_plan = fault_plan
        self.config = config or ServiceConfig()
        self.cache = cache or EvaluationCache(
            capacity=self.config.cache_capacity
        )
        self.access_log = access_log or EventSink()
        self.limiter = RateLimiter(
            self.config.rate_limit_per_s, self.config.rate_burst
        )
        self.queue = AdmissionQueue(self.config.queue_limit)
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown_s
        )
        self.batcher = MicroBatcher(
            self.cache,
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_s,
            backend=self.config.backend,
            on_success=self.breaker.record_success,
            on_failure=self._backend_failure,
        )
        self.started_at = time.monotonic()
        self._closed = False

    # --- failure accounting ---------------------------------------------

    def _backend_failure(self, error: BaseException) -> None:
        """Report a kernel-call failure to the breaker.

        Client-shaped errors (bad values, unknown names) are the
        caller's fault and never trip the breaker; everything else —
        including a :class:`DivergenceError`, which means the fast path
        cannot be trusted — counts.
        """
        if isinstance(
            error, (ValidationError, ParameterError, UnknownEntryError)
        ):
            return
        self.breaker.record_failure()
        context = current_context()
        if context.enabled:
            context.count("service.backend_failures")

    # --- request plumbing -----------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        client: str = "anonymous",
    ) -> Response:
        """Route one request through admission to its endpoint.

        Health endpoints bypass admission entirely (a saturated service
        must still answer its orchestrator).
        """
        started = time.perf_counter()
        context = current_context()
        route = path.rstrip("/") or "/"
        try:
            if route == "/healthz":
                response = self._endpoint_healthz()
            elif route == "/readyz":
                response = self._endpoint_readyz()
            elif route == "/statz":
                response = self._endpoint_statz()
            else:
                response = self._handle_query(method, route, body, client)
        except Exception as error:  # noqa: BLE001 - mapped, never silent
            response = error_response(error, self.config)
        elapsed = time.perf_counter() - started
        if context.enabled:
            context.count("service.requests")
            context.count(f"service.responses.{response.status}")
            context.observe("service.request_seconds", elapsed)
        self.access_log.emit(
            "access",
            client=client,
            method=method,
            path=path,
            status=response.status,
            duration_ms=round(elapsed * 1e3, 3),
        )
        return response

    def _handle_query(
        self, method: str, route: str, body: bytes, client: str
    ) -> Response:
        endpoint = {
            "/v1/footprint": self._endpoint_footprint,
            "/v1/metric": self._endpoint_metric,
            "/v1/sweep": self._endpoint_sweep,
            "/v1/montecarlo": self._endpoint_montecarlo,
        }.get(route)
        if endpoint is None:
            return Response(
                404, {"error": "not_found", "message": f"no route {route}"}
            )
        if method != "POST":
            return Response(
                405,
                {"error": "method_not_allowed", "message": f"{route} is POST"},
                {"Allow": "POST"},
            )
        if not self.limiter.allow(client):
            raise RateLimited(
                f"client {client!r} exceeded "
                f"{self.config.rate_limit_per_s:g} requests/sec",
                retry_after_s=self.config.retry_after_s,
            )
        if not self.queue.try_enter():
            if self.queue.draining:
                raise ServiceUnavailable(
                    "service is draining for shutdown",
                    retry_after_s=self.config.retry_after_s,
                )
            raise QueueFull(
                f"admission queue full ({self.queue.limit} in flight)",
                retry_after_s=self.config.retry_after_s,
            )
        context = current_context()
        try:
            with context.span("service.request", route=route):
                request = parse_body(body)
                return endpoint(request)
        finally:
            self.queue.leave()

    def _deadline_s(self, request: Mapping[str, object]) -> float:
        raw = request.get("deadline_ms")
        if raw is None:
            return self.config.default_deadline_s
        deadline = _number(raw, "deadline_ms") / 1e3
        if deadline <= 0:
            raise ParameterError(
                f"deadline_ms must be > 0, got {raw!r}"
            )
        return min(deadline, self.config.max_deadline_s)

    # --- endpoints ------------------------------------------------------

    def _endpoint_footprint(self, request: Mapping[str, object]) -> Response:
        scenario = parse_scenario(request.get("params"))
        deadline_s = self._deadline_s(request)
        lease = self.breaker.allow_backend()
        if lease is None:
            cached = self.cache.peek_by_key(
                scenario_key(scenario), 1, self.config.backend
            )
            if cached is None:
                raise ServiceUnavailable(
                    "backend circuit breaker is open and this query is "
                    "not cached",
                    retry_after_s=self.config.breaker_cooldown_s,
                )
            return Response(
                200,
                self._footprint_payload(cached, "cache", 1, degraded=True),
                {"X-Degraded": "true"},
            )
        try:
            pending = self.batcher.submit(scenario, timeout_s=deadline_s)
            result = pending.wait()
        finally:
            # The batcher settles real kernel outcomes with the breaker
            # before waiters wake, making this release a no-op; what it
            # catches is every path that never reached the backend —
            # cache hit inside submit, deadline expiry before
            # evaluation, drain refusal — where a claimed half-open
            # probe would otherwise leak and pin the service cache-only.
            lease.release()
        return Response(
            200,
            self._footprint_payload(
                result, pending.served_from, pending.batch_rows
            ),
        )

    @staticmethod
    def _footprint_payload(
        result: BatchResult,
        served_from: str,
        batch_rows: int,
        *,
        degraded: bool = False,
    ) -> dict[str, object]:
        payload: dict[str, object] = {
            "total_g": float(result.total_g[0]),
            "operational_g": float(result.operational_g[0]),
            "embodied_g": float(result.embodied_g[0]),
            "amortized_embodied_g": float(result.amortized_embodied_g[0]),
            "breakdown": {
                "soc_g": float(result.soc_embodied_g[0]),
                "dram_g": float(result.dram_embodied_g[0]),
                "ssd_g": float(result.ssd_embodied_g[0]),
                "hdd_g": float(result.hdd_embodied_g[0]),
                "packaging_g": float(result.packaging_g[0]),
            },
            "served_from": served_from,
            "batch_rows": batch_rows,
        }
        if degraded:
            payload["degraded"] = True
        return payload

    def _endpoint_metric(self, request: Mapping[str, object]) -> Response:
        designs = request.get("designs")
        if not isinstance(designs, list) or not designs:
            raise ValidationError("designs must be a non-empty JSON array")
        points = []
        for index, entry in enumerate(designs):
            design = _require_mapping(entry, f"designs[{index}]")
            extra = set(design) - {
                "name", "embodied_carbon_g", "energy_kwh", "delay_s",
                "area_mm2",
            }
            if extra:
                raise UnknownEntryError(
                    "design field",
                    ", ".join(sorted(extra)),
                    ("name", "embodied_carbon_g", "energy_kwh", "delay_s",
                     "area_mm2"),
                )
            for required in ("embodied_carbon_g", "energy_kwh", "delay_s"):
                if required not in design:
                    raise ValidationError(
                        f"designs[{index}] is missing {required}"
                    )
            points.append(
                DesignPoint(
                    name=str(design.get("name", f"design-{index}")),
                    embodied_carbon_g=_number(
                        design["embodied_carbon_g"],
                        f"designs[{index}].embodied_carbon_g",
                    ),
                    energy_kwh=_number(
                        design["energy_kwh"], f"designs[{index}].energy_kwh"
                    ),
                    delay_s=_number(
                        design["delay_s"], f"designs[{index}].delay_s"
                    ),
                    area_mm2=(
                        _number(
                            design["area_mm2"], f"designs[{index}].area_mm2"
                        )
                        if design.get("area_mm2") is not None
                        else None
                    ),
                )
            )
        metric_names = request.get("metrics")
        if metric_names is not None and (
            not isinstance(metric_names, list)
            or not all(isinstance(name, str) for name in metric_names)
        ):
            raise ValidationError("metrics must be a JSON array of names")
        table = score_table_batched(points, metric_names)
        return Response(
            200,
            {
                "scores": table,
                "winners": winners_batched(points, metric_names),
                "metrics": sorted(table),
                "available_metrics": list(METRICS),
            },
        )

    def _endpoint_sweep(self, request: Mapping[str, object]) -> Response:
        scenario = parse_scenario(request.get("params"))
        grids_raw = _require_mapping(request.get("grids"), "grids")
        if not grids_raw:
            raise ValidationError("grids must name at least one parameter")
        grids: dict[str, Sequence[float]] = {}
        points = 1
        for name, axis in grids_raw.items():
            if name not in FIELD_NAMES:
                raise UnknownEntryError(
                    "scenario parameter", name, FIELD_NAMES
                )
            if not isinstance(axis, list) or not axis:
                raise ValidationError(
                    f"grids.{name} must be a non-empty JSON array"
                )
            grids[name] = [
                _number(value, f"grids.{name}[{i}]")
                for i, value in enumerate(axis)
            ]
            points *= len(axis)
        if points > self.config.max_sweep_points:
            raise ParameterError(
                f"sweep would evaluate {points} points, above the service "
                f"cap of {self.config.max_sweep_points}"
            )
        series = str(request.get("response", "total_g"))
        if series not in RESPONSE_SERIES:
            raise UnknownEntryError("response series", series, RESPONSE_SERIES)
        batch = ScenarioBatch.from_product(scenario, grids)
        result = self._evaluate_guarded(batch)
        values = getattr(result, series)
        return Response(
            200,
            {
                "response": series,
                "points": int(len(batch)),
                "grids": {name: list(axis) for name, axis in grids.items()},
                "values": [float(v) for v in values],
                "min": float(np.min(values)),
                "max": float(np.max(values)),
            },
        )

    def _evaluate_guarded(self, batch: ScenarioBatch) -> BatchResult:
        """One cached batch evaluation with breaker accounting.

        The sweep endpoint's equivalent of a batcher tick: breaker-open
        requests may only be served from cache, kernel failures are
        reported to the breaker, and cache hits report *nothing* — a hit
        proves no backend health, so recording it as a success would
        close a half-open breaker against a still-broken backend.
        """
        lease = self.breaker.allow_backend()
        if lease is None:
            cached = self.cache.peek(batch, self.config.backend)
            if cached is None:
                raise ServiceUnavailable(
                    "backend circuit breaker is open and this sweep is "
                    "not cached",
                    retry_after_s=self.config.breaker_cooldown_s,
                )
            return cached
        try:
            result, from_cache = self.cache.evaluate_with_origin(
                batch, self.config.backend
            )
        except Exception as error:
            self._backend_failure(error)
            # No-op when the failure tripped/re-opened the breaker; frees
            # the probe slot when it was a client-shaped error that never
            # exercised the backend.
            lease.release()
            raise
        if from_cache:
            lease.release()
        else:
            self.breaker.record_success()
        return result

    def _endpoint_montecarlo(self, request: Mapping[str, object]) -> Response:
        from repro.robustness.checkpoint import (
            CancelToken,
            run_monte_carlo_chunked,
        )

        scenario = parse_scenario(request.get("params"))
        draws = int(_number(request.get("draws", 10_000), "draws"))
        if not 0 < draws <= self.config.max_draws:
            raise ParameterError(
                f"draws must be in [1, {self.config.max_draws}], got {draws}"
            )
        seed = int(_number(request.get("seed", 2022), "seed"))
        distribution = str(request.get("distribution", "triangular"))
        parameters = request.get("parameters")
        if parameters is not None and (
            not isinstance(parameters, list)
            or not all(isinstance(name, str) for name in parameters)
        ):
            raise ValidationError("parameters must be a JSON array of names")
        percentiles_raw = request.get("percentiles", [5.0, 50.0, 95.0])
        if not isinstance(percentiles_raw, list) or not percentiles_raw:
            raise ValidationError("percentiles must be a non-empty JSON array")
        percentiles = [
            _number(q, f"percentiles[{i}]")
            for i, q in enumerate(percentiles_raw)
        ]
        if any(not 0 <= q <= 100 for q in percentiles):
            raise ParameterError("percentiles must be in [0, 100]")
        policy = None
        workers_raw = request.get("workers")
        if workers_raw is not None:
            workers = int(_number(workers_raw, "workers"))
            if workers < 1:
                raise ParameterError(
                    f"workers must be >= 1, got {workers}"
                )
            from repro.parallel.policy import ExecutionPolicy

            # Retry-on-failure so a dying worker degrades latency, not
            # correctness: lost shards are re-executed bit-identically.
            policy = ExecutionPolicy(
                workers=workers, failure_policy="retry"
            )
        lease = self.breaker.allow_backend()
        if lease is None:
            raise ServiceUnavailable(
                "backend circuit breaker is open; Monte Carlo queries are "
                "not served degraded",
                retry_after_s=self.config.breaker_cooldown_s,
            )
        deadline_s = self._deadline_s(request)
        # Chunked execution is what makes the deadline *cooperative*: the
        # runner polls the token at every chunk boundary and raises
        # RunInterrupted (mapped to 504) instead of running away.
        cancel = CancelToken(deadline_seconds=deadline_s)
        try:
            result = run_monte_carlo_chunked(
                scenario,
                tuple(parameters) if parameters is not None else None,
                draws=draws,
                seed=seed,
                distribution=distribution,
                chunk_rows=min(self.config.mc_chunk_rows, draws),
                cancel=cancel,
                cache=self.cache,
                policy=policy,
                fault_plan=self.fault_plan,
            )
        except Exception as error:
            if not isinstance(error, (RunInterrupted, ReproError)):
                self._backend_failure(error)
            # A run that ended without a recorded backend outcome
            # (cancelled mid-flight, client-shaped error) must hand a
            # claimed half-open probe slot back; after a recorded
            # failure this is a no-op.
            lease.release()
            raise
        self.breaker.record_success()
        return Response(
            200,
            {
                "draws": draws,
                "seed": seed,
                "distribution": distribution,
                "base_total_g": result.base_response,
                "mean_g": result.mean,
                "std_g": result.std,
                "percentiles": {
                    f"p{q:g}": value
                    for q, value in zip(
                        percentiles, result.percentiles(percentiles)
                    )
                },
            },
        )

    # --- health ---------------------------------------------------------

    def _endpoint_healthz(self) -> Response:
        return Response(
            200,
            {
                "status": "ok",
                "uptime_s": round(time.monotonic() - self.started_at, 3),
            },
        )

    def _endpoint_readyz(self) -> Response:
        if self.queue.draining:
            return Response(
                503, {"status": "draining"}, {"Retry-After": "5"}
            )
        if not self.batcher.alive:
            return Response(503, {"status": "batcher-dead"})
        state = self.breaker.state
        if state == OPEN:
            # Still ready: cached queries are served.  Orchestrators see
            # the degradation without being told to stop routing.
            return Response(200, {"status": "degraded", "breaker": state})
        return Response(200, {"status": "ready", "breaker": state})

    def _endpoint_statz(self) -> Response:
        return Response(
            200,
            {
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "batcher": self.batcher.stats.as_dict(),
                "queue": {
                    "depth": self.queue.depth,
                    "limit": self.queue.limit,
                    "draining": self.queue.draining,
                },
                "breaker": {
                    "state": self.breaker.state,
                    "trips": self.breaker.trips,
                    "recoveries": self.breaker.recoveries,
                },
                "cache": self.cache.stats().as_dict(),
                "config": {
                    "max_batch": self.config.max_batch,
                    "max_wait_s": self.config.max_wait_s,
                    "queue_limit": self.config.queue_limit,
                },
            },
        )

    # --- lifecycle ------------------------------------------------------

    def drain(self, timeout_s: float | None = None) -> bool:
        """Stop admitting, finish in-flight work, stop the batcher.

        Returns ``True`` when everything completed within the timeout.
        Idempotent — the SIGTERM handler and ``close()`` can both call it.
        """
        if self._closed:
            return True
        timeout = (
            timeout_s if timeout_s is not None else self.config.drain_timeout_s
        )
        drained = self.queue.drain(timeout)
        closed = self.batcher.close(timeout)
        self._closed = True
        context = current_context()
        if context.enabled:
            context.event("service_drained", clean=drained and closed)
        return drained and closed

    close = drain
