"""SSD reliability substrate: WA, lifetime equation, provisioning optima."""

import pytest

from repro.core.errors import ParameterError
from repro.reliability.provisioning import (
    DEFAULT_PF_SWEEP,
    devices_needed,
    effective_embodied,
    normalized_effective_embodied,
    optimal_over_provisioning,
    second_life_saving,
)
from repro.reliability.ssd_lifetime import (
    BASELINE_OVER_PROVISIONING,
    FIRST_LIFE_YEARS,
    SECOND_LIFE_YEARS,
    SsdWorkload,
    lifetime_years,
    reliability_curve,
)
from repro.reliability.write_amplification import write_amplification


class TestWriteAmplification:
    def test_baseline_4_percent_is_13x(self):
        assert write_amplification(0.04) == pytest.approx(13.0)

    def test_16_percent(self):
        assert write_amplification(0.16) == pytest.approx(3.625)

    def test_34_percent_near_2x(self):
        assert write_amplification(0.34) == pytest.approx(1.97, rel=0.01)

    def test_monotone_decreasing(self):
        values = [write_amplification(pf) for pf in DEFAULT_PF_SWEEP]
        assert values == sorted(values, reverse=True)

    def test_clamped_at_one(self):
        # Enormous spare area cannot push WA below one write per write.
        assert write_amplification(10.0) == 1.0

    def test_zero_op_rejected(self):
        with pytest.raises(ParameterError):
            write_amplification(0.0)


class TestLifetimeEquation:
    def test_meza_formula(self):
        workload = SsdWorkload(pec=3000.0, dwpd=1.0, compression=1.0)
        pf = 0.2
        expected = 3000.0 * 1.2 / (365.0 * 1.0 * write_amplification(pf))
        assert lifetime_years(pf, workload) == pytest.approx(expected)

    def test_explicit_wa_override(self):
        workload = SsdWorkload()
        assert lifetime_years(0.1, workload, wa=2.0) == pytest.approx(
            workload.pec * 1.1 / (365.0 * workload.dwpd * 2.0)
        )

    def test_first_life_anchor(self):
        # 16% over-provisioning sustains one ~2-year mobile life.
        assert FIRST_LIFE_YEARS <= lifetime_years(0.16) < 2.5

    def test_second_life_anchor(self):
        assert SECOND_LIFE_YEARS <= lifetime_years(0.34) < 5.0

    def test_compression_extends_lifetime(self):
        compressible = SsdWorkload(compression=0.5)
        assert lifetime_years(0.16, compressible) == pytest.approx(
            2 * lifetime_years(0.16)
        )

    def test_heavier_writes_shorten_lifetime(self):
        heavy = SsdWorkload(dwpd=2.56)
        assert lifetime_years(0.16, heavy) < lifetime_years(0.16)

    def test_curve_structure(self):
        curve = reliability_curve((0.04, 0.16, 0.34))
        assert [p.over_provisioning for p in curve] == [0.04, 0.16, 0.34]
        assert all(p.lifetime_years > 0 for p in curve)

    def test_invalid_workload(self):
        with pytest.raises(ParameterError):
            SsdWorkload(pec=0.0)


class TestProvisioningOptima:
    def test_devices_needed_integer(self):
        assert devices_needed(0.16, FIRST_LIFE_YEARS) == 1
        assert devices_needed(0.04, FIRST_LIFE_YEARS) >= 4

    def test_effective_embodied_includes_spare_capacity(self):
        assert effective_embodied(0.16, FIRST_LIFE_YEARS) == pytest.approx(1.16)

    def test_first_life_optimum_16_percent(self):
        assert optimal_over_provisioning(
            FIRST_LIFE_YEARS
        ).over_provisioning == pytest.approx(0.16)

    def test_second_life_optimum_34_percent(self):
        assert optimal_over_provisioning(
            SECOND_LIFE_YEARS
        ).over_provisioning == pytest.approx(0.34)

    def test_second_life_saving_near_1_8(self):
        assert second_life_saving() == pytest.approx(1.8, rel=0.06)

    def test_normalized_baseline_is_one(self):
        assert normalized_effective_embodied(
            BASELINE_OVER_PROVISIONING, FIRST_LIFE_YEARS
        ) == pytest.approx(1.0)

    def test_under_provisioning_costs_replacements(self):
        # 8% lives ~1 year, so a 2-year life needs two devices.
        assert effective_embodied(0.08, FIRST_LIFE_YEARS) == pytest.approx(
            2 * 1.08
        )

    def test_over_provisioning_beyond_optimum_wastes_capacity(self):
        optimum = optimal_over_provisioning(FIRST_LIFE_YEARS)
        beyond = effective_embodied(0.40, FIRST_LIFE_YEARS)
        assert beyond > optimum.effective_embodied

    def test_invalid_service_target(self):
        with pytest.raises(ParameterError):
            devices_needed(0.16, 0.0)
