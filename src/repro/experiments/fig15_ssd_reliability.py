"""Figure 15: SSD over-provisioning, reliability, and second-life recycling.

Top: write amplification falls and endurance lifetime rises as the
over-provisioning factor grows.  Bottom: effective embodied carbon
(normalized to the 4% baseline) across the sweep for a first life (~2 y)
and a second life (~4 y); the optima land at 16% and 34%, and serving both
lives with one device saves ~1.8x.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    check_close,
    check_equal,
    check_true,
)
from repro.reliability.provisioning import (
    DEFAULT_PF_SWEEP,
    normalized_effective_embodied,
    optimal_over_provisioning,
    second_life_saving,
)
from repro.reliability.ssd_lifetime import (
    FIRST_LIFE_YEARS,
    SECOND_LIFE_YEARS,
    reliability_curve,
)
from repro.reporting.figures import FigureData, Series

EXPERIMENT_ID = "fig15"
TITLE = "SSD over-provisioning: reliability lifetimes and effective embodied CO2"


def run() -> ExperimentResult:
    """Regenerate Figure 15 and check the 16% / 34% / 1.8x anchors."""
    curve = reliability_curve(DEFAULT_PF_SWEEP)
    pfs = tuple(point.over_provisioning for point in curve)

    top = FigureData(
        title="Figure 15 (top): WA and lifetime vs over-provisioning",
        x_label="over-provisioning factor",
        y_label="WA (x) / lifetime (years)",
        series=(
            Series("write amplification", pfs,
                   tuple(p.write_amplification for p in curve)),
            Series("lifetime (years)", pfs,
                   tuple(p.lifetime_years for p in curve)),
        ),
    )
    bottom = FigureData(
        title="Figure 15 (bottom): effective embodied carbon (normalized to 4%)",
        x_label="over-provisioning factor",
        y_label="x vs 4% baseline",
        series=(
            Series(
                "first life (2y)",
                pfs,
                tuple(
                    normalized_effective_embodied(pf, FIRST_LIFE_YEARS)
                    for pf in pfs
                ),
            ),
            Series(
                "second life (4y)",
                pfs,
                tuple(
                    normalized_effective_embodied(pf, SECOND_LIFE_YEARS)
                    for pf in pfs
                ),
            ),
        ),
    )

    first = optimal_over_provisioning(FIRST_LIFE_YEARS)
    second = optimal_over_provisioning(SECOND_LIFE_YEARS)
    wa_falls = all(
        a.write_amplification > b.write_amplification
        for a, b in zip(curve, curve[1:])
    )
    lifetime_rises = all(
        a.lifetime_years < b.lifetime_years for a, b in zip(curve, curve[1:])
    )

    checks = (
        check_true(
            "write amplification falls with over-provisioning",
            wa_falls, "monotone" if wa_falls else "non-monotone", "falling",
        ),
        check_true(
            "lifetime rises with over-provisioning",
            lifetime_rises, "monotone" if lifetime_rises else "non-monotone",
            "rising",
        ),
        check_equal(
            "first-life optimal over-provisioning", first.over_provisioning, 0.16
        ),
        check_equal(
            "second-life optimal over-provisioning",
            second.over_provisioning, 0.34,
        ),
        check_true(
            "first-life optimum sustains one ~2-year mobile life",
            FIRST_LIFE_YEARS <= first.lifetime_years < 2.0 * FIRST_LIFE_YEARS,
            f"{first.lifetime_years:.2f} years",
            ">= 2 years",
        ),
        check_true(
            "second-life optimum sustains ~4 years of service",
            SECOND_LIFE_YEARS <= second.lifetime_years,
            f"{second.lifetime_years:.2f} years",
            ">= 4 years",
        ),
        check_close(
            "embodied saving of second-life reuse", second_life_saving(), 1.8,
            rel_tol=0.06,
        ),
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=(top, bottom),
        reference={
            "anchors": "16% optimal for first life, 34% enables second life, "
            "~1.8x embodied reduction from recycling into a second life",
        },
        checks=checks,
    )
