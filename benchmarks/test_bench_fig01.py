"""Benchmark: regenerate Figure 1: life-cycle shift from operational to embodied emissions."""


def test_bench_fig1(verify):
    """Figure 1: life-cycle shift from operational to embodied emissions — regenerate, print, and verify against the paper."""
    verify("fig1")
