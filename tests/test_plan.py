"""The structure-aware sweep planner: factoring, dedup, and incremental DSE.

Five contracts are pinned here:

* **Bit-identity** — the planned path (factored per-axis partials,
  combined by broadcast) produces *exactly* the dense batched result —
  ``==`` per element, same dtype — on every plannable backend
  (reference, fused, float32), through every integration point (one-shot
  sweeps, parallel sweeps at any worker count, chunked+resumed sweeps).
* **Fallback matrix** — ``off`` never plans, ``auto`` skips small grids,
  non-plannable custom backends always fall back to the dense path, and
  guarded sweeps stay dense; error behavior (empty grids, unknown
  parameters, malformed axes) is identical on both paths.
* **Memory discipline** — a planned batch materializes only the swept
  columns; constant columns stay zero-stride broadcast views (the
  satellite regression for no intermediate full-grid copies).
* **Reuse mechanics** — the plan-level content-hash cache hits on
  re-sweeps, unique-row dedup pays the kernel once per distinct row
  (order-preserving gather–scatter, optional per-unique-row cache keys),
  and :class:`~repro.dse.optimizer.ExplorationSession` reproduces full
  ``explore_batched`` trajectories while recomputing only changed
  metrics.
* **Guard + CLI integration** — ``GuardedEngine.verify_planned`` and
  ``verify_plan`` catch a corrupted planned result with a typed
  :class:`~repro.core.errors.DivergenceError`; the ``--planner`` flag
  parses, applies, and rejects unknown modes.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.montecarlo import run_monte_carlo, sample_scenario_batch
from repro.analysis.scenario import ActScenario
from repro.core.errors import (
    ConstraintError,
    DivergenceError,
    ParameterError,
    UnknownEntryError,
    ValidationError,
)
from repro.core.metrics import METRICS, DesignPoint
from repro.dse.optimizer import ExplorationSession, explore_batched
from repro.dse.pareto import (
    dominance_counts,
    pareto_mask,
    update_dominance_counts,
)
from repro.dse.sweep import FrozenParams, sweep_grid_batched
from repro.engine import (
    FIELD_NAMES,
    FLOAT32,
    FUSED,
    REFERENCE,
    BatchResult,
    EvaluationCache,
    ScenarioBatch,
    evaluate_batch,
    register_backend,
    unregister_backend,
    use_backend,
)
from repro.engine.backends.reference import BackendBase
from repro.engine.batch import prevalidated_batch, product_columns
from repro.engine.kernels import _evaluate_batch_arrays
from repro.engine.plan import (
    AUTO_MIN_ROWS,
    PLANNER_AUTO,
    PLANNER_ENV_VAR,
    PLANNER_MODES,
    PLANNER_OFF,
    PLANNER_ON,
    SERIES_NAMES,
    SweepPlan,
    backend_plannable,
    current_planner_mode,
    dedup_rows,
    evaluate_batch_deduped,
    evaluate_plan_cached,
    plan_product,
    planner_engaged,
    resolve_planner_mode,
    use_planner,
    verify_plan,
)
from repro.parallel.policy import ExecutionPolicy
from repro.robustness import GuardedEngine, sweep_grid_batched_chunked

BASE = ActScenario()
REPO_ROOT = Path(__file__).resolve().parents[1]

#: A 4-axis separable grid comfortably above the auto threshold.
BIG_GRIDS = {
    "ci_use_g_per_kwh": tuple(np.linspace(50.0, 700.0, 10)),
    "ci_fab_g_per_kwh": tuple(np.linspace(100.0, 900.0, 9)),
    "dram_gb": tuple(np.linspace(4.0, 64.0, 8)),
    "ic_count": tuple(np.arange(1.0, 8.0)),
}

#: A mixed grid: three of the axes feed the same cpa/soc factor chain.
MIXED_GRIDS = {
    "ci_fab_g_per_kwh": tuple(np.linspace(100.0, 900.0, 9)),
    "epa_kwh_per_cm2": tuple(np.linspace(0.5, 3.0, 8)),
    "fab_yield": tuple(np.linspace(0.6, 1.0, 9)),
    "ci_use_g_per_kwh": tuple(np.linspace(50.0, 700.0, 10)),
}


def assert_results_identical(a: BatchResult, b: BatchResult) -> None:
    for name in SERIES_NAMES:
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        np.testing.assert_array_equal(left, right, err_msg=name)


class TestPlannerModes:
    def test_default_mode_is_auto(self):
        assert current_planner_mode() == PLANNER_AUTO
        assert resolve_planner_mode(None) == PLANNER_AUTO

    def test_use_planner_nests_and_restores(self):
        with use_planner(PLANNER_OFF):
            assert current_planner_mode() == PLANNER_OFF
            with use_planner(PLANNER_ON):
                assert current_planner_mode() == PLANNER_ON
            assert current_planner_mode() == PLANNER_OFF
        assert current_planner_mode() == PLANNER_AUTO

    def test_use_planner_none_is_transparent(self):
        with use_planner(PLANNER_ON):
            with use_planner(None):
                assert current_planner_mode() == PLANNER_ON

    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError) as excinfo:
            resolve_planner_mode("fastest")
        assert "fastest" in str(excinfo.value)
        for mode in PLANNER_MODES:
            assert mode in str(excinfo.value)
        with pytest.raises(ParameterError):
            with use_planner("fastest"):
                pass  # pragma: no cover - must fail at the with statement

    def test_env_var_sets_process_default(self):
        # _ENV_DEFAULT caches at first read, so probe in a subprocess.
        code = (
            "from repro.engine.plan import current_planner_mode;"
            "print(current_planner_mode())"
        )
        env = {
            **os.environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
            PLANNER_ENV_VAR: "off",
        }
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == PLANNER_OFF

    def test_engagement_matrix(self):
        many, few = AUTO_MIN_ROWS, AUTO_MIN_ROWS - 1
        assert not planner_engaged(PLANNER_OFF, many)
        assert planner_engaged(PLANNER_ON, few)
        assert planner_engaged(PLANNER_AUTO, many)
        assert not planner_engaged(PLANNER_AUTO, few)

    def test_plannable_backends(self):
        for name in (REFERENCE, FUSED, FLOAT32):
            assert backend_plannable(name)


class TestPlanConstruction:
    def test_plan_mirrors_dense_grid_shape(self):
        plan = plan_product(BASE, BIG_GRIDS)
        assert plan.names == tuple(BIG_GRIDS)
        assert plan.shape == (10, 9, 8, 7)
        assert plan.size == len(plan) == 5040

    def test_empty_grids_rejected(self):
        with pytest.raises(ParameterError):
            plan_product(BASE, {})

    def test_unknown_parameter_rejected_like_dense(self):
        bad = {"not_a_field": (1.0, 2.0)}
        with pytest.raises(UnknownEntryError):
            plan_product(BASE, bad)
        with pytest.raises(UnknownEntryError):
            ScenarioBatch.from_product(BASE, bad)

    def test_malformed_axes_rejected(self):
        with pytest.raises(ParameterError):
            plan_product(BASE, {"energy_kwh": []})
        with pytest.raises(ParameterError):
            plan_product(BASE, {"energy_kwh": [[1.0, 2.0]]})

    def test_invalid_axis_values_rejected_like_dense(self):
        bad = {"energy_kwh": (1.0, float("nan"))}
        with pytest.raises(ParameterError):
            plan_product(BASE, bad)
        with pytest.raises(ParameterError):
            ScenarioBatch.from_product(BASE, bad)

    def test_gather_rows_range_validated(self):
        plan = plan_product(BASE, {"energy_kwh": (1.0, 2.0, 3.0)})
        factors = plan.partial_series()
        with pytest.raises(ParameterError):
            plan.gather_rows(factors, 2, 5)
        with pytest.raises(ParameterError):
            plan.gather_rows(factors, -1, 2)

    def test_content_key_distinguishes_grids_and_bases(self):
        plan = plan_product(BASE, BIG_GRIDS)
        other_grid = dict(BIG_GRIDS, dram_gb=(4.0, 8.0, 16.0))
        other_base = plan_product(BASE.replace(hdd_gb=500.0), BIG_GRIDS)
        assert plan.content_key != plan_product(BASE, other_grid).content_key
        assert plan.content_key != other_base.content_key
        assert plan.content_key == plan_product(BASE, BIG_GRIDS).content_key


class TestPlannedBitIdentity:
    @pytest.mark.parametrize("backend", (REFERENCE, FUSED, FLOAT32))
    def test_planned_equals_dense_per_backend(self, backend):
        with use_backend(backend):
            dense = sweep_grid_batched(
                BASE, BIG_GRIDS, cache=EvaluationCache(), planner="off"
            )
            planned = sweep_grid_batched(
                BASE, BIG_GRIDS, cache=EvaluationCache(), planner="on"
            )
        assert planned.names == dense.names
        assert_results_identical(dense.result, planned.result)
        for name in FIELD_NAMES:
            np.testing.assert_array_equal(
                dense.batch.column(name), planned.batch.column(name)
            )

    @pytest.mark.parametrize("backend", (REFERENCE, FUSED, FLOAT32))
    def test_mixed_grid_planned_equals_dense(self, backend):
        with use_backend(backend):
            dense = sweep_grid_batched(
                BASE, MIXED_GRIDS, cache=EvaluationCache(), planner="off"
            )
            planned = sweep_grid_batched(
                BASE, MIXED_GRIDS, cache=EvaluationCache(), planner="on"
            )
        assert_results_identical(dense.result, planned.result)

    def test_single_axis_degenerate_grid(self):
        grids = {"energy_kwh": tuple(np.linspace(1.0, 20.0, 600))}
        dense = sweep_grid_batched(
            BASE, grids, cache=EvaluationCache(), planner="off"
        )
        planned = sweep_grid_batched(
            BASE, grids, cache=EvaluationCache(), planner="on"
        )
        assert_results_identical(dense.result, planned.result)

    def test_all_singleton_axes_grid(self):
        grids = {"energy_kwh": (5.0,), "dram_gb": (8.0,), "ic_count": (3.0,)}
        dense = sweep_grid_batched(
            BASE, grids, cache=EvaluationCache(), planner="off"
        )
        planned = sweep_grid_batched(
            BASE, grids, cache=EvaluationCache(), planner="on"
        )
        assert_results_identical(dense.result, planned.result)

    def test_auto_engages_above_threshold_only(self):
        # Identity holds either way; this pins that auto == on for big
        # grids and auto == off for small ones via the cache key used
        # (plan-level keys never touch the dense batch hash).
        cache = EvaluationCache()
        small = {"energy_kwh": tuple(np.linspace(1.0, 9.0, 16))}
        sweep_grid_batched(BASE, small, cache=cache)  # auto, 16 rows: dense
        batch = ScenarioBatch.from_product(BASE, small)
        assert cache.peek(batch) is not None

        cache = EvaluationCache()
        sweep_grid_batched(BASE, BIG_GRIDS, cache=cache)  # auto: planned
        plan = plan_product(BASE, BIG_GRIDS)
        from repro.engine import current_backend

        assert (
            cache.peek_by_key(plan.content_key, plan.size, current_backend())
            is not None
        )

    def test_gathered_chunks_match_full_evaluation(self):
        plan = plan_product(BASE, MIXED_GRIDS)
        factors = plan.partial_series()
        full = plan.evaluate()
        for start, stop in ((0, 7), (100, 612), (plan.size - 3, plan.size)):
            rows = plan.gather_rows(factors, start, stop)
            for name in SERIES_NAMES:
                np.testing.assert_array_equal(
                    rows[name], getattr(full, name)[start:stop], err_msg=name
                )


class TestPlannedBatchViews:
    """Satellite: no intermediate full-grid copies on the planned path."""

    def test_constant_columns_are_zero_stride_views(self):
        plan = plan_product(BASE, BIG_GRIDS)
        batch = plan.batch()
        swept = set(plan.names)
        for name in FIELD_NAMES:
            column = batch.column(name)
            assert column.shape == (plan.size,)
            if name in swept:
                assert column.strides != (0,)
                assert column.flags.c_contiguous
            else:
                # One scalar broadcast out — 8 bytes backing 5040 rows.
                assert column.strides == (0,)
            assert not column.flags.writeable

    def test_view_batch_equals_dense_batch(self):
        plan = plan_product(BASE, BIG_GRIDS)
        dense = ScenarioBatch.from_product(BASE, BIG_GRIDS)
        batch = plan.batch()
        assert len(batch) == len(dense)
        for name in FIELD_NAMES:
            np.testing.assert_array_equal(
                batch.column(name), dense.column(name), err_msg=name
            )

    def test_view_batch_evaluates_like_dense(self):
        plan = plan_product(BASE, MIXED_GRIDS)
        dense = ScenarioBatch.from_product(BASE, MIXED_GRIDS)
        assert_results_identical(
            evaluate_batch(dense), evaluate_batch(plan.batch())
        )

    def test_product_columns_swept_columns_stay_single_copy(self):
        # product_columns builds the Cartesian columns from meshgrid
        # broadcast views; each returned column owns exactly one dense
        # allocation (the final reshape) and nothing else.
        size, columns = product_columns(BASE, BIG_GRIDS)
        assert size == 5040
        for name, column in columns.items():
            assert column.shape == (size,)
            assert column.flags.c_contiguous
            # The backing allocation is the column itself (or smaller —
            # a zero-stride broadcast of one scalar), never a larger
            # intermediate Cartesian copy.
            backing = column
            while backing.base is not None:
                backing = backing.base
            assert backing.nbytes <= column.nbytes


class TestPlanCache:
    def test_repeat_sweep_is_plan_level_cache_hit(self):
        cache = EvaluationCache()
        plan = plan_product(BASE, BIG_GRIDS)
        first = evaluate_plan_cached(plan, cache)
        second = evaluate_plan_cached(plan, cache)
        assert second is first
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 1

    def test_cache_isolated_per_backend(self):
        cache = EvaluationCache()
        plan = plan_product(BASE, BIG_GRIDS)
        ref = evaluate_plan_cached(plan, cache, backend=REFERENCE)
        f32 = evaluate_plan_cached(plan, cache, backend=FLOAT32)
        assert ref.total_g.dtype == np.float64
        assert f32.total_g.dtype == np.float32
        assert evaluate_plan_cached(plan, cache, backend=REFERENCE) is ref
        assert evaluate_plan_cached(plan, cache, backend=FLOAT32) is f32


class _UnplannableBackend(BackendBase):
    """Registered fine, but not in PLANNABLE_BACKENDS -> dense fallback."""

    name = "unplannable-test"
    tolerance = 0.0

    def evaluate(self, batch):
        return _evaluate_batch_arrays(batch)


class TestFallbacks:
    def test_custom_backend_falls_back_to_dense(self):
        register_backend(_UnplannableBackend())
        try:
            with use_backend("unplannable-test"):
                assert not backend_plannable(None)
                assert not planner_engaged(PLANNER_ON, 10**6)
                cache = EvaluationCache()
                result = sweep_grid_batched(
                    BASE, BIG_GRIDS, cache=cache, planner="on"
                )
                # Served densely: the dense batch key is in the cache.
                batch = ScenarioBatch.from_product(BASE, BIG_GRIDS)
                assert cache.peek(batch) is not None
        finally:
            unregister_backend("unplannable-test")
        reference = sweep_grid_batched(
            BASE, BIG_GRIDS, cache=EvaluationCache(), planner="off"
        )
        assert_results_identical(reference.result, result.result)

    def test_partial_series_rejects_unplannable_backend(self):
        register_backend(_UnplannableBackend())
        try:
            plan = plan_product(BASE, BIG_GRIDS)
            with pytest.raises(ParameterError):
                plan.partial_series("unplannable-test")
        finally:
            unregister_backend("unplannable-test")

    def test_guarded_sweeps_stay_dense_and_identical(self):
        # In-range axes only: the guard validates against Table 1.
        grids = {
            "fab_yield": tuple(np.linspace(0.6, 0.95, 8)),
            "energy_kwh": tuple(np.linspace(2.0, 8.0, 10)),
            "ci_use_g_per_kwh": tuple(np.linspace(50.0, 650.0, 8)),
        }
        guard = GuardedEngine()
        guarded = sweep_grid_batched(BASE, grids, guard=guard)
        dense = sweep_grid_batched(
            BASE, grids, cache=EvaluationCache(), planner="off"
        )
        np.testing.assert_array_equal(
            guarded.result.total_g, dense.result.total_g
        )

    def test_off_mode_uses_dense_batch_cache_key(self):
        cache = EvaluationCache()
        sweep_grid_batched(BASE, BIG_GRIDS, cache=cache, planner="off")
        batch = ScenarioBatch.from_product(BASE, BIG_GRIDS)
        assert cache.peek(batch) is not None
        assert cache.stats().misses == 1


class TestVerifyPlan:
    def test_correct_plan_passes_at_zero_tolerance(self):
        plan = plan_product(BASE, BIG_GRIDS)
        verify_plan(plan, plan.evaluate())

    def test_corrupted_result_raises_divergence(self):
        plan = plan_product(BASE, BIG_GRIDS)
        result = plan.evaluate()
        series = {
            name: np.array(getattr(result, name)) for name in SERIES_NAMES
        }
        series["total_g"][0] *= 1.001
        with pytest.raises(DivergenceError) as excinfo:
            verify_plan(plan, BatchResult(**series))
        assert excinfo.value.series == "total_g"
        assert 0 in excinfo.value.indices

    def test_guarded_engine_verify_planned(self):
        plan = plan_product(BASE, BIG_GRIDS)
        guard = GuardedEngine()
        guard.verify_planned(plan, plan.evaluate())
        with use_backend(FUSED):
            guard.verify_planned(plan, plan.evaluate(FUSED), FUSED)


class TestParallelPlanned:
    @pytest.mark.parametrize("transport", ("shm", "pickle"))
    def test_parallel_planned_matches_dense_any_worker_count(self, transport):
        dense = sweep_grid_batched(
            BASE, BIG_GRIDS, cache=EvaluationCache(), planner="off"
        )
        for workers in (1, 2, 3):
            policy = ExecutionPolicy(
                workers=workers, transport=transport, shard_rows=1024
            )
            swept = sweep_grid_batched(
                BASE, BIG_GRIDS, policy=policy, planner="on"
            )
            assert_results_identical(dense.result, swept.result)

    def test_parallel_auto_small_grid_stays_dense_path(self):
        small = {
            "fab_yield": (0.6, 0.875, 0.95),
            "energy_kwh": tuple(np.linspace(2.0, 8.0, 20)),
        }
        policy = ExecutionPolicy(workers=2, shard_rows=16)
        serial = sweep_grid_batched(
            BASE, small, cache=EvaluationCache(), planner="off"
        )
        swept = sweep_grid_batched(BASE, small, policy=policy)
        assert_results_identical(serial.result, swept.result)


class TestChunkedPlanned:
    def test_chunked_planned_matches_dense(self):
        dense = sweep_grid_batched(
            BASE, BIG_GRIDS, cache=EvaluationCache(), planner="off"
        )
        chunked = sweep_grid_batched_chunked(
            BASE, BIG_GRIDS, chunk_rows=997, planner="on"
        )
        assert_results_identical(dense.result, chunked.result)

    def test_resume_folds_planner_mode_into_the_fingerprint(self, tmp_path):
        # The planner mode is part of a checkpoint's identity: resuming
        # under a different mode refuses with a typed mismatch (the two
        # paths are bit-identical by the planner contract, but identity
        # checks must not rely on that), while the same mode resumes to
        # the bit-identical dense result.
        from repro.core.errors import CheckpointError, RunInterrupted
        from repro.robustness import CancelToken

        class StopAfter(CancelToken):
            def __init__(self, checks):
                self._left = checks

            def should_stop(self):
                self._left -= 1
                return self._left < 0

        path = tmp_path / "sweep.npz"
        dense = sweep_grid_batched_chunked(
            BASE, BIG_GRIDS, chunk_rows=640, planner="off"
        )
        with pytest.raises(RunInterrupted):
            sweep_grid_batched_chunked(
                BASE,
                BIG_GRIDS,
                chunk_rows=640,
                checkpoint=path,
                cancel=StopAfter(3),
                planner="off",
            )
        with pytest.raises(CheckpointError) as excinfo:
            sweep_grid_batched_chunked(
                BASE,
                BIG_GRIDS,
                chunk_rows=640,
                checkpoint=path,
                resume=True,
                planner="on",
            )
        assert excinfo.value.reason == "mismatch"
        resumed = sweep_grid_batched_chunked(
            BASE,
            BIG_GRIDS,
            chunk_rows=640,
            checkpoint=path,
            resume=True,
            planner="off",
        )
        assert_results_identical(dense.result, resumed.result)


class TestDedup:
    def _duplicated_batch(self):
        rng = np.random.default_rng(11)
        distinct = sample_scenario_batch(BASE, draws=12, seed=3)
        order = rng.integers(0, 12, 64)
        return (
            prevalidated_batch(
                {
                    name: distinct.column(name)[order]
                    for name in FIELD_NAMES
                }
            ),
            order,
        )

    def test_dedup_rows_finds_unique_rows(self):
        batch, order = self._duplicated_batch()
        dedup = dedup_rows({name: batch.column(name) for name in FIELD_NAMES})
        assert dedup.rows == 64
        assert dedup.unique_count == len(np.unique(order))
        assert 0.0 < dedup.duplicate_fraction < 1.0

    def test_gather_scatter_preserves_row_order(self):
        batch, _ = self._duplicated_batch()
        dedup = dedup_rows({name: batch.column(name) for name in FIELD_NAMES})
        for name in FIELD_NAMES:
            column = batch.column(name)
            np.testing.assert_array_equal(
                dedup.scatter(dedup.gather(column)), column, err_msg=name
            )

    def test_scatter_preserves_valid_flags(self):
        batch, _ = self._duplicated_batch()
        dedup = dedup_rows({name: batch.column(name) for name in FIELD_NAMES})
        rng = np.random.default_rng(5)
        unique_valid = rng.random(dedup.unique_count) < 0.5
        scattered = dedup.scatter(unique_valid)
        assert scattered.dtype == np.bool_
        np.testing.assert_array_equal(
            scattered, unique_valid[dedup.inverse]
        )

    @pytest.mark.parametrize("row_keys", (False, True))
    def test_deduped_evaluation_is_bit_identical(self, row_keys):
        batch, _ = self._duplicated_batch()
        expected = evaluate_batch(batch)
        result = evaluate_batch_deduped(
            batch, EvaluationCache(), row_keys=row_keys
        )
        assert_results_identical(expected, result)

    def test_deduped_evaluation_without_duplicates(self):
        batch = sample_scenario_batch(BASE, draws=32, seed=8)
        assert_results_identical(
            evaluate_batch(batch),
            evaluate_batch_deduped(batch, EvaluationCache()),
        )

    def test_row_key_entries_interoperate_across_batches(self):
        # Two different duplicated batches over the same 12 distinct
        # rows: the second evaluation reuses the first's per-unique-row
        # entries even though the batch hashes differ.
        cache = EvaluationCache()
        distinct = sample_scenario_batch(BASE, draws=12, seed=3)
        for seed in (1, 2):
            order = np.random.default_rng(seed).integers(0, 12, 50)
            batch = prevalidated_batch(
                {name: distinct.column(name)[order] for name in FIELD_NAMES}
            )
            result = evaluate_batch_deduped(batch, cache, row_keys=True)
            assert_results_identical(evaluate_batch(batch), result)
        assert cache.stats().hits > 0

    def test_monte_carlo_dedup_is_bit_identical(self):
        plain = run_monte_carlo(BASE, draws=300, seed=7)
        deduped = run_monte_carlo(
            BASE, draws=300, seed=7, cache=EvaluationCache(), dedup=True
        )
        np.testing.assert_array_equal(plain.samples, deduped.samples)


class TestFrozenParams:
    def test_numpy_scalars_hash_like_python_floats(self):
        plain = FrozenParams({"energy_kwh": 5.0, "dram_gb": 8.0})
        numpy_typed = FrozenParams(
            {"energy_kwh": np.float64(5.0), "dram_gb": np.float32(8.0)}
        )
        assert plain == numpy_typed
        assert hash(plain) == hash(numpy_typed)

    def test_zero_dim_arrays_are_unwrapped(self):
        wrapped = FrozenParams({"energy_kwh": np.array(5.0)})
        assert wrapped == FrozenParams({"energy_kwh": 5.0})
        assert hash(wrapped) == hash(FrozenParams({"energy_kwh": 5.0}))

    def test_memo_hits_across_value_provenance(self):
        memo = {FrozenParams({"energy_kwh": 5.0, "ic_count": 3.0}): "hit"}
        key = FrozenParams(
            {"energy_kwh": np.float64(5.0), "ic_count": np.int64(3)}
        )
        assert memo.get(key) == "hit"


class TestExplorationSession:
    @staticmethod
    def _points(c, e, d, areas):
        return [
            DesignPoint(
                name=f"p{i}",
                embodied_carbon_g=float(c[i]),
                energy_kwh=float(e[i]),
                delay_s=float(d[i]),
                area_mm2=None if areas[i] is None else float(areas[i]),
            )
            for i in range(len(c))
        ]

    def test_trajectory_identical_to_full_reevaluation(self):
        rng = np.random.default_rng(13)
        n = 48
        c = rng.uniform(10, 100, n)
        e = rng.uniform(1, 9, n)
        d = rng.uniform(0.1, 2.0, n)
        areas = list(rng.uniform(50, 500, n))
        areas[5] = None  # EDAP skip semantics must survive reuse
        session = ExplorationSession()
        for iteration in range(50):
            moved = rng.integers(0, n, 3)
            d = d.copy()
            d[moved] *= 1.0 + rng.uniform(-0.05, 0.05, moved.size)
            if iteration % 9 == 0:
                c = c.copy()
                c[moved] *= 1.02
            points = self._points(c, e, d, areas)
            full = explore_batched(points)
            incremental = session.explore(points)
            assert incremental.scores == full.scores, iteration
            assert incremental.winners == full.winners, iteration
            assert incremental.pareto == full.pareto, iteration
        assert session.metrics_reused > 0
        assert session.metrics_computed < 50 * len(METRICS)

    def test_unchanged_candidates_reuse_everything(self):
        rng = np.random.default_rng(3)
        points = self._points(
            rng.uniform(10, 100, 16),
            rng.uniform(1, 9, 16),
            rng.uniform(0.1, 2.0, 16),
            list(rng.uniform(50, 500, 16)),
        )
        session = ExplorationSession()
        first = session.explore(points)
        computed = session.metrics_computed
        second = session.explore(points)
        assert session.metrics_computed == computed
        assert session.metrics_reused >= len(METRICS)
        assert session.pareto_reused == 1
        assert second.scores == first.scores
        assert second.winners == first.winners

    def test_caller_mutation_cannot_corrupt_reuse(self):
        rng = np.random.default_rng(4)
        points = self._points(
            rng.uniform(10, 100, 8),
            rng.uniform(1, 9, 8),
            rng.uniform(0.1, 2.0, 8),
            [None] * 8,
        )
        session = ExplorationSession()
        result = session.explore(points)
        next(iter(result.scores.values()))["p0"] = -1.0
        clean = session.explore(points)
        assert clean.scores == explore_batched(points).scores

    def test_session_validates_like_explore_batched(self):
        session = ExplorationSession()
        with pytest.raises(ConstraintError):
            session.explore([])
        bad = [
            DesignPoint(
                name="nan",
                embodied_carbon_g=float("nan"),
                energy_kwh=1.0,
                delay_s=1.0,
            )
        ]
        with pytest.raises(ValidationError):
            session.explore(bad)

    def test_metric_subset_and_switching(self):
        rng = np.random.default_rng(6)
        points = self._points(
            rng.uniform(10, 100, 8),
            rng.uniform(1, 9, 8),
            rng.uniform(0.1, 2.0, 8),
            list(rng.uniform(50, 500, 8)),
        )
        session = ExplorationSession()
        subset = session.explore(points, metric_names=("EDP", "CEP"))
        assert set(subset.scores) == {"EDP", "CEP"}
        everything = session.explore(points)
        assert everything.scores == explore_batched(points).scores

    def test_small_moves_take_the_incremental_pareto_path(self):
        rng = np.random.default_rng(11)
        n = 64
        c = rng.uniform(10, 100, n)
        e = rng.uniform(1, 9, n)
        d = rng.uniform(0.1, 2.0, n)
        areas = list(rng.uniform(50, 500, n))
        session = ExplorationSession()
        session.explore(self._points(c, e, d, areas))
        assert session.pareto_incremental == 0  # first call is a full count
        for _ in range(10):
            d = d.copy()
            moved = rng.integers(0, n, 3)
            d[moved] *= 1.0 + rng.uniform(-0.05, 0.05, moved.size)
            points = self._points(c, e, d, areas)
            incremental = session.explore(points)
            full = explore_batched(points)
            assert incremental.pareto == full.pareto
        assert session.pareto_incremental == 10

    def test_bulk_moves_fall_back_to_the_full_recount(self):
        rng = np.random.default_rng(12)
        n = 16
        c = rng.uniform(10, 100, n)
        e = rng.uniform(1, 9, n)
        d = rng.uniform(0.1, 2.0, n)
        areas = list(rng.uniform(50, 500, n))
        session = ExplorationSession()
        session.explore(self._points(c, e, d, areas))
        # Every delay moves: more than a quarter of the rows changed, so
        # the session recounts in full (and still matches the reference).
        d = d * 1.01
        points = self._points(c, e, d, areas)
        result = session.explore(points)
        assert session.pareto_incremental == 0
        assert result.pareto == explore_batched(points).pareto


class TestIncrementalPareto:
    @staticmethod
    def _brute_counts(matrix):
        n = matrix.shape[0]
        counts = np.zeros(n, dtype=np.intp)
        for j in range(n):
            for i in range(n):
                if i == j:
                    continue
                no_worse = bool((matrix[i] <= matrix[j]).all())
                better = bool((matrix[i] < matrix[j]).any())
                if no_worse and better:
                    counts[j] += 1
        return counts

    def test_counts_match_brute_force_and_mask(self):
        rng = np.random.default_rng(7)
        matrix = rng.uniform(0.0, 10.0, (40, 3))
        matrix[5] = matrix[9]  # duplicate rows never dominate each other
        counts = dominance_counts(matrix)
        np.testing.assert_array_equal(counts, self._brute_counts(matrix))
        np.testing.assert_array_equal(counts == 0, pareto_mask(matrix))

    def test_update_equals_fresh_counts(self):
        rng = np.random.default_rng(8)
        old = rng.uniform(0.0, 10.0, (30, 3))
        counts = dominance_counts(old)
        new = old.copy()
        changed = np.array([2, 17, 29], dtype=np.intp)
        new[changed] *= rng.uniform(0.8, 1.2, (changed.size, 3))
        updated = update_dominance_counts(old, counts, new, changed)
        np.testing.assert_array_equal(updated, dominance_counts(new))
        np.testing.assert_array_equal(updated == 0, pareto_mask(new))

    def test_update_dedupes_repeated_changed_rows(self):
        rng = np.random.default_rng(9)
        old = rng.uniform(0.0, 10.0, (12, 3))
        counts = dominance_counts(old)
        new = old.copy()
        new[4] *= 0.5  # strictly better everywhere: dominates more rows
        repeated = np.array([4, 4, 4], dtype=np.intp)
        updated = update_dominance_counts(old, counts, new, repeated)
        np.testing.assert_array_equal(updated, dominance_counts(new))

    def test_update_with_no_changes_is_identity(self):
        rng = np.random.default_rng(10)
        matrix = rng.uniform(0.0, 10.0, (8, 3))
        counts = dominance_counts(matrix)
        updated = update_dominance_counts(
            matrix, counts, matrix, np.array([], dtype=np.intp)
        )
        np.testing.assert_array_equal(updated, counts)

    def test_update_validates_shapes_and_rows(self):
        rng = np.random.default_rng(14)
        old = rng.uniform(0.0, 10.0, (6, 3))
        counts = dominance_counts(old)
        with pytest.raises(ConstraintError):
            update_dominance_counts(
                old, counts, rng.uniform(0, 1, (7, 3)), np.array([0])
            )
        with pytest.raises(ConstraintError):
            update_dominance_counts(old, counts[:-1], old, np.array([0]))
        with pytest.raises(ConstraintError):
            update_dominance_counts(old, counts, old, np.array([6]))


class TestPlannerCli:
    def test_planner_flag_round_trips(self):
        from repro.cli import main

        assert (
            main(["montecarlo", "--draws", "64", "--planner", "auto"]) == 0
        )

    def test_unknown_planner_mode_exits_2(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["montecarlo", "--draws", "8", "--planner", "fastest"])
        assert excinfo.value.code == 2
