"""Golden-value regression tests.

The shape checks in the experiments tolerate calibrated bands; this file
freezes the *exact* computed values of the load-bearing numbers so any
accidental change to bundled data or calibrated constants fails with a
precise before/after, not just a band violation.  If a change here is
intentional, update the constants and `docs/CALIBRATION.md` together.
"""

import pytest

from repro.accelerators.nvdla import design
from repro.data.devices import ipad_platform, iphone11_platform
from repro.data.soc_catalog import mobile_soc
from repro.fabs.fab import default_fab
from repro.platforms.mobile import soc_embodied_g

#: CPA (g CO2 / cm^2) of the default fab per node.
GOLDEN_CPA = {
    "28": 1083.593750,
    "20": 1318.888889,
    "14": 1462.804878,
    "10": 1693.828125,
    "7": 1914.736842,
    "5": 2898.767606,
    "3": 3186.553030,
}

#: Embodied carbon (g CO2) of each catalog chipset's platform.
GOLDEN_SOC_EMBODIED = {
    "Exynos 9820": 3018.973006,
    "Exynos 9810": 2601.961641,
    "Exynos 8895": 2270.519531,
    "Exynos 7420": 1992.987805,
    "Snapdragon 865": 2282.805263,
    "Snapdragon 855": 1985.757895,
    "Snapdragon 845": 2180.198438,
    "Snapdragon 835": 1716.637734,
    "Snapdragon 820": 2155.209146,
    "Kirin 990": 2407.263158,
    "Kirin 980": 2007.394421,
    "Kirin 970": 2226.270562,
    "Kirin 960": 2153.136850,
}

#: Embodied carbon (g CO2) of each 16 nm NVDLA configuration.
GOLDEN_NVDLA_EMBODIED = {
    64: 12.066046,
    128: 13.380092,
    256: 16.008184,
    512: 21.264367,
    1024: 31.776735,
    2048: 52.801470,
}

#: Device bottom-up totals (g CO2).
GOLDEN_IPHONE11_G = 17146.670629
GOLDEN_IPAD_G = 21057.387408


@pytest.mark.parametrize("node,expected", sorted(GOLDEN_CPA.items()))
def test_default_fab_cpa(node, expected):
    assert default_fab(node).cpa_g_per_cm2() == pytest.approx(
        expected, rel=1e-6
    )


@pytest.mark.parametrize("name,expected", sorted(GOLDEN_SOC_EMBODIED.items()))
def test_soc_embodied(name, expected):
    assert soc_embodied_g(mobile_soc(name)) == pytest.approx(expected, rel=1e-6)


@pytest.mark.parametrize("macs,expected", sorted(GOLDEN_NVDLA_EMBODIED.items()))
def test_nvdla_embodied(macs, expected):
    assert design(macs).embodied_g == pytest.approx(expected, rel=1e-6)


def test_device_totals():
    assert iphone11_platform().embodied_g() == pytest.approx(
        GOLDEN_IPHONE11_G, rel=1e-6
    )
    assert ipad_platform().embodied_g() == pytest.approx(
        GOLDEN_IPAD_G, rel=1e-6
    )
