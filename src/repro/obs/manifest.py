"""Run manifests: enough provenance to reproduce (or distrust) a run.

ACT-style sustainability explorations are only as good as their audit
trail — a CO2 number without the seed, code version, and parameter
fingerprint that produced it cannot be reproduced or compared.  A
:class:`RunManifest` captures exactly that, and is emitted as the first
event of every traced run.
"""

from __future__ import annotations

import hashlib
import platform as platform_module
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from typing import Mapping


def fingerprint_parameters(parameters: Mapping[str, object]) -> str:
    """SHA-256 over the sorted (name, repr(value)) pairs of a parameter set.

    Two runs with identical fingerprints evaluated the same configuration;
    the reverse holds as long as ``repr`` is faithful (true for the float /
    int / str parameters the stack uses).
    """
    digest = hashlib.sha256()
    for name in sorted(parameters):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(repr(parameters[name]).encode("utf-8"))
        digest.update(b"\x01")
    return digest.hexdigest()


def git_describe(cwd: str | None = None) -> str | None:
    """``git describe --always --dirty`` of the working tree, or ``None``
    when git (or a repository) is unavailable."""
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one run: who, what, with which inputs.

    Attributes:
        run_id: Random unique id for correlating events and artifacts.
        created_at: Unix timestamp of manifest creation.
        seed: RNG seed of the run, if one applies.
        argv: The command line, if the run came from the CLI.
        python: Interpreter version string.
        numpy: numpy version string.
        platform: OS/machine identifier.
        git: ``git describe`` of the source tree, or ``None``.
        parameters_fingerprint: SHA-256 of the run's parameter set, or
            ``None`` when no parameters were registered.
        extra: Free-form caller additions.
    """

    run_id: str
    created_at: float
    seed: int | None = None
    argv: tuple[str, ...] | None = None
    python: str = ""
    numpy: str = ""
    platform: str = ""
    git: str | None = None
    parameters_fingerprint: str | None = None
    extra: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """The manifest as a JSON-serializable dict."""
        return {
            "run_id": self.run_id,
            "created_at": self.created_at,
            "seed": self.seed,
            "argv": list(self.argv) if self.argv is not None else None,
            "python": self.python,
            "numpy": self.numpy,
            "platform": self.platform,
            "git": self.git,
            "parameters_fingerprint": self.parameters_fingerprint,
            "extra": dict(self.extra),
        }


def build_manifest(
    *,
    seed: int | None = None,
    parameters: Mapping[str, object] | None = None,
    argv: "list[str] | tuple[str, ...] | None" = None,
    extra: Mapping[str, object] | None = None,
    describe_git: bool = True,
) -> RunManifest:
    """Assemble a :class:`RunManifest` for the current process.

    Args:
        seed: The run's RNG seed, if any.
        parameters: Parameter assignment to fingerprint (e.g. the base
            scenario's ``as_dict()``).
        argv: CLI arguments, when invoked from the command line.
        extra: Additional caller-supplied provenance.
        describe_git: Set ``False`` to skip the (subprocess) git lookup.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return RunManifest(
        run_id=uuid.uuid4().hex,
        created_at=time.time(),
        seed=seed,
        argv=tuple(argv) if argv is not None else None,
        python=sys.version.split()[0],
        numpy=numpy_version,
        platform=platform_module.platform(),
        git=git_describe() if describe_git else None,
        parameters_fingerprint=(
            fingerprint_parameters(parameters) if parameters else None
        ),
        extra=dict(extra or {}),
    )


def write_manifest(manifest: RunManifest, path: str) -> None:
    """Persist a manifest to ``path`` via the atomic commit protocol.

    Manifests are the audit trail's root of trust, so they get the same
    crash guarantee as checkpoints: tmp-write → fsync → rename, leaving
    either the previous contents or the complete new ones — never a
    truncated mixture.
    """
    # Lazy import: the durability module's package __init__ transitively
    # imports repro.obs.
    from repro.robustness.durability import atomic_write_json

    atomic_write_json(path, manifest.as_dict())
