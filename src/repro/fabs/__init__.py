"""Semiconductor fab modeling: scenarios, yields, energy mixes, CPA curves."""

from repro.fabs.cpa import CpaPoint, cpa_curve, cpa_point
from repro.fabs.energy_mix import (
    DEFAULT_FAB_MIX,
    FAB_ENERGY_MIXES,
    EnergyMix,
    fab_energy_mix,
    grid_with_renewables,
)
from repro.fabs.chiplets import (
    PartitionedDesign,
    chiplet_break_even_area_mm2,
    optimal_partition,
    partition,
    partition_sweep,
)
from repro.fabs.fab import FabScenario, default_fab
from repro.fabs.wafer import (
    WaferRun,
    gross_dies_per_wafer,
    wafer_area_cm2,
    wafer_run,
    wafers_needed,
)
from repro.fabs.yield_models import (
    ACT_REFERENCE_YIELD,
    FixedYield,
    MurphyYield,
    NodeDefaultYield,
    PoissonYield,
    default_yield_for_node,
)

__all__ = [
    "ACT_REFERENCE_YIELD",
    "CpaPoint",
    "DEFAULT_FAB_MIX",
    "EnergyMix",
    "FAB_ENERGY_MIXES",
    "FabScenario",
    "FixedYield",
    "MurphyYield",
    "NodeDefaultYield",
    "PartitionedDesign",
    "PoissonYield",
    "WaferRun",
    "chiplet_break_even_area_mm2",
    "cpa_curve",
    "cpa_point",
    "default_fab",
    "default_yield_for_node",
    "fab_energy_mix",
    "grid_with_renewables",
    "gross_dies_per_wafer",
    "optimal_partition",
    "partition",
    "partition_sweep",
    "wafer_area_cm2",
    "wafer_run",
    "wafers_needed",
]
