"""Performance model for the NVDLA-style NPU (Sections 7 / Figures 12-13).

Two related but distinct quantities, matching how the paper uses them:

* **Throughput** (Figure 13's FPS axis): with inter-frame pipelining the
  array streams at its effective MAC rate, so frames-per-second scales
  linearly with MAC count — the paper's performance-optimal 2048-MAC design
  delivers ~9x the 30 FPS QoS target while 256 MACs just meets it.
* **Single-inference latency** (the delay ``D`` inside the Table 2 metrics,
  Figure 12): one frame additionally pays a fixed serial overhead
  (activation DMA, layer scheduling) that parallelism cannot remove, so
  latency saturates at wide arrays.  This is why the carbon-delay product
  bottoms out at 1024 MACs even though raw throughput keeps rising.

The reference workload is a mobile image-processing CNN of ~3.9 GMACs per
frame (ResNet-50 class) at a 1 GHz array clock.
"""

from __future__ import annotations

from repro.core.parameters import require_positive

#: MAC operations per inference of the reference vision model.
WORK_MACS_PER_INFERENCE = 3.9e9

#: Array clock in Hz.
CLOCK_HZ = 1.0e9

#: Sustained array utilization (calibrated: 256 MACs ⇒ 33.8 FPS, so the
#: QoS-minimal design clears the 30 FPS bar and 2048 MACs ⇒ 9x the target).
UTILIZATION = 0.515

#: Serial per-frame overhead that parallelism cannot remove (seconds).
FIXED_LATENCY_S = 3.0e-3


def throughput_fps(n_macs: int) -> float:
    """Pipelined inference throughput (frames per second)."""
    require_positive("n_macs", n_macs)
    return UTILIZATION * n_macs * CLOCK_HZ / WORK_MACS_PER_INFERENCE


def compute_latency_s(n_macs: int) -> float:
    """Pure array-compute time for one frame."""
    require_positive("n_macs", n_macs)
    return WORK_MACS_PER_INFERENCE / (UTILIZATION * n_macs * CLOCK_HZ)


def latency_s(n_macs: int) -> float:
    """Single-inference latency: compute time plus fixed serial overhead."""
    return compute_latency_s(n_macs) + FIXED_LATENCY_S


def meets_qos(n_macs: int, target_fps: float) -> bool:
    """Whether the design sustains a frames-per-second QoS target."""
    require_positive("target_fps", target_fps)
    return throughput_fps(n_macs) >= target_fps
