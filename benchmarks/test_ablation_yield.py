"""Ablation: how the yield-model choice shifts embodied carbon.

ACT's released tool uses a fixed 0.875 yield; this reproduction defaults to
calibrated node-dependent yields, and also ships Poisson / Murphy
defect-density models.  The ablation quantifies the spread across those
choices on a reference 7 nm die and checks that the Figure 8 headline
(Snapdragon 835 has the lowest embodied footprint) is robust to it.
"""

from repro.core.components import DramComponent, LogicComponent
from repro.core.model import Platform
from repro.data.soc_catalog import all_socs
from repro.fabs.fab import FabScenario
from repro.fabs.yield_models import FixedYield, MurphyYield, PoissonYield

YIELD_MODELS = {
    "act_fixed_0.875": FixedYield(0.875),
    "node_default": None,  # FabScenario's calibrated per-node default
    "poisson_d0.1": PoissonYield(0.1),
    "murphy_d0.1": MurphyYield(0.1),
}


def _embodied_under(yield_model, soc):
    fab = FabScenario.for_node(soc.node, yield_model=yield_model)
    platform = Platform(
        soc.name,
        (
            LogicComponent(soc.name, soc.die_area_mm2, fab),
            DramComponent.of("dram", soc.dram_gb, soc.dram_technology),
        ),
    )
    return platform.embodied_g()


def _run_ablation():
    results = {}
    for label, model in YIELD_MODELS.items():
        embodied = {soc.name: _embodied_under(model, soc) for soc in all_socs()}
        results[label] = embodied
    return results


def test_bench_ablation_yield_models(benchmark):
    """Embodied carbon across yield models; the Fig. 8 winner must hold."""
    results = benchmark(_run_ablation)
    print()
    reference = _embodied_under(None, all_socs()[0])
    print(f"reference (node-default, {all_socs()[0].name}): {reference:.0f} g")
    for label, embodied in results.items():
        winner = min(embodied, key=embodied.get)
        lo, hi = min(embodied.values()), max(embodied.values())
        print(f"{label:18s} winner={winner:16s} range=[{lo:.0f}, {hi:.0f}] g")
        assert winner == "Snapdragon 835", label
    # The spread across yield-model choices stays bounded (< 30% on any SoC).
    for soc in all_socs():
        values = [results[label][soc.name] for label in YIELD_MODELS]
        assert max(values) / min(values) < 1.30, soc.name
