"""A GreenChip-style parametric baseline (prior work, Section 2.3).

GreenChip (Kline et al.) assesses IC environmental impact with the
parametric wafer-fabrication inventory of Murphy et al. (2003), which
characterizes 90/65/45/28 nm processes.  The paper's critique: such models
predate modern nodes, so applying them to today's silicon requires
extrapolating *down* a ladder whose energy-per-area trend (older fabs were
less lithography-bound) points the wrong way below 28 nm.

This module implements that baseline faithfully enough to demonstrate the
critique quantitatively: a per-node energy/materials inventory for the four
characterized nodes, a fixed world-average fab grid (the inventory has no
energy-mix parameter), and linear extrapolation below 28 nm — which the
comparison experiment shows diverging from ACT's imec-characterized curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ParameterError
from repro.core.parameters import require_positive
from repro.data.regions import region_ci

#: The inventory's per-node fab energy (kWh/cm^2): a gentle upward creep
#: across the 2003-2010 era nodes it actually characterized.
_INVENTORY_EPA: dict[float, float] = {
    90.0: 0.55,
    65.0: 0.62,
    45.0: 0.70,
    28.0: 0.80,
}

#: Per-node direct emissions + materials (g CO2/cm^2), lumped: the old
#: inventories do not separate gases from material procurement.
_INVENTORY_GMA: dict[float, float] = {
    90.0: 350.0,
    65.0: 380.0,
    45.0: 420.0,
    28.0: 470.0,
}

#: The baseline assumes a fixed world-average grid for fab electricity;
#: renewable procurement is not representable.
FAB_CI_G_PER_KWH = region_ci("world")

#: The characterized node range.
SUPPORTED_NODES_NM = tuple(sorted(_INVENTORY_EPA))


@dataclass(frozen=True)
class GreenChipEstimate:
    """The baseline's carbon-per-area estimate for one node.

    Attributes:
        feature_nm: Queried node.
        cpa_g_per_cm2: Estimated carbon per cm^2.
        extrapolated: True when the node lies outside the 28-90 nm
            characterized range (the paper's core criticism).
    """

    feature_nm: float
    cpa_g_per_cm2: float
    extrapolated: bool


def supports(feature_nm: float) -> bool:
    """Whether the node lies within the characterized 28-90 nm range."""
    return SUPPORTED_NODES_NM[0] <= feature_nm <= SUPPORTED_NODES_NM[-1]


def _interp(table: dict[float, float], feature_nm: float) -> float:
    nodes = sorted(table)
    if feature_nm <= nodes[0]:
        # Linear extrapolation below the smallest characterized node, from
        # the slope of its two nearest neighbours.
        x0, x1 = nodes[0], nodes[1]
    elif feature_nm >= nodes[-1]:
        x0, x1 = nodes[-2], nodes[-1]
    else:
        x1 = min(n for n in nodes if n >= feature_nm)
        x0 = max(n for n in nodes if n <= feature_nm)
        if x0 == x1:
            return table[x0]
    slope = (table[x1] - table[x0]) / (x1 - x0)
    return table[x0] + slope * (feature_nm - x0)


def cpa_estimate(feature_nm: float) -> GreenChipEstimate:
    """The baseline's carbon-per-area for a node (extrapolating if needed)."""
    require_positive("feature_nm", feature_nm)
    epa = _interp(_INVENTORY_EPA, feature_nm)
    gma = _interp(_INVENTORY_GMA, feature_nm)
    cpa = max(FAB_CI_G_PER_KWH * epa + gma, 0.0)
    return GreenChipEstimate(
        feature_nm=feature_nm,
        cpa_g_per_cm2=cpa,
        extrapolated=not supports(feature_nm),
    )


def die_embodied_g(area_cm2: float, feature_nm: float) -> float:
    """Embodied carbon of a die under the baseline model."""
    if area_cm2 < 0:
        raise ParameterError(f"area_cm2 must be >= 0, got {area_cm2}")
    return area_cm2 * cpa_estimate(feature_nm).cpa_g_per_cm2
