"""Monte Carlo uncertainty propagation through the ACT model.

The appendix publishes parameter *ranges*, not point values — fab carbon
intensity varies "by manufacturer, facility, and product line", abatement
bands span 95-99%, yields are proprietary.  This module samples the
scenario parameters from those ranges (independently, uniform or
triangular around the base value) and propagates them through Eq. 1-8,
yielding a footprint distribution instead of a single number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.analysis.scenario import PARAMETER_RANGES, ActScenario, parameter_range
from repro.core.errors import ParameterError
from repro.core.parameters import require_positive

Response = Callable[[ActScenario], float]

UNIFORM = "uniform"
TRIANGULAR = "triangular"


@dataclass(frozen=True)
class MonteCarloResult:
    """Summary of a footprint distribution.

    Attributes:
        samples: The raw per-draw responses (g CO2).
        base_response: The base scenario's deterministic response.
    """

    samples: np.ndarray
    base_response: float

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the distribution (0-100)."""
        return float(np.percentile(self.samples, q))

    @property
    def p5(self) -> float:
        return self.percentile(5.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def spread(self) -> float:
        """The 90% interval width relative to the mean."""
        if self.mean == 0:
            return 0.0
        return (self.p95 - self.p5) / self.mean


def _sample_parameter(
    rng: np.random.Generator,
    distribution: str,
    low: float,
    high: float,
    mode: float,
    count: int,
) -> np.ndarray:
    if distribution == UNIFORM:
        return rng.uniform(low, high, count)
    if distribution == TRIANGULAR:
        mode = min(max(mode, low), high)
        return rng.triangular(low, mode, high, count)
    raise ParameterError(
        f"unknown distribution {distribution!r}; use {UNIFORM!r} or {TRIANGULAR!r}"
    )


def _vectorized_totals(
    base: ActScenario, columns: Mapping[str, np.ndarray], draws: int
) -> np.ndarray:
    """Eq. 1-8 evaluated over whole sample columns at once.

    Pure ndarray arithmetic — identical math to ``ActScenario.total_g`` but
    ~100x faster for large draw counts.
    """

    def col(name: str) -> np.ndarray | float:
        return columns.get(name, getattr(base, name))

    cpa = (
        col("ci_fab_g_per_kwh") * col("epa_kwh_per_cm2")
        + col("gpa_g_per_cm2")
        + col("mpa_g_per_cm2")
    ) / col("fab_yield")
    embodied = (
        col("ic_count") * col("packaging_g_per_ic")
        + col("soc_area_cm2") * cpa
        + col("dram_gb") * col("cps_dram_g_per_gb")
        + col("ssd_gb") * col("cps_ssd_g_per_gb")
        + col("hdd_gb") * col("cps_hdd_g_per_gb")
    )
    operational = col("energy_kwh") * col("ci_use_g_per_kwh")
    total = operational + (col("duration_hours") / col("lifetime_hours")) * embodied
    return np.broadcast_to(total, (draws,)).astype(float, copy=True)


def run_monte_carlo(
    base: ActScenario,
    parameters: Iterable[str] | None = None,
    *,
    draws: int = 2000,
    seed: int = 2022,
    distribution: str = TRIANGULAR,
    ranges: Mapping[str, tuple[float, float]] | None = None,
    response: Response | None = None,
) -> MonteCarloResult:
    """Propagate parameter uncertainty through the ACT model.

    Args:
        base: Scenario providing the untouched parameters (and triangular
            modes).
        parameters: Which parameters vary (default: all with ranges).
        draws: Number of Monte Carlo samples.
        seed: RNG seed — results are reproducible by construction.
        distribution: ``"uniform"`` over the range, or ``"triangular"``
            peaked at the base value.
        ranges: Optional per-parameter (low, high) overrides.
        response: Scalar to record per draw.  When omitted, the total
            footprint is computed on a fully vectorized numpy path.
    """
    require_positive("draws", draws)
    names = tuple(parameters) if parameters is not None else tuple(PARAMETER_RANGES)
    rng = np.random.default_rng(seed)
    columns: dict[str, np.ndarray] = {}
    for name in names:
        low, high = (ranges or {}).get(name, parameter_range(name))
        if low > high:
            raise ParameterError(f"range for {name} is inverted: ({low}, {high})")
        columns[name] = _sample_parameter(
            rng, distribution, low, high, getattr(base, name), draws
        )
    # Lifetime must dominate duration; clip any violating draws.
    if "lifetime_hours" in columns or "duration_hours" in columns:
        duration = columns.get(
            "duration_hours", np.full(draws, base.duration_hours)
        )
        lifetime = columns.get(
            "lifetime_hours", np.full(draws, base.lifetime_hours)
        )
        lifetime = np.maximum(lifetime, duration)
        if "lifetime_hours" in columns:
            columns["lifetime_hours"] = lifetime

    if response is None:
        samples = _vectorized_totals(base, columns, draws)
        return MonteCarloResult(samples=samples, base_response=base.total_g())

    samples = np.empty(draws)
    for index in range(draws):
        overrides = {name: float(values[index]) for name, values in columns.items()}
        samples[index] = response(base.replace(**overrides))
    return MonteCarloResult(samples=samples, base_response=response(base))


def embodied_share_distribution(
    base: ActScenario, *, draws: int = 2000, seed: int = 2022
) -> MonteCarloResult:
    """Distribution of the embodied share of the total footprint.

    Quantifies how robust the paper's "manufacturing dominates" conclusion
    is to parameter uncertainty.
    """

    def share(scenario: ActScenario) -> float:
        total = scenario.total_g()
        if total == 0:
            return 0.0
        amortized = (
            scenario.duration_hours / scenario.lifetime_hours
        ) * scenario.embodied_g()
        return amortized / total

    return run_monte_carlo(base, draws=draws, seed=seed, response=share)
