"""Embodied carbon per GB for NAND-flash/SSD storage (ACT appendix Table 10).

The carbon-per-size (CPS) factors translate SSD capacity into embodied
emissions via Eq. 8.  Values are g CO2 per GB.  Rows are split between
device-level characterization (semiconductor vendors, Figure 7's black bars)
and component-level analyses (drive vendors, grey bars).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import UnknownEntryError
from repro.data.dram import COMPONENT_LEVEL, DEVICE_LEVEL
from repro.data.provenance import PAPER_TABLE, Source


@dataclass(frozen=True)
class SsdTechnology:
    """One row of Table 10.

    Attributes:
        name: Canonical identifier (e.g. ``"nand_10nm"``).
        label: Display name matching the paper's row label.
        cps_g_per_gb: Embodied carbon per GB of capacity.
        feature_nm: Approximate process feature size where stated.
        kind: Device-level vs component-level characterization.
        source: Provenance record.
    """

    name: str
    label: str
    cps_g_per_gb: float
    feature_nm: float | None
    kind: str
    source: Source


_TABLE10 = Source(
    PAPER_TABLE, "ACT Table 10 (SK hynix / Western Digital / Seagate reports)"
)

SSD_TECHNOLOGIES: dict[str, SsdTechnology] = {
    tech.name: tech
    for tech in (
        SsdTechnology("nand_30nm", "30nm NAND", 30.0, 30.0, DEVICE_LEVEL, _TABLE10),
        SsdTechnology("nand_20nm", "20nm NAND", 15.0, 20.0, DEVICE_LEVEL, _TABLE10),
        SsdTechnology("nand_10nm", "10nm NAND", 10.0, 10.0, DEVICE_LEVEL, _TABLE10),
        SsdTechnology("nand_1z_tlc", "1z NAND TLC", 5.6, 15.0, DEVICE_LEVEL, _TABLE10),
        SsdTechnology("nand_v3_tlc", "V3 NAND TLC", 6.3, None, DEVICE_LEVEL, _TABLE10),
        SsdTechnology(
            "wd_2016", "Western Digital 2016", 24.4, None, COMPONENT_LEVEL, _TABLE10
        ),
        SsdTechnology(
            "wd_2017", "Western Digital 2017", 17.9, None, COMPONENT_LEVEL, _TABLE10
        ),
        SsdTechnology(
            "wd_2018", "Western Digital 2018", 12.5, None, COMPONENT_LEVEL, _TABLE10
        ),
        SsdTechnology(
            "wd_2019", "Western Digital 2019", 10.7, None, COMPONENT_LEVEL, _TABLE10
        ),
        SsdTechnology(
            "nytro_1551", "Seagate Nytro 1551", 3.95, None, COMPONENT_LEVEL, _TABLE10
        ),
        SsdTechnology(
            "nytro_3530", "Seagate Nytro 3530", 6.21, None, COMPONENT_LEVEL, _TABLE10
        ),
        SsdTechnology(
            "nytro_3331", "Seagate Nytro 3331", 16.92, None, COMPONENT_LEVEL, _TABLE10
        ),
    )
}

_ALIASES = {
    "v3_tlc": "nand_v3_tlc",
    "v3": "nand_v3_tlc",
    "1z": "nand_1z_tlc",
    "1z_tlc": "nand_1z_tlc",
    "nand": "nand_10nm",
}


def ssd_technology(name: str) -> SsdTechnology:
    """Look up an SSD technology by name (case-insensitive, with aliases)."""
    key = name.strip().lower().replace("-", "_").replace(" ", "_")
    key = _ALIASES.get(key, key)
    try:
        return SSD_TECHNOLOGIES[key]
    except KeyError:
        raise UnknownEntryError("SSD technology", name, SSD_TECHNOLOGIES) from None


def ssd_cps(name: str) -> float:
    """Carbon-per-size (g CO2/GB) for a named SSD technology."""
    return ssd_technology(name).cps_g_per_gb
