"""Constraint-driven design selection (the Reduce case study's workhorse).

Figure 13 frames sustainable accelerator design as constrained
minimization: pick the design minimizing an objective (usually embodied
carbon) subject to a QoS floor (throughput ≥ target) or a resource ceiling
(area ≤ budget).  These helpers make that pattern explicit and reusable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Sequence, TypeVar

from repro.core.errors import ConstraintError

D = TypeVar("D")


@dataclass(frozen=True)
class Constraint(Generic[D]):
    """A named feasibility predicate over designs."""

    name: str
    predicate: Callable[[D], bool]

    def satisfied_by(self, design: D) -> bool:
        return self.predicate(design)


def at_least(name: str, value: Callable[[D], float], floor: float) -> Constraint[D]:
    """Constraint: ``value(design) >= floor`` (e.g. throughput ≥ 30 FPS)."""
    return Constraint(
        name=f"{name} >= {floor}", predicate=lambda d: value(d) >= floor
    )


def at_most(name: str, value: Callable[[D], float], ceiling: float) -> Constraint[D]:
    """Constraint: ``value(design) <= ceiling`` (e.g. area ≤ 1 mm^2)."""
    return Constraint(
        name=f"{name} <= {ceiling}", predicate=lambda d: value(d) <= ceiling
    )


def constrained_minimum(
    designs: Sequence[D],
    objective: Callable[[D], float],
    constraints: Sequence[Constraint[D]] = (),
) -> D:
    """The feasible design minimizing ``objective``.

    Raises:
        ConstraintError: If no design satisfies every constraint; the error
            names the constraints for diagnosis.
    """
    feasible = [
        design
        for design in designs
        if all(constraint.satisfied_by(design) for constraint in constraints)
    ]
    if not feasible:
        names = ", ".join(constraint.name for constraint in constraints)
        raise ConstraintError(
            f"no design among {len(designs)} satisfies: {names or '(none)'}"
        )
    return min(feasible, key=objective)
