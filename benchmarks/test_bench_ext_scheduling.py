"""Benchmark: regenerate Extension: carbon-aware scheduling on diurnal grids."""

from repro.experiments import EXTENSION_EXPERIMENTS


def test_bench_ext_scheduling(benchmark):
    """Extension: carbon-aware scheduling on diurnal grids — regenerate, print, and verify."""
    result = benchmark(EXTENSION_EXPERIMENTS["ext-scheduling"])
    print()
    print(result.render_text())
    failed = result.failed_checks()
    assert not failed, [c.name for c in failed]
