"""Table 5: carbon efficiency of energy sources."""

from __future__ import annotations

from repro.data.energy_sources import ENERGY_SOURCES, blended_ci
from repro.experiments.base import (
    ExperimentResult,
    check_close,
    check_true,
)

EXPERIMENT_ID = "tab5"
TITLE = "Carbon intensity of energy sources (coal ... wind)"

#: The paper's Table 5 values, verbatim.
PAPER_VALUES = {
    "coal": 820.0,
    "gas": 490.0,
    "biomass": 230.0,
    "solar": 41.0,
    "geothermal": 38.0,
    "hydropower": 24.0,
    "nuclear": 12.0,
    "wind": 11.0,
}


def run() -> ExperimentResult:
    """Regenerate Table 5 and check every row verbatim."""
    rows = tuple(
        (source.name, source.ci_g_per_kwh, source.payback_months)
        for source in ENERGY_SOURCES.values()
    )
    checks = [
        check_close(
            f"{name} carbon intensity (g CO2/kWh)",
            ENERGY_SOURCES[name].ci_g_per_kwh,
            expected,
            rel_tol=1e-9,
        )
        for name, expected in PAPER_VALUES.items()
    ]
    ordered = sorted(PAPER_VALUES, key=PAPER_VALUES.get, reverse=True)
    checks.append(
        check_true(
            "fossil sources dominate renewables",
            ordered[:2] == ["coal", "gas"] and ordered[-1] == "wind",
            " > ".join(ordered),
            "coal > gas > ... > wind",
        )
    )
    checks.append(
        check_close(
            "a 50/50 coal/wind blend averages the two",
            blended_ci({"coal": 0.5, "wind": 0.5}),
            (820.0 + 11.0) / 2.0,
            rel_tol=1e-9,
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=("source", "g CO2/kWh", "payback (months)"),
        table_rows=rows,
        reference={"paper": PAPER_VALUES},
        checks=tuple(checks),
    )
