"""Prior-work baseline models (Section 2.3's comparison targets)."""

from repro.baselines import exergy, greenchip
from repro.baselines.comparison import (
    BlindSpotResult,
    NodeComparison,
    exergy_blind_spot,
    greenchip_vs_act,
)

__all__ = [
    "BlindSpotResult",
    "NodeComparison",
    "exergy",
    "exergy_blind_spot",
    "greenchip",
    "greenchip_vs_act",
]
