"""Fab electricity-supply scenarios.

Figure 6 of the paper brackets the logic CPA curve with three fab power
scenarios: the average Taiwan grid (upper bound), a fab procuring 25%
renewable energy on top of the Taiwan grid (the paper's default, per TSMC CSR
reports), and a 100% solar-powered fab (lower bound).  Section 6 additionally
sweeps coal and carbon-free supplies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import UnknownEntryError
from repro.core.parameters import require_fraction
from repro.data.energy_sources import CARBON_FREE_CI, source_ci
from repro.data.regions import region_ci


@dataclass(frozen=True)
class EnergyMix:
    """A named fab electricity supply with its carbon intensity.

    Attributes:
        name: Scenario identifier.
        ci_g_per_kwh: Effective carbon intensity of fab electricity.
        description: Human-readable description for reports.
    """

    name: str
    ci_g_per_kwh: float
    description: str


def grid_with_renewables(
    grid_ci: float, renewable_share: float, renewable_ci: float | None = None
) -> float:
    """Carbon intensity of a grid supply displaced by renewable procurement.

    Args:
        grid_ci: Baseline grid carbon intensity (g CO2/kWh).
        renewable_share: Fraction of demand met by procured renewables.
        renewable_ci: Carbon intensity of the procured renewables; defaults
            to utility solar (Table 5).
    """
    require_fraction("renewable_share", renewable_share, allow_zero=True)
    if renewable_ci is None:
        renewable_ci = source_ci("solar")
    return grid_ci * (1.0 - renewable_share) + renewable_ci * renewable_share


def _build_mixes() -> dict[str, EnergyMix]:
    taiwan = region_ci("taiwan")
    mixes = (
        EnergyMix("coal", source_ci("coal"), "fully coal-powered fab"),
        EnergyMix("taiwan_grid", taiwan, "average Taiwan power grid"),
        EnergyMix(
            "taiwan_25_renewable",
            grid_with_renewables(taiwan, 0.25),
            "Taiwan grid with 25% renewable procurement (ACT default, "
            "per TSMC CSR reports)",
        ),
        EnergyMix("solar", source_ci("solar"), "100% solar-powered fab"),
        EnergyMix("renewable", source_ci("solar"), "renewable-powered fab"),
        EnergyMix("carbon_free", CARBON_FREE_CI, "idealized zero-carbon fab"),
    )
    return {mix.name: mix for mix in mixes}


FAB_ENERGY_MIXES: dict[str, EnergyMix] = _build_mixes()

#: The paper's default fab supply (solid line of Figure 6, bottom).
DEFAULT_FAB_MIX = FAB_ENERGY_MIXES["taiwan_25_renewable"]


def fab_energy_mix(name: str) -> EnergyMix:
    """Look up a fab electricity scenario by name."""
    key = name.strip().lower().replace("-", "_").replace(" ", "_")
    try:
        return FAB_ENERGY_MIXES[key]
    except KeyError:
        raise UnknownEntryError(
            "fab energy mix", name, FAB_ENERGY_MIXES
        ) from None
