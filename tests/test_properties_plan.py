"""Property tests: the planner is bit-identical to the dense batched path.

Two families of properties:

* **Factored == dense** — for *random* grids (random swept-field subsets,
  random axis lengths including degenerate singletons, random finite
  values in each field's domain), the planned evaluation equals the
  dense ``ScenarioBatch.from_product`` pass exactly — ``==`` per element
  on every output series, on the reference and fused backends.  This is
  the load-bearing claim behind every planner integration: broadcasting
  the Eq. 1-8 DAG over axis-shaped marginal factors performs the same
  IEEE operations on the same operand values as the row-wise pass.
* **Gather–scatter is the identity** — unique-row deduplication over
  random duplicated batches reconstructs every column (and any
  per-row ``valid`` flags) in the original row order, and the deduped
  kernel result equals the plain one bitwise.
* **Incremental dominance == fresh dominance** — updating per-row
  dominator counts from an arbitrary changed-row subset equals a fresh
  :func:`~repro.dse.pareto.dominance_counts` over the new matrix (and
  ``counts == 0`` equals :func:`~repro.dse.pareto.pareto_mask`), for
  random matrices, subsets, and perturbations including exact
  duplicates and unchanged "changed" rows.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scenario import ActScenario
from repro.dse.pareto import (
    dominance_counts,
    pareto_mask,
    update_dominance_counts,
)
from repro.engine import (
    FUSED,
    REFERENCE,
    EvaluationCache,
    ScenarioBatch,
    evaluate_batch,
)
from repro.engine.batch import FIELD_NAMES, prevalidated_batch
from repro.engine.plan import (
    SERIES_NAMES,
    dedup_rows,
    evaluate_batch_deduped,
    plan_product,
)

BASE = ActScenario()

#: Fields swept by the random grids.  ``fab_yield`` is the only
#: fraction-constrained field; every other entry only needs to be a
#: positive finite float.  ``lifetime_hours`` is excluded so the random
#: sweeps cannot violate the duration <= lifetime coupling.
_SWEEPABLE = (
    "energy_kwh",
    "ci_use_g_per_kwh",
    "soc_area_cm2",
    "ci_fab_g_per_kwh",
    "epa_kwh_per_cm2",
    "fab_yield",
    "dram_gb",
    "ssd_gb",
    "hdd_gb",
    "ic_count",
    "packaging_g_per_ic",
)

_positive = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
_fraction = st.floats(
    min_value=1e-3, max_value=1.0, allow_nan=False, allow_infinity=False
)


def _axis(name):
    values = _fraction if name == "fab_yield" else _positive
    return st.lists(values, min_size=1, max_size=5, unique=True)


@st.composite
def random_grids(draw):
    names = draw(
        st.lists(
            st.sampled_from(_SWEEPABLE), min_size=1, max_size=4, unique=True
        )
    )
    return {name: tuple(draw(_axis(name))) for name in names}


@st.composite
def duplicated_rows(draw):
    """A row-index sequence with guaranteed repeats over a small pool."""
    pool = draw(st.integers(min_value=1, max_value=6))
    order = draw(
        st.lists(
            st.integers(min_value=0, max_value=pool - 1),
            min_size=pool,
            max_size=40,
        )
    )
    return pool, np.asarray(order, dtype=np.intp)


class TestPlannedEqualsDense:
    @settings(max_examples=60, deadline=None)
    @given(grids=random_grids())
    def test_planned_bit_identical_on_reference(self, grids):
        plan = plan_product(BASE, grids)
        dense = evaluate_batch(
            ScenarioBatch.from_product(BASE, grids), backend=REFERENCE
        )
        planned = plan.evaluate(REFERENCE)
        for name in SERIES_NAMES:
            left, right = getattr(dense, name), getattr(planned, name)
            assert left.dtype == right.dtype
            np.testing.assert_array_equal(left, right, err_msg=name)

    @settings(max_examples=25, deadline=None)
    @given(grids=random_grids())
    def test_planned_bit_identical_on_fused(self, grids):
        plan = plan_product(BASE, grids)
        dense = evaluate_batch(
            ScenarioBatch.from_product(BASE, grids), backend=FUSED
        )
        planned = plan.evaluate(FUSED)
        for name in SERIES_NAMES:
            np.testing.assert_array_equal(
                getattr(dense, name), getattr(planned, name), err_msg=name
            )

    @settings(max_examples=25, deadline=None)
    @given(grids=random_grids())
    def test_view_batch_matches_dense_batch(self, grids):
        plan = plan_product(BASE, grids)
        dense = ScenarioBatch.from_product(BASE, grids)
        batch = plan.batch()
        for name in FIELD_NAMES:
            np.testing.assert_array_equal(
                batch.column(name), dense.column(name), err_msg=name
            )

    @settings(max_examples=25, deadline=None)
    @given(grids=random_grids(), data=st.data())
    def test_gathered_slice_matches_dense_rows(self, grids, data):
        plan = plan_product(BASE, grids)
        start = data.draw(st.integers(min_value=0, max_value=plan.size))
        stop = data.draw(st.integers(min_value=start, max_value=plan.size))
        factors = plan.partial_series()
        rows = plan.gather_rows(factors, start, stop)
        dense = evaluate_batch(ScenarioBatch.from_product(BASE, grids))
        for name in SERIES_NAMES:
            np.testing.assert_array_equal(
                rows[name], getattr(dense, name)[start:stop], err_msg=name
            )


class TestDedupGatherScatter:
    @settings(max_examples=40, deadline=None)
    @given(spec=duplicated_rows())
    def test_gather_scatter_is_identity_and_result_bitwise(self, spec):
        pool, order = spec
        rng = np.random.default_rng(pool)
        distinct = {
            name: np.ascontiguousarray(
                getattr(BASE, name) * rng.uniform(0.5, 1.5, pool)
            )
            for name in FIELD_NAMES
        }
        columns = {name: distinct[name][order] for name in FIELD_NAMES}
        dedup = dedup_rows(columns)
        assert dedup.rows == len(order)
        assert dedup.unique_count == len(
            {tuple(float(columns[n][i]) for n in FIELD_NAMES)
             for i in range(len(order))}
        )
        for name in FIELD_NAMES:
            np.testing.assert_array_equal(
                dedup.scatter(dedup.gather(columns[name])),
                columns[name],
                err_msg=name,
            )
        valid = rng.random(dedup.unique_count) < 0.7
        np.testing.assert_array_equal(
            dedup.scatter(valid), valid[dedup.inverse]
        )
        batch = prevalidated_batch(columns)
        expected = evaluate_batch(batch)
        deduped = evaluate_batch_deduped(batch, EvaluationCache())
        for name in SERIES_NAMES:
            np.testing.assert_array_equal(
                getattr(expected, name), getattr(deduped, name), err_msg=name
            )


@st.composite
def dominance_updates(draw):
    """An (old, new, changed) triple with arbitrary overlap structure.

    Objective values draw from a tiny pool so exact duplicates and ties
    are common — the regime where dominance bookkeeping is easiest to
    get wrong.  ``changed`` may repeat rows and may name rows whose
    values did not actually move; both must be harmless.
    """
    n = draw(st.integers(min_value=1, max_value=12))
    m = draw(st.integers(min_value=1, max_value=3))
    value = st.sampled_from((0.0, 1.0, 2.0, 3.0))
    row = st.lists(value, min_size=m, max_size=m)
    old = np.asarray(
        draw(st.lists(row, min_size=n, max_size=n)), dtype=np.float64
    )
    changed = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=0, max_size=n
        )
    )
    new = old.copy()
    for index in set(changed):
        new[index] = draw(row)
    return old, new, np.asarray(changed, dtype=np.intp)


class TestIncrementalDominance:
    @settings(max_examples=200, deadline=None)
    @given(spec=dominance_updates())
    def test_update_equals_fresh_counts_and_mask(self, spec):
        old, new, changed = spec
        counts = dominance_counts(old)
        updated = update_dominance_counts(old, counts, new, changed)
        np.testing.assert_array_equal(updated, dominance_counts(new))
        np.testing.assert_array_equal(updated == 0, pareto_mask(new))
