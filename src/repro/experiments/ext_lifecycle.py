"""Extension experiment: the four-phase life cycle, derived bottom-up.

Figure 1 reads its phase shares off published product reports; this
experiment derives them instead — manufacturing from the Figure 4 bill of
ICs, use from a behavioural usage profile, transport from a freight route,
EOL from processing-minus-recovery — and checks the derived split lands in
the published neighbourhood.
"""

from __future__ import annotations

from repro.core.lifecycle import device_lifecycle
from repro.data.devices import device_report, iphone11_platform
from repro.data.regions import region_ci
from repro.experiments.base import (
    ExperimentResult,
    check_in_band,
    check_true,
)
from repro.reporting.figures import FigureData, Series
from repro.workloads.usage import typical_smartphone_profile

EXPERIMENT_ID = "ext-lifecycle"
TITLE = "Extension: Figure 3's four phases derived bottom-up (iPhone-11 class)"


def run() -> ExperimentResult:
    """Assemble and check the derived life-cycle split."""
    profile = typical_smartphone_profile()
    report = device_lifecycle(
        iphone11_platform(),
        mass_kg=0.5,
        average_power_w=profile.average_active_power_w(),
        utilization=profile.utilization,
        ci_use_g_per_kwh=region_ci("united_states"),
        lifetime_years=3.0,
        charging_efficiency=profile.charging_efficiency,
    )
    published = device_report("iphone11")
    shares = report.shares()

    figure = FigureData(
        title="Derived vs published life-cycle shares",
        x_label="phase",
        y_label="share of total",
        series=(
            Series(
                "derived (bottom-up)",
                ("manufacturing", "transport", "use", "eol"),
                (shares["manufacturing"], shares["transport"],
                 shares["use"], shares["eol"]),
            ),
            Series(
                "published report",
                ("manufacturing", "transport", "use", "eol"),
                (published.manufacturing_share, published.transport_share,
                 published.use_share, published.eol_share),
            ),
        ),
    )

    checks = (
        check_true(
            "manufacturing dominates the derived split",
            report.manufacturing_dominated,
            f"manufacturing {shares['manufacturing']:.0%} vs use "
            f"{shares['use']:.0%}",
            "manufacturing > use (the Figure 1 shift)",
        ),
        check_in_band(
            "derived manufacturing share",
            shares["manufacturing"], 0.60, 0.90, paper="79% (report)",
        ),
        check_in_band(
            "derived use share", shares["use"], 0.05, 0.30, paper="17% (report)",
        ),
        check_in_band(
            "derived transport share",
            shares["transport"], 0.0, 0.20, paper="~3% (report)",
        ),
        check_true(
            "EOL is a rounding-level term",
            abs(shares["eol"]) < 0.05,
            f"{shares['eol']:.1%}",
            "|share| < 5%",
        ),
        check_in_band(
            "derived total (ICs + transport + use + EOL), kg",
            report.total_kg, 18.0, 30.0,
            paper="23 kg of the report's total is ICs",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=(figure,),
        reference={
            "published shares": "79% manufacturing / 17% use / 4% rest "
            "(manufacturing here covers ICs only, so derived shares are "
            "relative to the IC-centric total)",
        },
        checks=checks,
    )
