"""SSD write-amplification as a function of over-provisioning.

Flash cannot overwrite in place: garbage collection relocates live pages,
multiplying physical writes relative to host writes.  Under the standard
greedy-GC / uniform-random-write approximation, the write-amplification
factor (WA) for an over-provisioning factor ``OP`` (spare capacity as a
fraction of user capacity) is::

    WA(OP) = (1 + OP) / (2 * OP)

This reproduces the Figure 15 (top) shape: WA falls steeply as spare area
grows (13x at the 4% baseline, ~3.6x at 16%, ~2x at 34%), which is what lets
over-provisioning extend device lifetime.
"""

from __future__ import annotations

from repro.core.parameters import require_positive


def write_amplification(over_provisioning: float) -> float:
    """Write-amplification factor for a given over-provisioning factor.

    Args:
        over_provisioning: Spare capacity as a fraction of user capacity
            (e.g. 0.16 for 16%).  Must be positive — with zero spare area
            garbage collection cannot make forward progress.

    Returns:
        The WA factor, clamped to be at least 1 (each host write costs at
        least one physical write).
    """
    require_positive("over_provisioning", over_provisioning)
    return max(1.0, (1.0 + over_provisioning) / (2.0 * over_provisioning))
