"""Benchmark: regenerate Extension: carbon-optimal DVFS (Reduce lever)."""

from repro.experiments import EXTENSION_EXPERIMENTS


def test_bench_ext_dvfs(benchmark):
    """Extension: carbon-optimal DVFS (Reduce lever) — regenerate, print, and verify."""
    result = benchmark(EXTENSION_EXPERIMENTS["ext-dvfs"])
    print()
    print(result.render_text())
    failed = result.failed_checks()
    assert not failed, [c.name for c in failed]
