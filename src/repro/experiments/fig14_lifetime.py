"""Figure 14: extending mobile lifetimes to balance life-cycle emissions.

Left: per-family annual energy-efficiency improvement regressed from the
SoC catalog, geomean ~1.21x.  Right: annual embodied vs operational
footprint as the replacement lifetime sweeps 1-10 years; the optimum lands
near 5 years, ~1.26x below today's 2-3 year replacement cadence.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    check_close,
    check_equal,
    check_true,
)
from repro.lifetime.fleet import (
    extension_saving,
    lifetime_sweep,
    mobile_scenario,
    optimal_lifetime,
)
from repro.platforms.mobile import annual_efficiency_improvement
from repro.reporting.figures import FigureData, Series

EXPERIMENT_ID = "fig14"
TITLE = "Extending mobile lifetimes: efficiency scaling vs embodied amortization"


def run() -> ExperimentResult:
    """Regenerate Figure 14 and check the 1.21x / 5-year / 1.26x anchors."""
    trends = annual_efficiency_improvement()
    scenario = mobile_scenario()
    points = lifetime_sweep(scenario)

    left = FigureData(
        title="Figure 14 (left): annual energy-efficiency improvement",
        x_label="SoC family",
        y_label="x per year",
        series=(
            Series(
                "annual improvement",
                tuple(trends),
                tuple(trends.values()),
            ),
        ),
    )
    lifetimes = tuple(point.lifetime_years for point in points)
    right = FigureData(
        title="Figure 14 (right): annual footprint vs replacement lifetime",
        x_label="lifetime (years)",
        y_label="kg CO2 / year",
        series=(
            Series("embodied", lifetimes,
                   tuple(p.embodied_kg_per_year for p in points)),
            Series("operational", lifetimes,
                   tuple(p.operational_kg_per_year for p in points)),
            Series("total", lifetimes,
                   tuple(p.total_kg_per_year for p in points)),
        ),
    )

    optimum = optimal_lifetime(scenario)
    saving = extension_saving(scenario)
    embodied_falls = all(
        a.embodied_kg_per_year > b.embodied_kg_per_year
        for a, b in zip(points, points[1:])
    )
    operational_rises = all(
        a.operational_kg_per_year < b.operational_kg_per_year
        for a, b in zip(points, points[1:])
    )

    checks = (
        check_close(
            "geomean annual efficiency improvement",
            trends["geomean"], 1.21, rel_tol=0.02,
        ),
        check_equal("optimal lifetime (years)", optimum.lifetime_years, 5),
        check_close(
            "footprint reduction vs 2-3 year lifetimes", saving, 1.26,
            rel_tol=0.03,
        ),
        check_true(
            "embodied per year falls monotonically with lifetime",
            embodied_falls, "monotone" if embodied_falls else "non-monotone",
            "falling (fewer devices manufactured)",
        ),
        check_true(
            "operational per year rises monotonically with lifetime",
            operational_rises,
            "monotone" if operational_rises else "non-monotone",
            "rising (older, less efficient hardware stays in service)",
        ),
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=(left, right),
        reference={
            "efficiency": "1.21x per year (geomean across families)",
            "optimum": "~5 years, 1.26x below current 2-3 year lifetimes",
        },
        checks=checks,
    )
