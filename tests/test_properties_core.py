"""Property-based tests (hypothesis) for the core carbon model."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import units
from repro.core.components import DramComponent, LogicComponent, SsdComponent
from repro.core.metrics import DesignPoint, best_design, winners
from repro.core.model import Platform, footprint
from repro.core.operational import operational_footprint_g
from repro.core.parameters import FabParams
from repro.fabs.fab import FabScenario
from repro.fabs.yield_models import FixedYield

finite_positive = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)
finite_non_negative = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
fractions = st.floats(min_value=0.01, max_value=1.0)
nodes = st.sampled_from(["28", "20", "14", "10", "7", "7-euv", "5", "3"])


class TestEq5Properties:
    @given(
        ci=finite_non_negative, epa=finite_non_negative,
        gpa=finite_non_negative, mpa=finite_non_negative, y=fractions,
    )
    def test_cpa_non_negative(self, ci, epa, gpa, mpa, y):
        params = FabParams(ci, epa, gpa, mpa, y)
        assert params.cpa_g_per_cm2() >= 0.0

    @given(
        ci=finite_non_negative, epa=finite_non_negative,
        gpa=finite_non_negative, mpa=finite_non_negative,
        y1=fractions, y2=fractions,
    )
    def test_cpa_anti_monotone_in_yield(self, ci, epa, gpa, mpa, y1, y2):
        low, high = sorted((y1, y2))
        cpa_low = FabParams(ci, epa, gpa, mpa, low).cpa_g_per_cm2()
        cpa_high = FabParams(ci, epa, gpa, mpa, high).cpa_g_per_cm2()
        assert cpa_low >= cpa_high

    @given(
        ci=finite_non_negative, epa=finite_non_negative,
        gpa=finite_non_negative, mpa=finite_non_negative, y=fractions,
        scale=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_cpa_monotone_in_ci(self, ci, epa, gpa, mpa, y, scale):
        base = FabParams(ci, epa, gpa, mpa, y).cpa_g_per_cm2()
        scaled = FabParams(ci * scale, epa, gpa, mpa, y).cpa_g_per_cm2()
        assert scaled >= base


class TestComponentProperties:
    @given(area=st.floats(min_value=0.1, max_value=1000.0), node=nodes)
    def test_logic_embodied_positive(self, area, node):
        die = LogicComponent.at_node("x", area, node)
        assert die.embodied_g() > 0.0

    @given(
        area=st.floats(min_value=0.1, max_value=500.0),
        scale=st.floats(min_value=1.0, max_value=10.0),
        node=nodes,
    )
    def test_logic_embodied_linear_in_area_fixed_yield(self, area, scale, node):
        fab = FabScenario.for_node(node, yield_model=FixedYield(0.9))
        small = LogicComponent("a", area, fab).embodied_g()
        large = LogicComponent("b", area * scale, fab).embodied_g()
        assert math.isclose(large, small * scale, rel_tol=1e-9)

    @given(capacity=finite_non_negative)
    def test_dram_embodied_proportional(self, capacity):
        dram = DramComponent.of("d", capacity, "lpddr4")
        assert math.isclose(dram.embodied_g(), capacity * 48.0, rel_tol=1e-12)

    @given(
        c1=finite_non_negative, c2=finite_non_negative,
        tech=st.sampled_from(["nand_30nm", "nand_20nm", "nand_10nm",
                              "nand_v3_tlc"]),
    )
    def test_ssd_embodied_additive_in_capacity(self, c1, c2, tech):
        total = SsdComponent.of("a", c1 + c2, tech).embodied_g()
        split = (
            SsdComponent.of("b", c1, tech).embodied_g()
            + SsdComponent.of("c", c2, tech).embodied_g()
        )
        assert math.isclose(total, split, rel_tol=1e-9, abs_tol=1e-9)


class TestPlatformProperties:
    @given(
        capacities=st.lists(
            st.floats(min_value=0.0, max_value=1024.0), min_size=0, max_size=6
        )
    )
    def test_platform_total_equals_item_sum(self, capacities):
        components = tuple(
            DramComponent.of(f"d{i}", c) for i, c in enumerate(capacities)
        )
        platform = Platform("p", components)
        report = platform.embodied()
        manual = sum(item.carbon_g for item in report.items) + report.packaging_g
        assert math.isclose(report.total_g, manual, rel_tol=1e-12, abs_tol=1e-9)
        assert report.ic_count == len(capacities)

    @given(
        energy=finite_non_negative,
        ci=st.floats(min_value=0.0, max_value=1000.0),
    )
    def test_operational_bilinear(self, energy, ci):
        base = operational_footprint_g(energy, ci)
        assert math.isclose(
            operational_footprint_g(2 * energy, ci), 2 * base,
            rel_tol=1e-12, abs_tol=1e-300,
        )
        assert math.isclose(
            operational_footprint_g(energy, 2 * ci), 2 * base,
            rel_tol=1e-12, abs_tol=1e-300,
        )

    @given(
        duration_years=st.floats(min_value=0.0, max_value=3.0),
        lifetime_years=st.floats(min_value=3.0, max_value=10.0),
        energy=st.floats(min_value=0.0, max_value=100.0),
        ci=st.floats(min_value=0.0, max_value=900.0),
    )
    @settings(max_examples=50)
    def test_eq1_decomposition(self, duration_years, lifetime_years, energy, ci):
        platform = Platform("p", (DramComponent.of("d", 8),))
        report = footprint(
            platform,
            energy_kwh=energy,
            ci_use_g_per_kwh=ci,
            duration_hours=units.years_to_hours(duration_years),
            lifetime_years=lifetime_years,
        )
        expected = energy * ci + (
            duration_years / lifetime_years
        ) * platform.embodied_g()
        assert math.isclose(report.total_g, expected, rel_tol=1e-9, abs_tol=1e-9)
        assert 0.0 <= report.lifetime_fraction <= 1.0


class TestMetricProperties:
    points_strategy = st.lists(
        st.builds(
            DesignPoint,
            name=st.uuids().map(str),
            embodied_carbon_g=finite_positive,
            energy_kwh=finite_positive,
            delay_s=finite_positive,
            area_mm2=finite_positive,
        ),
        min_size=1,
        max_size=8,
        unique_by=lambda p: p.name,
    )

    @given(points=points_strategy, scale=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=50)
    def test_winners_invariant_under_delay_scaling(self, points, scale):
        # Scaling every delay by a positive constant scales every metric by
        # a positive constant, so each unscaled winner must remain optimal
        # in the scaled space (up to exact-tie reshuffling).
        from repro.core.metrics import metric as metric_fn

        scaled = {
            p.name: DesignPoint(p.name, p.embodied_carbon_g, p.energy_kwh,
                                p.delay_s * scale, p.area_mm2)
            for p in points
        }
        for name, winner in winners(points).items():
            fn = metric_fn(name)
            winner_score = fn(scaled[winner])
            best_score = min(fn(p) for p in scaled.values())
            assert winner_score <= best_score * (1 + 1e-9)

    @given(points=points_strategy)
    @settings(max_examples=50)
    def test_best_design_is_argmin(self, points):
        from repro.core.metrics import cep

        best = best_design(points, "CEP")
        assert all(cep(best) <= cep(p) for p in points)

    @given(
        c=finite_positive, e=finite_positive, d=finite_positive,
    )
    def test_metric_family_relations(self, c, e, d):
        from repro.core.metrics import c2ep, cdp, ce2p, cep

        point = DesignPoint("x", c, e, d)
        assert math.isclose(c2ep(point), cep(point) * c, rel_tol=1e-9)
        assert math.isclose(ce2p(point), cep(point) * e, rel_tol=1e-9)
        assert math.isclose(cdp(point), c * d, rel_tol=1e-9)
