"""NVDLA-style NPU models: area, performance, energy, and the design sweep."""

import pytest

from repro.accelerators.area_model import (
    AREA_PER_MAC_MM2_16NM,
    area_per_mac_mm2,
    npu_area_mm2,
)
from repro.accelerators.energy_model import (
    REFERENCE_ENERGY_J,
    REFERENCE_MACS,
    average_power_w,
    energy_per_inference_j,
    relative_energy,
)
from repro.accelerators.nvdla import (
    MAC_SWEEP,
    QOS_TARGET_FPS,
    design,
    largest_within_area,
    npu_platform,
    qos_minimal_design,
    sweep,
)
from repro.accelerators.perf_model import (
    compute_latency_s,
    latency_s,
    meets_qos,
    throughput_fps,
)
from repro.core.errors import ParameterError


class TestAreaModel:
    def test_area_linear_in_macs(self):
        assert npu_area_mm2(2048, 16) == pytest.approx(8 * npu_area_mm2(256, 16))

    def test_reference_density(self):
        assert area_per_mac_mm2(16) == pytest.approx(AREA_PER_MAC_MM2_16NM)

    def test_node_scaling_quadratic(self):
        # 28nm density is (28/16)^2 worse.
        assert area_per_mac_mm2("28") == pytest.approx(
            AREA_PER_MAC_MM2_16NM * (28 / 16) ** 2
        )

    def test_full_nvdla_near_3mm2(self):
        # The published full configuration (2048 MACs, 16nm) is ~3.3 mm^2.
        assert 2.5 < npu_area_mm2(2048, 16) < 3.5

    def test_zero_macs_rejected(self):
        with pytest.raises(ParameterError):
            npu_area_mm2(0, 16)


class TestPerfModel:
    def test_throughput_linear(self):
        assert throughput_fps(2048) == pytest.approx(8 * throughput_fps(256))

    def test_qos_boundary(self):
        assert meets_qos(256, QOS_TARGET_FPS)
        assert not meets_qos(128, QOS_TARGET_FPS)

    def test_latency_has_fixed_floor(self):
        # Latency saturates: doubling MACs does not halve latency.
        assert latency_s(2048) > latency_s(1024) / 2

    def test_compute_latency_halves(self):
        assert compute_latency_s(1024) == pytest.approx(2 * compute_latency_s(2048))

    def test_latency_monotone_decreasing(self):
        latencies = [latency_s(n) for n in MAC_SWEEP]
        assert latencies == sorted(latencies, reverse=True)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            throughput_fps(0)
        with pytest.raises(ParameterError):
            meets_qos(256, 0.0)


class TestEnergyModel:
    def test_reference_point(self):
        assert relative_energy(REFERENCE_MACS) == pytest.approx(
            1.0, rel=0.06
        )
        assert energy_per_inference_j(REFERENCE_MACS) == pytest.approx(
            REFERENCE_ENERGY_J, rel=0.06
        )

    def test_discrete_minimum_at_512(self):
        energies = {n: energy_per_inference_j(n) for n in MAC_SWEEP}
        assert min(energies, key=energies.get) == 512

    def test_u_shape(self):
        assert energy_per_inference_j(64) > energy_per_inference_j(512)
        assert energy_per_inference_j(2048) > energy_per_inference_j(512)

    def test_average_power(self):
        assert average_power_w(512, 10.0) == pytest.approx(
            energy_per_inference_j(512) * 10.0
        )

    def test_invalid_macs(self):
        with pytest.raises(ParameterError):
            relative_energy(0)


class TestNpuDesigns:
    def test_sweep_covers_paper_grid(self):
        assert tuple(d.n_macs for d in sweep()) == (64, 128, 256, 512, 1024, 2048)

    def test_qos_minimal_is_256_at_16g(self):
        best = qos_minimal_design()
        assert best.n_macs == 256
        assert best.embodied_g == pytest.approx(16.0, rel=0.05)

    def test_perf_opt_embodied_ratio(self):
        designs = sweep()
        best = qos_minimal_design()
        perf = max(designs, key=lambda d: d.throughput_fps)
        assert perf.embodied_g / best.embodied_g == pytest.approx(3.3, rel=0.05)

    def test_platform_excludes_packaging(self):
        platform = npu_platform(256)
        assert platform.embodied().packaging_g == 0.0

    def test_design_point_name(self):
        assert design(128).design_point().name == "128 MACs"

    def test_die_embodied_below_total(self):
        d = design(512)
        assert d.die_embodied_g < d.embodied_g

    def test_embodied_monotone_in_macs(self):
        embodied = [d.embodied_g for d in sweep()]
        assert embodied == sorted(embodied)

    def test_newer_node_denser_but_more_carbon_per_area(self):
        d16 = design(512, 16)
        d28 = design(512, "28")
        assert d16.area_mm2 < d28.area_mm2

    def test_largest_within_area_respects_budget(self):
        d = largest_within_area(1.0, 16)
        assert d.area_mm2 <= 1.0
        # The next configuration up must not fit.
        bigger = design(d.n_macs * 2, 16)
        assert bigger.area_mm2 > 1.0

    def test_largest_within_area_infeasible(self):
        with pytest.raises(ParameterError):
            largest_within_area(0.01, "28")

    def test_qos_infeasible_raises(self):
        with pytest.raises(ParameterError):
            qos_minimal_design(target_fps=1e9)

    def test_invalid_mac_count(self):
        with pytest.raises(ParameterError):
            design(-5)
