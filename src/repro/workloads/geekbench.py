"""A Geekbench-5-style mobile workload substrate.

The paper measures mobile performance as "the geometric mean of seven mobile
Geekbench 5 workloads: HTML 5 rendering, AES encryption, text compression,
image compression, face detection, speech recognition, and AI-based image
classification", averaged over chipsets in the wild.

We reproduce that substrate synthetically: each chipset carries an aggregate
score (see :mod:`repro.data.soc_catalog`), and each workload perturbs that
aggregate with a family-specific tilt (Exynos/Snapdragon/Kirin microarchs
have different relative strengths).  Tilts are normalized so the geometric
mean across the seven workloads recovers the aggregate exactly, which keeps
every Figure 8 calibration anchored to the catalog scores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import units
from repro.core.errors import UnknownEntryError
from repro.data.soc_catalog import EXYNOS, KIRIN, SNAPDRAGON, MobileSoc


@dataclass(frozen=True)
class Workload:
    """One of the seven Geekbench-style mobile workloads.

    Attributes:
        name: Canonical identifier (e.g. ``"aes"``).
        label: Paper-facing label.
        work_units: Abstract work per run; a chipset scoring ``S`` on this
            workload finishes one run in ``work_units / S`` seconds.
    """

    name: str
    label: str
    work_units: float


WORKLOADS: tuple[Workload, ...] = (
    Workload("html5", "HTML 5 rendering", 900.0),
    Workload("aes", "AES encryption", 600.0),
    Workload("text_compression", "text compression", 750.0),
    Workload("image_compression", "image compression", 800.0),
    Workload("face_detection", "face detection", 1000.0),
    Workload("speech_recognition", "speech recognition", 1100.0),
    Workload("ai_classification", "AI image classification", 1200.0),
)

_WORKLOAD_BY_NAME = {workload.name: workload for workload in WORKLOADS}

#: Family-specific relative strengths per workload.  Each row is normalized
#: at import time so its geometric mean is exactly 1, keeping the aggregate
#: catalog score authoritative.
_RAW_TILTS: dict[str, dict[str, float]] = {
    EXYNOS: {
        "html5": 1.05,
        "aes": 0.95,
        "text_compression": 1.00,
        "image_compression": 1.08,
        "face_detection": 0.92,
        "speech_recognition": 0.97,
        "ai_classification": 1.04,
    },
    SNAPDRAGON: {
        "html5": 0.98,
        "aes": 1.10,
        "text_compression": 1.02,
        "image_compression": 0.96,
        "face_detection": 1.05,
        "speech_recognition": 1.00,
        "ai_classification": 1.12,
    },
    KIRIN: {
        "html5": 1.00,
        "aes": 1.02,
        "text_compression": 0.94,
        "image_compression": 1.00,
        "face_detection": 1.06,
        "speech_recognition": 1.03,
        "ai_classification": 1.15,
    },
}


def _normalize_tilts() -> dict[str, dict[str, float]]:
    normalized: dict[str, dict[str, float]] = {}
    for family, tilts in _RAW_TILTS.items():
        geomean = math.prod(tilts.values()) ** (1.0 / len(tilts))
        normalized[family] = {
            name: value / geomean for name, value in tilts.items()
        }
    return normalized


FAMILY_TILTS: dict[str, dict[str, float]] = _normalize_tilts()


def workload(name: str) -> Workload:
    """Look up a workload by canonical name."""
    key = name.strip().lower()
    try:
        return _WORKLOAD_BY_NAME[key]
    except KeyError:
        raise UnknownEntryError("workload", name, _WORKLOAD_BY_NAME) from None


def workload_score(soc: MobileSoc, workload_name: str) -> float:
    """The chipset's score on one workload (aggregate score × family tilt)."""
    tilt = FAMILY_TILTS[soc.family][workload(workload_name).name]
    return soc.perf_score * tilt


@dataclass(frozen=True)
class WorkloadRun:
    """Measured execution of one workload on one chipset."""

    soc: str
    workload: str
    score: float
    delay_s: float
    energy_kwh: float


def run_workload(soc: MobileSoc, workload_name: str) -> WorkloadRun:
    """Delay and energy for one workload run on ``soc``.

    Delay is ``work_units / score`` seconds; energy is TDP × delay, matching
    the paper's use of TDP as the power model.
    """
    spec = workload(workload_name)
    score = workload_score(soc, workload_name)
    delay_s = spec.work_units / score
    energy_kwh = units.watts_times_seconds(soc.tdp_w, delay_s)
    return WorkloadRun(
        soc=soc.name,
        workload=spec.name,
        score=score,
        delay_s=delay_s,
        energy_kwh=energy_kwh,
    )


def run_suite(soc: MobileSoc) -> tuple[WorkloadRun, ...]:
    """All seven workload runs for one chipset."""
    return tuple(run_workload(soc, spec.name) for spec in WORKLOADS)


def aggregate_delay_s(soc: MobileSoc) -> float:
    """Geometric-mean delay across the suite (the Figure 8 "speed" basis)."""
    runs = run_suite(soc)
    return math.prod(run.delay_s for run in runs) ** (1.0 / len(runs))


def aggregate_energy_kwh(soc: MobileSoc) -> float:
    """Geometric-mean energy per workload across the suite."""
    runs = run_suite(soc)
    return math.prod(run.energy_kwh for run in runs) ** (1.0 / len(runs))


def aggregate_speed(soc: MobileSoc) -> float:
    """Aggregate mobile speed: geomean score across the suite.

    By construction of the normalized tilts this equals the catalog's
    aggregate ``perf_score``.
    """
    runs = run_suite(soc)
    return math.prod(run.score for run in runs) ** (1.0 / len(runs))
