"""Generic parameter sweeps for carbon-aware design-space exploration.

Thin, typed helpers that the experiment modules build on: evaluate a design
generator over a one-dimensional parameter grid or the Cartesian product of
several named grids, keeping the (parameters → design) association so
results can be tabulated and constrained afterwards.

Two evaluation paths exist.  The scalar helpers (:func:`sweep_1d`,
:func:`sweep_grid`) call an arbitrary Python evaluator per point and remain
the reference implementation.  :func:`sweep_grid_batched` instead sweeps the
ACT model itself: it lowers the grid into a
:class:`~repro.engine.batch.ScenarioBatch` and evaluates Eq. 1-8 for every
point in one vectorized, cached pass — the same results, orders of
magnitude faster for large grids.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Generic,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    TypeVar,
)

import numpy as np

from repro.analysis.scenario import ActScenario
from repro.core.errors import ConstraintError
from repro.engine.batch import ScenarioBatch, product_columns, product_params
from repro.engine.cache import EvaluationCache, evaluate_cached
from repro.engine.kernels import BatchResult
from repro.obs.context import current_context

if TYPE_CHECKING:  # pragma: no cover - robustness sits above this module
    from repro.engine.plan import SweepPlan
    from repro.robustness.guard import ColumnDiagnostic, GuardedEngine

P = TypeVar("P")
D = TypeVar("D")


def _canonical_param(value: object) -> object:
    """Collapse numpy scalar wrappers to the Python scalars they box.

    Sweep points arrive as whatever type produced them — ``5.0`` from a
    literal grid, ``np.float64(5.0)`` from an array column, a 0-d array
    from an aggregation.  0-d arrays are unhashable outright, and boxed
    scalars make memo hits depend on provenance, so parameter values are
    normalized once at freeze time: numerically equal points hash and
    compare identically no matter which type produced them.
    """
    if isinstance(value, np.ndarray) and value.ndim == 0:
        value = value[()]
    if isinstance(value, np.generic):
        return value.item()
    return value


class FrozenParams(Mapping[str, object]):
    """An immutable, hashable parameter mapping.

    ``SweepRecord`` is a frozen dataclass, but a frozen dataclass holding a
    plain ``dict`` is neither hashable nor safe to use as a cache key.  This
    wrapper freezes the mapping at construction (normalizing numpy scalar
    values, see :func:`_canonical_param`) and hashes by item set, so
    records can go straight into sets, dict keys, and memo tables.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Mapping[str, object]):
        self._items = {
            key: _canonical_param(value) for key, value in items.items()
        }

    def __getitem__(self, key: str) -> object:
        return self._items[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(frozenset(self._items.items()))

    def __repr__(self) -> str:
        return f"FrozenParams({self._items!r})"


@dataclass(frozen=True)
class SweepRecord(Generic[D]):
    """One evaluated point of a sweep: the parameters and the design."""

    params: Mapping[str, object]
    design: D

    def __post_init__(self) -> None:
        # Freeze the mapping so frozen records are genuinely immutable and
        # hashable (dict-valued fields would break hash() and cache keys).
        if not isinstance(self.params, FrozenParams):
            object.__setattr__(self, "params", FrozenParams(self.params))


def sweep_1d(
    name: str, values: Iterable[P], evaluate: Callable[[P], D]
) -> tuple[SweepRecord[D], ...]:
    """Evaluate a single-parameter sweep.

    Args:
        name: Parameter name recorded on each result.
        values: Grid of parameter values.
        evaluate: Maps one parameter value to a design/result object.
    """
    context = current_context()
    with context.span("dse.sweep_1d", parameter=name):
        records = tuple(
            SweepRecord(params={name: value}, design=evaluate(value))
            for value in values
        )
    if context.enabled:
        context.count("dse.sweep.points", len(records))
    return records


def sweep_grid(
    grids: Mapping[str, Sequence[object]],
    evaluate: Callable[..., D],
) -> tuple[SweepRecord[D], ...]:
    """Evaluate the Cartesian product of several named parameter grids.

    ``evaluate`` is called with the grid names as keyword arguments.
    """
    if not grids:
        raise ConstraintError("at least one parameter grid is required")
    names = tuple(grids)
    context = current_context()
    with context.span("dse.sweep_grid_scalar", dimensions=len(names)):
        records = []
        for combo in itertools.product(*(grids[name] for name in names)):
            params = dict(zip(names, combo))
            records.append(
                SweepRecord(params=params, design=evaluate(**params))
            )
    if context.enabled:
        context.count("dse.sweep.points", len(records))
    return tuple(records)


@dataclass(frozen=True)
class BatchSweepResult:
    """A fully-evaluated ACT-model grid sweep, struct-of-arrays style.

    Attributes:
        names: The swept parameter names, in grid order.
        batch: The evaluated scenario batch (row ``i`` = grid point ``i``,
            ordered like ``itertools.product`` over the grids).
        result: Every Eq. 1-8 output series aligned with the batch rows.
    """

    names: tuple[str, ...]
    batch: ScenarioBatch
    result: BatchResult

    def __len__(self) -> int:
        return len(self.batch)

    def params(self, index: int) -> dict[str, float]:
        """The swept-parameter assignment of grid point ``index``."""
        return {
            name: float(self.batch.column(name)[index]) for name in self.names
        }

    def argmin(self, series: str = "total_g") -> int:
        """Row index minimizing one result series (default: Eq. 1 total)."""
        return int(np.argmin(getattr(self.result, series)))

    def min_record(self, series: str = "total_g") -> SweepRecord[ActScenario]:
        """The minimizing grid point as a scalar-compatible sweep record."""
        index = self.argmin(series)
        return SweepRecord(
            params=self.params(index), design=self.batch.scenario(index)
        )

    def records(self) -> tuple[SweepRecord[float], ...]:
        """Scalar-compatible records carrying each point's total footprint."""
        totals = self.result.total_g
        return tuple(
            SweepRecord(params=self.params(index), design=float(totals[index]))
            for index in range(len(self))
        )


class PlannedSweepResult(BatchSweepResult):
    """A planned sweep whose dense input batch materializes lazily.

    The factored evaluator produces every output series without ever
    building the 18-column dense batch, and most sweep consumers
    (``argmin`` over a series, reading a response surface) never touch
    the input columns at all.  ``batch`` is therefore built from the
    plan on first attribute access and cached — the identical
    :class:`~repro.engine.batch.ScenarioBatch` the eager constructor
    would hold, minus the upfront materialization cost on the planned
    hot path.

    Attributes:
        plan: The :class:`~repro.engine.plan.SweepPlan` this result was
            evaluated from.
    """

    def __init__(
        self,
        *,
        names: tuple[str, ...],
        result: BatchResult,
        plan: "SweepPlan",
    ):
        object.__setattr__(self, "names", names)
        object.__setattr__(self, "result", result)
        object.__setattr__(self, "plan", plan)

    def __getattr__(self, name: str) -> object:
        if name == "batch":
            plan = self.__dict__.get("plan")
            if plan is None:  # mid-unpickle, before "plan" lands
                raise AttributeError(name)
            batch = plan.batch()
            object.__setattr__(self, "batch", batch)
            return batch
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __len__(self) -> int:
        return len(self.result)


@dataclass(frozen=True)
class GuardedSweepResult(BatchSweepResult):
    """A guarded grid sweep: the surviving points plus what was masked.

    A drop-in :class:`BatchSweepResult` whose batch holds only the rows
    the guard accepted (with ``repair``-policy clamping applied), plus the
    guard's bookkeeping so callers can see exactly which grid points were
    dropped and why.

    Attributes:
        valid: Boolean mask over the *original* grid rows.
        source_indices: Original grid-row index of each surviving row.
        diagnostics: Everything the guard's validation found.
    """

    valid: np.ndarray = None  # type: ignore[assignment]
    source_indices: np.ndarray = None  # type: ignore[assignment]
    diagnostics: "tuple[ColumnDiagnostic, ...]" = ()

    @property
    def masked_count(self) -> int:
        """How many grid points the guard masked out."""
        return int(self.valid.size - np.count_nonzero(self.valid))


def _planned_sweep(
    base: ActScenario,
    grids: Mapping[str, Sequence[float]],
    cache: "EvaluationCache | None",
) -> BatchSweepResult:
    """The factored serial sweep (see :mod:`repro.engine.plan`).

    Bit-identical to the dense path on the active backend: the plan
    evaluates each Eq. 1-8 partial once on its marginal grid and
    broadcasts the outer products out, the sampled cross-check re-derives
    up to 32 rows densely, and the result batch is the same grid with
    constant columns kept as zero-stride views.
    """
    from repro.engine.plan import evaluate_plan_cached, plan_product, verify_plan

    plan = plan_product(base, grids)
    context = current_context()
    if context.enabled:
        context.count("dse.sweep.points", plan.size)
    result = evaluate_plan_cached(plan, cache)
    verify_plan(plan, result)
    return PlannedSweepResult(names=plan.names, result=result, plan=plan)


def _parallel_planned_sweep(
    base: ActScenario,
    grids: Mapping[str, Sequence[float]],
    policy: object,
) -> BatchSweepResult:
    """The factored sweep through the parallel runner.

    The plan (and its small factor tables) is computed once in the
    parent; shards receive the tables by series name and gather only
    their own row ranges, so results merge shard-ordered into the same
    series the serial planned pass produces.
    """
    from repro.engine.plan import plan_product, verify_plan
    from repro.parallel.runner import ParallelRunner

    plan = plan_product(base, grids)
    context = current_context()
    if context.enabled:
        context.count("dse.sweep.points", plan.size)
    with ParallelRunner(policy) as runner:
        evaluation = runner.evaluate_planned(plan)
    result = evaluation.batch_result()
    verify_plan(plan, result, getattr(policy, "backend", None))
    return PlannedSweepResult(names=plan.names, result=result, plan=plan)


def _parallel_sweep(
    base: ActScenario,
    grids: Mapping[str, Sequence[float]],
    policy: object,
    guard: "GuardedEngine | None",
) -> BatchSweepResult:
    """Evaluate a grid sweep through the parallel runner.

    Bit-identical to the serial sweep: the Eq. 1-8 kernels are elementwise,
    so shard boundaries cannot change any value, and the guard's repair
    clamping is a pure per-row function reapplied parent-side to rebuild
    the surviving batch.
    """
    from repro.parallel.runner import ParallelRunner

    size, columns = product_columns(base, grids)
    context = current_context()
    if context.enabled:
        context.count("dse.sweep.points", size)
    with ParallelRunner(policy) as runner:
        evaluation = runner.evaluate_columns(base, size, columns, guard=guard)
    if guard is None:
        return BatchSweepResult(
            names=tuple(grids),
            batch=ScenarioBatch(**columns),
            result=evaluation.batch_result(),
        )
    # Rebuild the surviving (possibly repaired) input batch exactly as the
    # serial guard would: reapply the pure repair clamp to the diagnosed
    # input values, then keep the valid rows.  Output-overflow diagnostics
    # describe kernel results, not input columns, so they are excluded.
    from repro.engine.batch import FIELD_NAMES
    from repro.robustness.guard import OUTPUT

    raw = {name: np.array(column) for name, column in columns.items()}
    input_diagnostics = tuple(
        diagnostic
        for diagnostic in evaluation.diagnostics
        if diagnostic.reason != OUTPUT and diagnostic.column in FIELD_NAMES
    )
    if evaluation.repaired and input_diagnostics:
        raw = guard._repair(base, raw, input_diagnostics)
    valid = evaluation.valid
    batch = ScenarioBatch(
        **{
            name: np.ascontiguousarray(column[valid])
            for name, column in raw.items()
        }
    )
    return GuardedSweepResult(
        names=tuple(grids),
        batch=batch,
        result=evaluation.batch_result(),
        valid=np.array(valid),
        source_indices=evaluation.indices,
        diagnostics=evaluation.diagnostics,
    )


def _grid_size(grids: Mapping[str, Sequence[float]]) -> int:
    """The Cartesian row count of ``grids`` (0 for a malformed grid)."""
    size = 1
    for values in grids.values():
        axis = np.asarray(values)
        if axis.ndim != 1:
            return 0
        size *= int(axis.size)
    return size


def sweep_grid_batched(
    base: ActScenario,
    grids: Mapping[str, Sequence[float]],
    *,
    cache: EvaluationCache | None = None,
    guard: "GuardedEngine | None" = None,
    policy: "object | int | None" = None,
    planner: str | None = None,
) -> BatchSweepResult:
    """Sweep the ACT model over a parameter grid in one vectorized pass.

    The batched twin of ``sweep_grid(grids, lambda **p: base.replace(**p))``:
    every Cartesian grid point becomes one batch row, Eq. 1-8 run once over
    the whole batch, and repeated sweeps of an identical grid are served
    from the content-hash cache.

    Args:
        base: Scenario providing every non-swept parameter.
        grids: Named grids over :class:`ActScenario` fields.
        cache: Optional evaluation cache (default: the process-wide one).
        guard: Optional :class:`~repro.robustness.guard.GuardedEngine`.
            When given, the grid columns are validated (and repaired or
            masked, per policy) before evaluation and a
            :class:`GuardedSweepResult` over the surviving points is
            returned.
        policy: An :class:`~repro.parallel.ExecutionPolicy`, a bare worker
            count, or ``None`` to pick up an installed process-wide
            policy.  Sweeps are elementwise, so parallel results are
            bit-identical to the serial pass at any worker count; a
            resolved ``workers=1`` policy stays on the serial cached path.
        planner: ``"auto"`` / ``"on"`` / ``"off"``, or ``None`` to pick
            up the process-wide mode
            (:func:`~repro.engine.plan.use_planner`, default ``auto``).
            When the structure-aware planner engages, Eq. 1-8 are
            factored into per-axis partial terms evaluated once on their
            marginal grids (:mod:`repro.engine.plan`) — bit-identical
            results, orders of magnitude less arithmetic on separable
            grids.  Guarded sweeps and non-plannable backends always use
            the dense path; ``"off"`` reproduces it unconditionally.
    """
    if not grids:
        raise ConstraintError("at least one parameter grid is required")
    from repro.engine.plan import planner_engaged, resolve_planner_mode
    from repro.parallel.policy import resolve_policy

    resolved_policy = resolve_policy(policy)
    mode = resolve_planner_mode(planner)
    context = current_context()
    with context.span(
        "dse.sweep_grid",
        dimensions=len(grids),
        guarded=guard is not None,
        workers=resolved_policy.workers if resolved_policy is not None else 0,
    ):
        if resolved_policy is not None and resolved_policy.parallel:
            if guard is None and planner_engaged(
                mode, _grid_size(grids), getattr(resolved_policy, "backend", None)
            ):
                return _parallel_planned_sweep(base, grids, resolved_policy)
            return _parallel_sweep(base, grids, resolved_policy, guard)
        if guard is not None:
            size, columns = product_columns(base, grids)
            if context.enabled:
                context.count("dse.sweep.points", size)
            guarded = guard.evaluate_columns(base, size, columns)
            return GuardedSweepResult(
                names=tuple(grids),
                batch=guarded.batch,
                result=guarded.result,
                valid=guarded.valid,
                source_indices=guarded.indices,
                diagnostics=guarded.diagnostics,
            )
        if planner_engaged(mode, _grid_size(grids)):
            return _planned_sweep(base, grids, cache)
        batch = ScenarioBatch.from_product(base, grids)
        if context.enabled:
            context.count("dse.sweep.points", len(batch))
        result = evaluate_cached(batch, cache)
        return BatchSweepResult(names=tuple(grids), batch=batch, result=result)


def argmin(
    records: Sequence[SweepRecord[D]], key: Callable[[D], float]
) -> SweepRecord[D]:
    """The record whose design minimizes ``key``."""
    if not records:
        raise ConstraintError("cannot take argmin of an empty sweep")
    return min(records, key=lambda record: key(record.design))


def feasible(
    records: Sequence[SweepRecord[D]], predicate: Callable[[D], bool]
) -> tuple[SweepRecord[D], ...]:
    """The records whose designs satisfy a constraint predicate."""
    return tuple(record for record in records if predicate(record.design))


__all__ = [
    "BatchSweepResult",
    "FrozenParams",
    "GuardedSweepResult",
    "SweepRecord",
    "argmin",
    "feasible",
    "product_params",
    "sweep_1d",
    "sweep_grid",
    "sweep_grid_batched",
]
