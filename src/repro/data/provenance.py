"""Provenance tags attached to every bundled data record.

ACT is fueled by publicly reported fab and vendor characterization; each
record in :mod:`repro.data` carries a :class:`Source` so downstream reports
can cite where a number came from (paper appendix table, industry CSR report,
or a calibrated estimate made by this reproduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class SourceKind(Enum):
    """How trustworthy / literal a data record is."""

    PAPER_TABLE = "paper_table"  # verbatim from an appendix table of the paper
    PAPER_TEXT = "paper_text"  # stated in the paper's prose or a figure
    INDUSTRY_REPORT = "industry_report"  # from a cited CSR/environmental report
    CALIBRATED = "calibrated"  # chosen by this reproduction to match anchors
    DERIVED = "derived"  # computed from other records


@dataclass(frozen=True)
class Source:
    """Citation for a data record.

    Attributes:
        kind: The provenance class of the record.
        citation: Human-readable pointer (e.g. "ACT Table 7" or
            "TSMC CSR 2019").
        note: Optional free-form detail (assumptions, interpolation, ...).
    """

    kind: SourceKind
    citation: str
    note: str = ""

    def __str__(self) -> str:
        suffix = f" — {self.note}" if self.note else ""
        return f"{self.citation} [{self.kind.value}]{suffix}"


PAPER_TABLE = SourceKind.PAPER_TABLE
PAPER_TEXT = SourceKind.PAPER_TEXT
INDUSTRY_REPORT = SourceKind.INDUSTRY_REPORT
CALIBRATED = SourceKind.CALIBRATED
DERIVED = SourceKind.DERIVED
