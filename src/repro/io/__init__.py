"""Declarative configuration I/O (JSON platform descriptions)."""

from repro.io.config import (
    component_from_spec,
    load_platform,
    platform_from_dict,
    platform_from_json,
)

__all__ = [
    "component_from_spec",
    "load_platform",
    "platform_from_dict",
    "platform_from_json",
]
