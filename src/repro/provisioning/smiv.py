"""Reuse case study: re-configurable accelerators (Section 6.2, Figure 11).

Based on the SMIV 16 nm SoC (dual-core Arm Cortex-A53 CPUs, a specialized AI
accelerator, and an embedded FPGA), the paper compares three designs across
three applications — FIR filtering, AES encryption, and AI inference:

* FPGA: 50x / 80x / 24x the CPU's performance (geomean 45x);
* the AI ASIC ("Accel"): 26x on AI, host CPU for everything else;
* energy on AI: ASIC 44x below CPU and 5x below FPGA;
* embodied: the CPU-only design is 1.3x / 1.8x below Accel / FPGA designs.

The measured speedup/efficiency ratios are encoded as the workload
substrate (they are silicon measurements in the paper); embodied carbon is
computed bottom-up from each design's 16 nm die area through the ACT model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import units
from repro.core.components import LogicComponent
from repro.core.errors import UnknownEntryError
from repro.core.metrics import DesignPoint
from repro.core.model import Platform

#: SMIV is a 16 nm SoC.
SMIV_NODE = 16

#: Die areas (mm^2): the CPU subsystem, and the extra silicon each
#: alternative adds.  Chosen so design-level embodied ratios are 1.3x
#: (CPU+Accel) and 1.8x (CPU+FPGA) over CPU-only, matching Figure 11.
CPU_AREA_MM2 = 5.0
ACCEL_EXTRA_AREA_MM2 = 1.5
FPGA_EXTRA_AREA_MM2 = 4.0

APPLICATIONS: tuple[str, ...] = ("FIR", "AES", "AI")


@dataclass(frozen=True)
class AppMeasurement:
    """One (application, design) silicon measurement.

    Attributes:
        latency_s: Time per unit of application work.
        power_w: Average power while running.
    """

    latency_s: float
    power_w: float

    @property
    def energy_j(self) -> float:
        return self.latency_s * self.power_w


#: CPU baselines per application (per-item latency/power).
_CPU_BASELINES: dict[str, AppMeasurement] = {
    "FIR": AppMeasurement(2.0e-3, 0.35),
    "AES": AppMeasurement(4.0e-3, 0.40),
    "AI": AppMeasurement(120.0e-3, 0.50),
}

#: Speedups over the CPU per application (paper Figure 11, top).
_SPEEDUPS: dict[str, dict[str, float]] = {
    "CPU": {"FIR": 1.0, "AES": 1.0, "AI": 1.0},
    "Accel": {"FIR": 1.0, "AES": 1.0, "AI": 26.0},  # host CPU runs FIR/AES
    "FPGA": {"FIR": 50.0, "AES": 80.0, "AI": 24.0},
}

#: Energy reduction factors vs the CPU per application (Figure 11, bottom
#: left: ASIC 44x below CPU on AI and 5x below FPGA ⇒ FPGA 8.8x below CPU;
#: FIR/AES FPGA factors assume the speedup comes at roughly 2x CPU power).
_ENERGY_REDUCTION: dict[str, dict[str, float]] = {
    "CPU": {"FIR": 1.0, "AES": 1.0, "AI": 1.0},
    "Accel": {"FIR": 1.0, "AES": 1.0, "AI": 44.0},
    "FPGA": {"FIR": 25.0, "AES": 40.0, "AI": 8.8},
}

DESIGNS: tuple[str, ...] = ("CPU", "Accel", "FPGA")


def design_area_mm2(design: str) -> float:
    """Total silicon area of one design."""
    extras = {"CPU": 0.0, "Accel": ACCEL_EXTRA_AREA_MM2, "FPGA": FPGA_EXTRA_AREA_MM2}
    if design not in extras:
        raise UnknownEntryError("SMIV design", design, DESIGNS)
    return CPU_AREA_MM2 + extras[design]


def design_platform(design: str) -> Platform:
    """The ACT platform (16 nm silicon) for one design."""
    area = design_area_mm2(design)
    die = LogicComponent.at_node(f"SMIV {design}", area, SMIV_NODE)
    return Platform(f"SMIV {design}", (die,), packaging_g_per_ic=0.0)


def design_embodied_g(design: str) -> float:
    """Embodied carbon of one design (Figure 11, bottom right)."""
    return design_platform(design).embodied_g()


def measurement(design: str, application: str) -> AppMeasurement:
    """Latency/power of ``application`` on ``design``.

    Derived from the CPU baseline and the measured speedup/efficiency
    ratios: latency divides by the speedup; energy divides by the energy
    reduction; power is whatever ratio of the two implies.
    """
    if design not in DESIGNS:
        raise UnknownEntryError("SMIV design", design, DESIGNS)
    if application not in APPLICATIONS:
        raise UnknownEntryError("SMIV application", application, APPLICATIONS)
    base = _CPU_BASELINES[application]
    latency = base.latency_s / _SPEEDUPS[design][application]
    energy = base.energy_j / _ENERGY_REDUCTION[design][application]
    return AppMeasurement(latency_s=latency, power_w=energy / latency)


def speedup(design: str, application: str) -> float:
    """Throughput relative to the CPU."""
    return _SPEEDUPS[design][application]


def geomean_speedup(design: str) -> float:
    """Geometric-mean speedup across the three applications."""
    return math.prod(speedup(design, app) for app in APPLICATIONS) ** (
        1.0 / len(APPLICATIONS)
    )


def design_point(design: str) -> DesignPoint:
    """Geomean metric inputs for one design (Figure 11's metric summary)."""
    delays = [measurement(design, app).latency_s for app in APPLICATIONS]
    energies = [measurement(design, app).energy_j for app in APPLICATIONS]
    n = len(APPLICATIONS)
    return DesignPoint(
        name=design,
        embodied_carbon_g=design_embodied_g(design),
        energy_kwh=units.joules_to_kwh(math.prod(energies) ** (1.0 / n)),
        delay_s=math.prod(delays) ** (1.0 / n),
        area_mm2=design_area_mm2(design),
    )


def design_points() -> tuple[DesignPoint, ...]:
    """Metric inputs for all three designs."""
    return tuple(design_point(design) for design in DESIGNS)
