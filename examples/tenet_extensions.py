#!/usr/bin/env python3
"""The other levers in Figure 1: chiplets, DVFS, and the device survey.

Figure 1 lists more Reduce/Reuse/Recycle levers than the paper's three
case studies cover.  This walkthrough exercises three of them through the
same ACT machinery:

* **Chiplets (Reuse)** — splitting a big die raises yield; the carbon
  crossover vs interface/packaging overheads lands near ~100 mm².
* **DVFS (Reduce)** — the carbon-optimal frequency depends on how
  embodied-dominated the platform is: green grids and heavy silicon both
  argue for racing through the work.
* **The device survey** — the motivation's claim that most consumer
  devices are manufacturing-dominated, checked across product classes.

Run:  python examples/tenet_extensions.py
"""

from repro.core.dvfs import DvfsModel, footprint_optimal_frequency_ghz
from repro.data.consumer_devices import (
    SURVEY_DEVICES,
    manufacturing_dominated_fraction,
)
from repro.fabs.chiplets import (
    chiplet_break_even_area_mm2,
    optimal_partition,
    partition_sweep,
)
from repro.fabs.fab import default_fab
from repro.reporting.tables import ascii_table


def main() -> None:
    fab = default_fab("7")

    # --- 1. Chiplets --------------------------------------------------------
    print("Chiplet partitioning of a 600 mm^2 7nm design:")
    rows = [
        (d.chiplets, d.chiplet_area_mm2, d.per_chiplet_yield,
         d.silicon_g / 1000.0, d.packaging_g / 1000.0, d.total_g / 1000.0)
        for d in partition_sweep(600.0, fab, max_chiplets=8)
    ]
    print(
        ascii_table(
            ("chiplets", "die mm^2", "yield", "silicon kg", "pkg kg", "total kg"),
            rows,
            float_format=".3g",
        )
    )
    best = optimal_partition(600.0, fab)
    mono = partition_sweep(600.0, fab, max_chiplets=1)[0]
    print(f"Optimal: {best.chiplets} chiplets, "
          f"{mono.total_g / best.total_g:.2f}x below monolithic")
    print(f"Break-even die size for chiplets at 7nm: "
          f"~{chiplet_break_even_area_mm2(fab):.0f} mm^2")
    print()

    # --- 2. DVFS -------------------------------------------------------------
    model = DvfsModel()
    print("Carbon-optimal DVFS frequency (per-task Eq. 1 minimum):")
    rows = []
    for label, embodied_g, ci in (
        ("light silicon, dirty grid", 100.0, 700.0),
        ("light silicon, US grid", 100.0, 300.0),
        ("heavy silicon, US grid", 5000.0, 300.0),
        ("heavy silicon, green grid", 5000.0, 11.0),
    ):
        f_star = footprint_optimal_frequency_ghz(
            model, embodied_carbon_g=embodied_g, ci_use_g_per_kwh=ci
        )
        rows.append((label, embodied_g, ci, f_star))
    print(ascii_table(("scenario", "embodied g", "CI g/kWh", "f* GHz"), rows))
    print("The greener the energy and the heavier the silicon, the more the "
          "optimum slides toward f_max.")
    print()

    # --- 3. The device survey ---------------------------------------------------
    print("Consumer-device survey (manufacturing vs use share):")
    rows = [
        (d.name, d.device_class, d.manufacturing_share, d.use_share,
         "manufacturing" if d.manufacturing_dominated else "use")
        for d in SURVEY_DEVICES.values()
    ]
    print(ascii_table(
        ("device", "class", "manuf", "use", "dominated by"), rows,
        float_format=".2f",
    ))
    print(f"\n{manufacturing_dominated_fraction():.0%} of the survey is "
          "manufacturing-dominated — the paper's motivating shift.")


if __name__ == "__main__":
    main()
