#!/usr/bin/env python
"""Compare a fresh benchmark payload against the committed baseline.

The perf-guard CI jobs preserve a committed payload (``BENCH_engine.json``
or ``BENCH_service.json``), re-run the benchmark that overwrites it, and
then invoke this script to compare the two.  A throughput drop beyond the
threshold (default 25%) on any guarded series fails the build;
improvements and small fluctuations pass.

The guarded series are selected by the payload's top-level ``benchmark``
field (``engine`` when absent, for baselines written before the field
existed): engine payloads guard the kernel/sweep/parallel series, service
payloads guard the micro-batching throughput figures.

Usage::

    python tools/check_perf_regression.py BASELINE.json CURRENT.json \
        [--threshold 0.25]

Exit codes: 0 = within budget, 1 = regression, 2 = unusable inputs.
"""

from __future__ import annotations

import argparse
import json
import sys

#: (section, key, required) triples guarded against regression in
#: ``benchmark: engine`` payloads.  All are best-of-N points/sec figures,
#: so a sustained drop means the engine got slower, not that one sample
#: was unlucky.  Optional series (the ``parallel`` section, absent from
#: baselines written before it existed) are skipped with a note when
#: either payload lacks them.
GUARDED_SERIES: tuple[tuple[str, str, bool], ...] = (
    ("monte_carlo", "batched_points_per_sec", True),
    ("grid_sweep", "batched_points_per_sec", True),
    ("parallel", "best_draws_per_sec", False),
    ("scheduling", "vectorized_points_per_sec", False),
    # The planner speedup ratios are asserted (when gated) by the
    # benchmark itself; only the absolute planned throughputs are
    # re-guarded here.  Dotted sections traverse nested payload dicts.
    ("planner.separable", "planned_points_per_sec", False),
    ("planner.mixed", "planned_points_per_sec", False),
    # Durable-checkpointed chunked MC throughput; the < 5% protocol
    # overhead gate lives in the benchmark itself.
    ("durability", "checkpointed_points_per_sec", False),
)

#: Guarded series for ``benchmark: service`` payloads.  All optional
#: (skip-with-note): a baseline written before a section existed must not
#: fail the first run after that section's merge.  The microbatch speedup
#: itself is not re-guarded here — the benchmark asserts its >= 5x floor
#: directly, and a ratio of two noisy figures regresses too easily for a
#: threshold check.
SERVICE_SERIES: tuple[tuple[str, str, bool], ...] = (
    ("microbatch", "batched_completed_per_sec", False),
    ("service_closed_loop", "batched_completed_per_sec", False),
)

SERIES_BY_BENCHMARK: dict[str, tuple[tuple[str, str, bool], ...]] = {
    "engine": GUARDED_SERIES,
    "service": SERVICE_SERIES,
}


def _benchmark_kind(payload: dict) -> str:
    """The payload's declared benchmark family (engine when undeclared)."""
    kind = payload.get("benchmark")
    return kind if isinstance(kind, str) and kind else "engine"


def _section_dict(payload: dict, section: str) -> dict | None:
    """Resolve a possibly dotted section path to its payload sub-dict."""
    node: object = payload
    for part in section.split("."):
        if not isinstance(node, dict):
            return None
        node = node.get(part)
    return node if isinstance(node, dict) else None

#: Per-backend throughput keys guarded inside the nested ``backends``
#: section (``{"backends": {"fused": {key: ...}, ...}}``).  Backends are
#: compared only when present in BOTH payloads — a backend newly added
#: (or newly installed, like numba) has no baseline yet and is skipped
#: with a note instead of failing the first CI run after its merge.
BACKEND_KEYS: tuple[str, ...] = (
    "monte_carlo_points_per_sec",
    "grid_sweep_points_per_sec",
)


def _backend_series(payload: dict) -> dict[str, dict]:
    """The per-backend sub-dicts of a payload's ``backends`` section."""
    section = payload.get("backends")
    if not isinstance(section, dict):
        return {}
    return {
        name: entry
        for name, entry in section.items()
        if isinstance(entry, dict)
    }


def compare(
    baseline: dict, current: dict, threshold: float
) -> list[tuple[str, float, float, float]]:
    """The guarded series that regressed beyond ``threshold``.

    Returns ``(name, baseline_value, current_value, drop_fraction)`` rows.
    """
    regressions = []
    series = SERIES_BY_BENCHMARK.get(_benchmark_kind(current), GUARDED_SERIES)
    for section, key, required in series:
        name = f"{section}.{key}"
        baseline_section = _section_dict(baseline, section)
        current_section = _section_dict(current, section)
        missing = (
            baseline_section is None
            or key not in baseline_section
            or current_section is None
            or key not in current_section
        )
        if missing:
            if required:
                raise SystemExit(f"missing series {name}")
            print(f"{name}: absent from baseline or current payload, skipped")
            continue
        try:
            before = float(baseline_section[key])
            after = float(current_section[key])
        except (TypeError, ValueError) as error:
            raise SystemExit(f"unusable series {name}: {error}")
        drop = 1.0 - after / before if before > 0 else 0.0
        if drop > threshold:
            regressions.append((name, before, after, drop))

    baseline_backends = _backend_series(baseline)
    current_backends = _backend_series(current)
    for backend in sorted(set(baseline_backends) | set(current_backends)):
        if backend not in baseline_backends:
            print(f"backends.{backend}: new (no baseline series), skipped")
            continue
        if backend not in current_backends:
            print(f"backends.{backend}: absent from current payload, skipped")
            continue
        for key in BACKEND_KEYS:
            name = f"backends.{backend}.{key}"
            if (
                key not in baseline_backends[backend]
                or key not in current_backends[backend]
            ):
                print(f"{name}: absent from baseline or current, skipped")
                continue
            try:
                before = float(baseline_backends[backend][key])
                after = float(current_backends[backend][key])
            except (TypeError, ValueError) as error:
                raise SystemExit(f"unusable series {name}: {error}")
            drop = 1.0 - after / before if before > 0 else 0.0
            if drop > threshold:
                regressions.append((name, before, after, drop))
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_engine.json")
    parser.add_argument("current", help="freshly generated BENCH_engine.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated throughput drop (fraction, default 0.25)",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(args.current, encoding="utf-8") as handle:
            current = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read benchmark payloads: {error}", file=sys.stderr)
        return 2

    kind = _benchmark_kind(current)
    baseline_kind = _benchmark_kind(baseline)
    if baseline_kind != kind:
        print(
            f"benchmark kinds differ: baseline is {baseline_kind!r}, "
            f"current is {kind!r} — comparing them would be meaningless",
            file=sys.stderr,
        )
        return 2

    for section, key, _ in SERIES_BY_BENCHMARK.get(kind, GUARDED_SERIES):
        name = f"{section}.{key}"
        before = (_section_dict(baseline, section) or {}).get(key)
        after = (_section_dict(current, section) or {}).get(key)
        if before and after:
            change = after / before - 1.0
            print(f"{name}: {before:,.0f} -> {after:,.0f} ({change:+.1%})")
    baseline_backends = _backend_series(baseline)
    for backend, entry in sorted(_backend_series(current).items()):
        for key in BACKEND_KEYS:
            before = baseline_backends.get(backend, {}).get(key)
            after = entry.get(key)
            if before and after:
                change = float(after) / float(before) - 1.0
                print(
                    f"backends.{backend}.{key}: {float(before):,.0f} -> "
                    f"{float(after):,.0f} ({change:+.1%})"
                )

    regressions = compare(baseline, current, args.threshold)
    if regressions:
        for name, before, after, drop in regressions:
            print(
                f"REGRESSION {name}: {before:,.0f} -> {after:,.0f} "
                f"points/sec ({drop:.1%} drop > {args.threshold:.0%} budget)",
                file=sys.stderr,
            )
        return 1
    print(f"within budget (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
