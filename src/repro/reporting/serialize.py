"""Serialization of figure/table data to CSV and JSON strings.

Kept dependency-free (``json`` + hand-rolled CSV) so exported experiment
data can be re-plotted with any external tool.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.reporting.figures import FigureData, Series


def _csv_cell(value: object) -> str:
    text = str(value)
    if any(ch in text for ch in ',"\n'):
        return '"' + text.replace('"', '""') + '"'
    return text


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render headers + rows as an RFC-4180-style CSV string."""
    lines = [",".join(_csv_cell(cell) for cell in headers)]
    lines.extend(",".join(_csv_cell(cell) for cell in row) for row in rows)
    return "\n".join(lines) + "\n"


def series_to_csv(series: Series) -> str:
    """One series as a two-column CSV (x, y)."""
    return rows_to_csv(("x", series.name), series.as_pairs())


def figure_to_csv(figure: FigureData) -> str:
    """A figure as a wide CSV: one x column plus one column per series.

    Requires every series to share the same x positions (true for all the
    bundled experiments); raises otherwise.
    """
    if not figure.series:
        return "x\n"
    base_x = figure.series[0].x
    for entry in figure.series[1:]:
        if entry.x != base_x:
            raise ValueError(
                f"series {entry.name!r} has different x positions than "
                f"{figure.series[0].name!r}; export them individually"
            )
    headers = ("x",) + tuple(entry.name for entry in figure.series)
    rows = [
        (x,) + tuple(entry.y[index] for entry in figure.series)
        for index, x in enumerate(base_x)
    ]
    return rows_to_csv(headers, rows)


def figure_to_json(figure: FigureData, *, indent: int = 2) -> str:
    """A figure as a JSON document."""
    payload = {
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "series": [
            {"name": entry.name, "x": list(entry.x), "y": list(entry.y)}
            for entry in figure.series
        ],
    }
    return json.dumps(payload, indent=indent)
