"""Table 12: published LCAs vs ACT at matched and actual process nodes.

For each IC row (Dell R740, Fairphone 3, iPhone), compares the published
LCA value with our ACT estimate at the LCA's assumed (older) node and at
the actual hardware node, next to the paper's own ACT numbers.  The
headline shape: dated LCA technology databases systematically overstate
memory/storage footprints — ACT at the actual node sits far below both.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    check_in_band,
    check_true,
)
from repro.lca.comparison import compare_all

EXPERIMENT_ID = "tab12"
TITLE = "IC footprints: published LCA vs ACT (LCA-matched and actual nodes)"

_MEMORY_ICS = {"RAM", "Flash", "Flash + RAM"}


def run() -> ExperimentResult:
    """Regenerate Table 12 and check its ordering shape."""
    results = compare_all()
    rows = tuple(
        (
            r.ic,
            r.device,
            r.lca_kg if r.lca_kg is not None else "-",
            r.our_node1_kg,
            r.our_node2_kg,
            r.paper_node1_kg,
            r.paper_node2_kg,
        )
        for r in results
    )

    checks = []
    for r in results:
        label = f"{r.ic} / {r.device}"
        if r.ic in _MEMORY_ICS:
            checks.append(
                check_true(
                    f"{label}: actual-node estimate below LCA-matched estimate",
                    r.our_node2_kg < r.our_node1_kg,
                    f"{r.our_node2_kg:.3g} vs {r.our_node1_kg:.3g} kg",
                    "node2 < node1 (newer tech emits less per GB)",
                )
            )
            if r.lca_kg is not None:
                checks.append(
                    check_true(
                        f"{label}: published LCA at or above the LCA-matched "
                        "ACT estimate",
                        r.our_node1_kg <= r.lca_kg * 1.2,
                        f"{r.our_node1_kg:.3g} vs LCA {r.lca_kg:.3g} kg",
                        "node1 <= LCA",
                    )
                )
        else:  # logic rows: newer nodes are *more* carbon-intense per die
            checks.append(
                check_true(
                    f"{label}: actual-node estimate above LCA-matched estimate",
                    r.our_node2_kg > r.our_node1_kg,
                    f"{r.our_node2_kg:.3g} vs {r.our_node1_kg:.3g} kg",
                    "node2 > node1 (advanced logic emits more per area)",
                )
            )
        # Stay within an order of magnitude of the paper's own estimates.
        checks.append(
            check_in_band(
                f"{label}: our node-2 estimate vs the paper's",
                r.our_node2_kg / r.paper_node2_kg,
                0.15, 3.0, paper=f"{r.paper_node2_kg:.3g} kg",
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=(
            "IC", "device", "LCA kg", "ours node1", "ours node2",
            "paper node1", "paper node2",
        ),
        table_rows=rows,
        reference={
            "shape": "memory/storage: LCA >= ACT@LCA-node > ACT@actual-node; "
            "logic: ACT@actual-node > ACT@LCA-node",
        },
        checks=tuple(checks),
    )
