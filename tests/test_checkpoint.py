"""Chunked execution, atomic checkpoints, and bit-for-bit resumption."""

import os

import numpy as np
import pytest

from repro.analysis import ActScenario, run_monte_carlo
from repro.core.errors import CheckpointError, RunInterrupted
from repro.dse import sweep_grid_batched
from repro.engine.cache import EvaluationCache
from repro.robustness import (
    SKIP,
    CancelToken,
    CountingCancelToken,
    GuardedEngine,
    RobustnessWarning,
    load_store_state,
    run_monte_carlo_chunked,
    sweep_grid_batched_chunked,
)

BASE = ActScenario()
GRIDS = {"fab_yield": [0.6, 0.75, 0.875, 1.0], "energy_kwh": list(range(1, 9))}


class TestCancelToken:
    def test_plain_token_never_stops(self):
        assert not CancelToken().should_stop()

    def test_explicit_cancel(self):
        token = CancelToken()
        token.cancel()
        assert token.cancelled
        assert token.should_stop()

    def test_expired_deadline_stops(self):
        assert CancelToken(deadline_seconds=0.0).should_stop()

    def test_counting_token_stops_after_n_checks(self):
        token = CountingCancelToken(stop_after_checks=2)
        assert not token.should_stop()
        assert not token.should_stop()
        assert token.should_stop()


class TestMonteCarloChunked:
    def test_matches_one_shot_runner_bitwise(self):
        one_shot = run_monte_carlo(BASE, draws=1000, seed=5)
        chunked = run_monte_carlo_chunked(
            BASE, draws=1000, seed=5, chunk_rows=128, cache=EvaluationCache()
        )
        np.testing.assert_array_equal(one_shot.samples, chunked.samples)
        assert one_shot.base_response == chunked.base_response

    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        path = tmp_path / "mc.npz"
        uninterrupted = run_monte_carlo_chunked(
            BASE, draws=1000, seed=5, chunk_rows=128
        )
        with pytest.raises(RunInterrupted) as excinfo:
            run_monte_carlo_chunked(
                BASE,
                draws=1000,
                seed=5,
                chunk_rows=128,
                checkpoint=path,
                cancel=CountingCancelToken(stop_after_checks=3),
            )
        error = excinfo.value
        assert 0 < error.completed < error.total == 1000
        assert error.checkpoint == path
        np.testing.assert_array_equal(
            error.partial, uninterrupted.samples[: error.completed]
        )
        assert not os.path.exists(f"{path}.tmp")  # atomic write left no junk
        resumed = run_monte_carlo_chunked(
            BASE, draws=1000, seed=5, chunk_rows=128,
            checkpoint=path, resume=True,
        )
        np.testing.assert_array_equal(uninterrupted.samples, resumed.samples)

    def test_resume_without_path_raises(self):
        with pytest.raises(CheckpointError) as excinfo:
            run_monte_carlo_chunked(BASE, draws=100, resume=True)
        assert excinfo.value.reason == "missing"

    def test_resume_from_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError) as excinfo:
            run_monte_carlo_chunked(
                BASE, draws=100, checkpoint=tmp_path / "nope.npz", resume=True
            )
        assert excinfo.value.reason == "missing"

    def test_resume_from_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "mc.npz"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError) as excinfo:
            run_monte_carlo_chunked(
                BASE, draws=100, checkpoint=path, resume=True
            )
        assert excinfo.value.reason == "corrupt"

    def test_resume_with_different_config_raises_mismatch(self, tmp_path):
        path = tmp_path / "mc.npz"
        with pytest.raises(RunInterrupted):
            run_monte_carlo_chunked(
                BASE, draws=512, seed=5, chunk_rows=64, checkpoint=path,
                cancel=CountingCancelToken(stop_after_checks=2),
            )
        for overrides in ({"seed": 6}, {"distribution": "uniform"}):
            with pytest.raises(CheckpointError) as excinfo:
                run_monte_carlo_chunked(
                    BASE, draws=512, chunk_rows=64, checkpoint=path,
                    resume=True, **{"seed": 5, **overrides},
                )
            assert excinfo.value.reason == "mismatch"

    def test_resume_rejects_checkpoint_of_other_kind(self, tmp_path):
        path = tmp_path / "ck.npz"
        with pytest.raises(RunInterrupted):
            sweep_grid_batched_chunked(
                BASE, GRIDS, chunk_rows=8, checkpoint=path,
                cancel=CountingCancelToken(stop_after_checks=1),
            )
        with pytest.raises(CheckpointError):
            run_monte_carlo_chunked(
                BASE, draws=100, checkpoint=path, resume=True
            )

    def test_interrupt_without_checkpoint_still_carries_partial(self):
        with pytest.raises(RunInterrupted) as excinfo:
            run_monte_carlo_chunked(
                BASE, draws=512, seed=5, chunk_rows=64,
                cancel=CountingCancelToken(stop_after_checks=2),
            )
        assert excinfo.value.checkpoint is None
        assert excinfo.value.partial.size == excinfo.value.completed

    def test_guarded_chunked_matches_guarded_one_shot(self):
        # A narrowed range forces the skip policy to mask some draws; the
        # chunked run must drop exactly the same ones.
        guard = GuardedEngine(policy=SKIP, ranges={"energy_kwh": (1.0, 20.0)})
        with pytest.warns(RobustnessWarning):
            one_shot = run_monte_carlo(BASE, draws=600, seed=9, guard=guard)
        with pytest.warns(RobustnessWarning):
            chunked = run_monte_carlo_chunked(
                BASE, draws=600, seed=9, chunk_rows=100, guard=guard
            )
        assert one_shot.samples.size < 600  # masking actually happened
        np.testing.assert_array_equal(one_shot.samples, chunked.samples)

    def test_chunk_rows_must_be_positive(self):
        with pytest.raises(Exception):
            run_monte_carlo_chunked(BASE, draws=10, chunk_rows=0)


class TestSweepChunked:
    def test_matches_one_shot_sweep_bitwise(self):
        one_shot = sweep_grid_batched(BASE, GRIDS, cache=EvaluationCache())
        chunked = sweep_grid_batched_chunked(
            BASE, GRIDS, chunk_rows=5, cache=EvaluationCache()
        )
        assert chunked.names == one_shot.names
        np.testing.assert_array_equal(
            one_shot.result.total_g, chunked.result.total_g
        )
        np.testing.assert_array_equal(
            one_shot.batch.column("fab_yield"), chunked.batch.column("fab_yield")
        )

    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        path = tmp_path / "sweep.npz"
        uninterrupted = sweep_grid_batched_chunked(BASE, GRIDS, chunk_rows=6)
        with pytest.raises(RunInterrupted) as excinfo:
            sweep_grid_batched_chunked(
                BASE, GRIDS, chunk_rows=6, checkpoint=path,
                cancel=CountingCancelToken(stop_after_checks=2),
            )
        assert 0 < excinfo.value.completed < len(uninterrupted)
        resumed = sweep_grid_batched_chunked(
            BASE, GRIDS, chunk_rows=6, checkpoint=path, resume=True
        )
        np.testing.assert_array_equal(
            uninterrupted.result.total_g, resumed.result.total_g
        )
        np.testing.assert_array_equal(
            uninterrupted.result.embodied_g, resumed.result.embodied_g
        )

    def test_resume_with_different_grid_raises_mismatch(self, tmp_path):
        path = tmp_path / "sweep.npz"
        with pytest.raises(RunInterrupted):
            sweep_grid_batched_chunked(
                BASE, GRIDS, chunk_rows=6, checkpoint=path,
                cancel=CountingCancelToken(stop_after_checks=1),
            )
        other = {"fab_yield": [0.5, 0.9], "energy_kwh": list(range(1, 9))}
        with pytest.raises(CheckpointError) as excinfo:
            sweep_grid_batched_chunked(
                BASE, other, chunk_rows=6, checkpoint=path, resume=True
            )
        assert excinfo.value.reason == "mismatch"

    def test_completed_run_leaves_loadable_checkpoint(self, tmp_path):
        path = tmp_path / "sweep.npz"
        result = sweep_grid_batched_chunked(
            BASE, GRIDS, chunk_rows=7, checkpoint=path
        )
        assert path.exists()
        state = load_store_state(path)
        assert not state.report.lossy
        assert int(state.meta["completed"]) == len(result)
        assert str(state.meta["kind"]) == "sweep"
        replayed = {"total_g": np.full(len(result), np.nan)}
        assert state.replay(replayed) == len(result)
        np.testing.assert_array_equal(replayed["total_g"], result.result.total_g)
