#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the live experiment registry.

Every table/figure experiment carries machine-checked "shape checks"
(paper claim vs regenerated value); this script renders them into the
paper-vs-measured record so the document can never drift from what the
code actually verifies.

Run:  python tools/generate_experiments_md.py > EXPERIMENTS.md
"""

from __future__ import annotations

from repro.experiments import run_all, run_all_extensions

HEADER = """\
# EXPERIMENTS — paper vs measured

Reproduction record for every table and figure in the evaluation of
*ACT: Designing Sustainable Computer Systems With An Architectural Carbon
Modeling Tool* (ISCA 2022).  This file is generated from the experiment
registry (`python tools/generate_experiments_md.py > EXPERIMENTS.md`); each
row below is a machine-checked claim — the same checks run in
`tests/test_experiments.py` and in `benchmarks/`.

Absolute numbers are not expected to match the authors' testbed (our
substrates are calibrated analytical models; see DESIGN.md for the
substitution notes).  The *shape* — who wins, by roughly what factor, where
crossovers fall — is what each check pins down.

Regenerate any single artifact with `act-repro experiment <id>`.

"""


def _render_results(results, lines) -> None:
    for result in results:
        lines.append(f"## {result.experiment_id}: {result.title}\n")
        for key, value in result.reference.items():
            lines.append(f"- *reference — {key}*: {value}")
        lines.append("")
        lines.append("| check | paper / expected | measured | status |")
        lines.append("| --- | --- | --- | --- |")
        for check in result.checks:
            status = "pass" if check.passed else "**FAIL**"
            lines.append(
                f"| {check.name} | {check.expected} | {check.observed} "
                f"| {status} |"
            )
        lines.append("")


def main() -> None:
    lines = [HEADER]
    results = run_all()
    extensions = run_all_extensions()
    passed_total = sum(sum(c.passed for c in r.checks) for r in results)
    check_total = sum(len(r.checks) for r in results)
    ext_passed = sum(sum(c.passed for c in r.checks) for r in extensions)
    ext_total = sum(len(r.checks) for r in extensions)
    lines.append(
        f"**Scorecard: {passed_total}/{check_total} checks pass across "
        f"{len(results)} paper artifacts, plus {ext_passed}/{ext_total} "
        f"across {len(extensions)} extension analyses.**\n"
    )
    lines.append("# Part 1 — paper artifacts\n")
    _render_results(results, lines)
    lines.append(
        "# Part 2 — extension analyses (levers the paper names but does "
        "not case-study)\n"
    )
    _render_results(extensions, lines)
    print("\n".join(lines))


if __name__ == "__main__":
    main()
