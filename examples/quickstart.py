#!/usr/bin/env python3
"""Quickstart: model a phone's carbon footprint with the ACT reproduction.

Builds an iPhone-11-class platform bottom-up (SoC die + DRAM + NAND),
reports its embodied carbon with a per-component breakdown, then combines
it with a use-phase profile (Eq. 1) to show where the emissions of a
modern mobile device actually come from.

Run:  python examples/quickstart.py
"""

from repro import (
    DramComponent,
    EnergyProfile,
    LogicComponent,
    Platform,
    SsdComponent,
    footprint,
)
from repro.core import units
from repro.data.regions import region_ci
from repro.reporting.tables import ascii_table


def main() -> None:
    # --- 1. Describe the hardware -----------------------------------------
    phone = Platform(
        "example phone",
        (
            # A 7 nm application processor, manufactured in the ACT default
            # fab (Taiwan grid + 25% renewables, 97% gas abatement).
            LogicComponent.at_node("SoC", area_mm2=98.5, node="7"),
            DramComponent.of("DRAM", capacity_gb=4, technology="lpddr4"),
            SsdComponent.of("NAND", capacity_gb=64, technology="nand_v3_tlc"),
        ),
    )

    report = phone.embodied()
    print("Embodied carbon (manufacturing), bottom-up:")
    rows = [
        (item.name, item.category, item.carbon_kg) for item in report.items
    ]
    rows.append(("IC packaging", "packaging", report.packaging_g / 1000.0))
    rows.append(("TOTAL", "", report.total_kg))
    print(ascii_table(("component", "category", "kg CO2e"), rows))
    print()

    # --- 2. Add the use phase (Eq. 1) --------------------------------------
    # Three years of service in the US grid; the phone averages 1 W while
    # active and is active 20% of the time; battery charging is ~90%
    # efficient, which inflates wall energy.
    lifetime_years = 3.0
    active_hours = units.years_to_hours(lifetime_years) * 0.20
    usage = EnergyProfile(
        power_w=1.0, duration_hours=active_hours, effectiveness=1.0 / 0.9
    )
    lifecycle = footprint(
        phone,
        energy=usage,
        ci_use_g_per_kwh=region_ci("united_states"),
        duration_hours=units.years_to_hours(lifetime_years),
        lifetime_years=lifetime_years,
    )

    print(f"Operational energy over {lifetime_years:.0f} years: "
          f"{usage.delivered_energy_kwh:.1f} kWh")
    print(f"Operational emissions: {lifecycle.operational_g / 1000:.2f} kg CO2e")
    print(f"Embodied emissions:    {lifecycle.amortized_embodied_g / 1000:.2f} "
          "kg CO2e")
    print(f"Total:                 {lifecycle.total_kg:.2f} kg CO2e")
    print(f"Embodied share:        {lifecycle.embodied_share:.0%}")
    print()
    print("Note the paper's headline: for modern mobile devices the embodied "
          "(manufacturing) side dominates —")
    print("efficiency work alone cannot decarbonize computing.")


if __name__ == "__main__":
    main()
