"""Benchmark: regenerate Table 12: published LCA vs ACT estimates."""


def test_bench_tab12(verify):
    """Table 12: published LCA vs ACT estimates — regenerate, print, and verify against the paper."""
    verify("tab12")
