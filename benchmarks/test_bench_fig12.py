"""Benchmark: regenerate Figure 12: NVDLA MAC sweep under PPA vs carbon metrics."""


def test_bench_fig12(verify):
    """Figure 12: NVDLA MAC sweep under PPA vs carbon metrics — regenerate, print, and verify against the paper."""
    verify("fig12")
