"""Result containers returned by the footprint model.

A footprint query produces a :class:`CarbonReport` (total, operational, and
amortized embodied emissions — Eq. 1) whose embodied side is itself an
itemized :class:`EmbodiedReport` (Eq. 3), so callers can always drill down to
the per-IC breakdown that distinguishes ACT from opaque LCAs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units


@dataclass(frozen=True)
class EmbodiedItem:
    """One component's contribution to the embodied footprint."""

    name: str
    category: str
    carbon_g: float
    ic_count: int

    @property
    def carbon_kg(self) -> float:
        """Embodied carbon in kg CO2."""
        return units.g_to_kg(self.carbon_g)


@dataclass(frozen=True)
class EmbodiedReport:
    """Itemized embodied carbon of a platform (Eq. 3).

    Attributes:
        items: Per-component contributions (excluding packaging).
        packaging_g: The ``Nr × Kr`` packaging term.
    """

    items: tuple[EmbodiedItem, ...]
    packaging_g: float

    @property
    def components_g(self) -> float:
        """Sum of all component contributions, excluding packaging."""
        return sum(item.carbon_g for item in self.items)

    @property
    def total_g(self) -> float:
        """Total embodied carbon (components + packaging), grams CO2."""
        return self.components_g + self.packaging_g

    @property
    def total_kg(self) -> float:
        """Total embodied carbon in kg CO2."""
        return units.g_to_kg(self.total_g)

    @property
    def ic_count(self) -> int:
        """Total number of packaged ICs (``Nr``)."""
        return sum(item.ic_count for item in self.items)

    def by_category(self) -> dict[str, float]:
        """Embodied grams grouped by component category, plus packaging."""
        grouped: dict[str, float] = {}
        for item in self.items:
            grouped[item.category] = grouped.get(item.category, 0.0) + item.carbon_g
        if self.packaging_g:
            grouped["packaging"] = self.packaging_g
        return grouped

    def category_share(self, category: str) -> float:
        """Fraction of the embodied total contributed by ``category``."""
        total = self.total_g
        if total == 0:
            return 0.0
        return self.by_category().get(category, 0.0) / total


@dataclass(frozen=True)
class CarbonReport:
    """End-to-end footprint of running a workload on a platform (Eq. 1).

    Attributes:
        operational_g: Use-phase emissions (``OPCF``).
        embodied: Itemized embodied report for the full platform (``ECF``).
        lifetime_fraction: The ``T / LT`` amortization factor applied to the
            embodied total.
    """

    operational_g: float
    embodied: EmbodiedReport
    lifetime_fraction: float

    @property
    def embodied_total_g(self) -> float:
        """Unamortized embodied total (``ECF``), grams CO2."""
        return self.embodied.total_g

    @property
    def amortized_embodied_g(self) -> float:
        """The ``(T/LT) × ECF`` share attributed to this workload."""
        return self.lifetime_fraction * self.embodied.total_g

    @property
    def total_g(self) -> float:
        """Eq. 1: operational plus amortized embodied emissions."""
        return self.operational_g + self.amortized_embodied_g

    @property
    def total_kg(self) -> float:
        """Eq. 1 total in kg CO2."""
        return units.g_to_kg(self.total_g)

    @property
    def operational_share(self) -> float:
        """Fraction of the total owed to the use phase."""
        total = self.total_g
        if total == 0:
            return 0.0
        return self.operational_g / total

    @property
    def embodied_share(self) -> float:
        """Fraction of the total owed to (amortized) manufacturing."""
        total = self.total_g
        if total == 0:
            return 0.0
        return self.amortized_embodied_g / total
