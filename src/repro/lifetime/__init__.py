"""Fleet / lifetime-extension modeling (the Recycle case study)."""

from repro.lifetime.efficiency_scaling import (
    PAPER_ANNUAL_IMPROVEMENT,
    average_relative_energy_over_life,
    catalog_annual_improvement,
    relative_energy_at_year,
)
from repro.lifetime.fleet import (
    FleetScenario,
    LifetimePoint,
    extension_saving,
    finite_horizon_footprint,
    lifetime_sweep,
    mobile_scenario,
    optimal_lifetime,
    steady_state_annual_footprint,
)

__all__ = [
    "FleetScenario",
    "LifetimePoint",
    "PAPER_ANNUAL_IMPROVEMENT",
    "average_relative_energy_over_life",
    "catalog_annual_improvement",
    "extension_saving",
    "finite_horizon_footprint",
    "lifetime_sweep",
    "mobile_scenario",
    "optimal_lifetime",
    "relative_energy_at_year",
    "steady_state_annual_footprint",
]
