"""The reference backend: the pinned numpy float64 Eq. 1-8 path.

This backend *is* the historical engine — it delegates to the
term-for-term kernel pass in :mod:`repro.engine.kernels`, whose operation
order matches the scalar :class:`~repro.analysis.scenario.ActScenario`
exactly.  The equivalence suite pins it to the scalar path at 1e-9, and
every other backend is judged against it.  Its own ``tolerance`` is 0.0:
there is no documented drift, because it defines the baseline.
"""

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.backends import REFERENCE, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.batch import ScenarioBatch
    from repro.engine.kernels import BatchResult


class BackendBase:
    """Shared identity plumbing for the concrete backends.

    Subclasses set ``name``, ``dtype``, and ``tolerance`` as class
    attributes and implement :meth:`evaluate`; the default
    :meth:`metric_columns` is the reference Table 2 expression set.
    """

    name: str = ""
    dtype: np.dtype = np.dtype(np.float64)
    tolerance: float = 0.0

    @cached_property
    def cache_token(self) -> str:
        """The identity the evaluation cache folds into its keys.

        Computed once per backend instance: the dtype-name lookup is
        surprisingly costly, and the service resolves this token on
        every cache peek.
        """
        return f"{self.name}/{np.dtype(self.dtype).name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} name={self.name!r} "
            f"dtype={np.dtype(self.dtype).name} tolerance={self.tolerance:g}>"
        )

    def metric_columns(
        self,
        carbon: np.ndarray,
        energy: np.ndarray,
        delay: np.ndarray,
        area: np.ndarray | None,
        names: tuple[str, ...],
    ) -> dict[str, np.ndarray]:
        """Table 2 metrics as the reference one-expression-per-metric set."""
        columns: dict[str, np.ndarray] = {}
        for name in names:
            if name == "EDP":
                columns[name] = energy * delay
            elif name == "EDAP":
                columns[name] = energy * delay * area
            elif name == "CDP":
                columns[name] = carbon * delay
            elif name == "CEP":
                columns[name] = carbon * energy
            elif name == "C2EP":
                columns[name] = carbon**2 * energy
            elif name == "CE2P":
                columns[name] = carbon * energy**2
        return columns


#: The kernel pass, bound on first use (a per-call ``from ... import``
#: would tax every batch with import-machinery overhead, and a module-top
#: import would recreate the kernels <-> backends cycle).
_kernel_pass = None


class ReferenceBackend(BackendBase):
    """The float64 numpy path, bit-identical to the historical engine."""

    name = REFERENCE
    dtype = np.dtype(np.float64)
    tolerance = 0.0

    def evaluate(self, batch: "ScenarioBatch") -> "BatchResult":
        global _kernel_pass
        if _kernel_pass is None:
            from repro.engine.kernels import _evaluate_batch_arrays

            _kernel_pass = _evaluate_batch_arrays
        return _kernel_pass(batch)


register_backend(ReferenceBackend())
