"""Fab yield models.

Eq. 5 divides the per-area fab footprint by the fab yield ``Y``: every wasted
die still paid its manufacturing emissions.  ACT's released tool uses a fixed
reference yield (0.875); the paper notes yield varies by node and by die
size.  This module provides:

* :class:`FixedYield` — a constant yield, matching the released ACT tool.
* :class:`PoissonYield` — classic Poisson defect-limited yield
  ``Y = exp(-D0 * A)``.
* :class:`MurphyYield` — Murphy's model ``Y = ((1 - exp(-D0*A)) / (D0*A))^2``,
  the industry-standard compromise for larger dies.
* Node-dependent default yields calibrated so that the fixed-area-budget
  comparison of Figure 13 (28 nm vs 16 nm ⇒ ~30% higher footprint) holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from repro.core.errors import UnknownEntryError
from repro.core.parameters import require_fraction, require_non_negative

#: The constant yield the released ACT tool assumes.
ACT_REFERENCE_YIELD = 0.875


class YieldModel(Protocol):
    """Anything that can map a die area to an expected fab yield."""

    def yield_for_area(self, area_cm2: float) -> float:
        """Expected yield (0, 1] for a die of ``area_cm2``."""
        ...


@dataclass(frozen=True)
class FixedYield:
    """Area-independent yield, as in the released ACT tool."""

    value: float = ACT_REFERENCE_YIELD

    def __post_init__(self) -> None:
        require_fraction("yield value", self.value)

    def yield_for_area(self, area_cm2: float) -> float:
        require_non_negative("area_cm2", area_cm2)
        return self.value


@dataclass(frozen=True)
class PoissonYield:
    """Poisson defect-limited yield: ``Y = exp(-D0 * A)``.

    Attributes:
        defect_density_per_cm2: Killer-defect density ``D0`` (defects/cm^2).
    """

    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        require_non_negative(
            "defect_density_per_cm2", self.defect_density_per_cm2
        )

    def yield_for_area(self, area_cm2: float) -> float:
        require_non_negative("area_cm2", area_cm2)
        return math.exp(-self.defect_density_per_cm2 * area_cm2)


@dataclass(frozen=True)
class MurphyYield:
    """Murphy's yield model: ``Y = ((1 - exp(-D0*A)) / (D0*A))^2``.

    Less pessimistic than Poisson for large dies; reduces to 1 as the
    defect-area product approaches zero.
    """

    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        require_non_negative(
            "defect_density_per_cm2", self.defect_density_per_cm2
        )

    def yield_for_area(self, area_cm2: float) -> float:
        require_non_negative("area_cm2", area_cm2)
        x = self.defect_density_per_cm2 * area_cm2
        if x == 0.0:
            return 1.0
        return ((1.0 - math.exp(-x)) / x) ** 2


#: Calibrated per-node default yields.  Newer nodes yield worse; the 28 nm vs
#: 16 nm gap is sized so a fixed-area design costs ~30% more carbon at 16 nm
#: (Figure 13, right).  Keys are feature sizes in nm.
NODE_DEFAULT_YIELD: dict[float, float] = {
    28.0: 0.96,
    20.0: 0.90,
    14.0: 0.82,
    10.0: 0.80,
    7.0: 0.76,
    5.0: 0.71,
    3.0: 0.66,
}


def default_yield_for_node(feature_nm: float) -> float:
    """Calibrated default yield for a process feature size.

    Feature sizes between table anchors interpolate linearly; sizes outside
    the 3-28 nm range raise.
    """
    anchors = sorted(NODE_DEFAULT_YIELD)
    if not anchors[0] <= feature_nm <= anchors[-1]:
        raise UnknownEntryError("process node yield", feature_nm, anchors)
    if feature_nm in NODE_DEFAULT_YIELD:
        return NODE_DEFAULT_YIELD[feature_nm]
    upper = next(a for a in anchors if a > feature_nm)
    lower = max(a for a in anchors if a < feature_nm)
    weight = (upper - feature_nm) / (upper - lower)
    return (
        NODE_DEFAULT_YIELD[lower] * weight
        + NODE_DEFAULT_YIELD[upper] * (1.0 - weight)
    )


@dataclass(frozen=True)
class NodeDefaultYield:
    """Area-independent yield taken from the calibrated per-node table."""

    feature_nm: float

    def yield_for_area(self, area_cm2: float) -> float:
        require_non_negative("area_cm2", area_cm2)
        return default_yield_for_node(self.feature_nm)
