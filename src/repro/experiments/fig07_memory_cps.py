"""Figure 7: embodied carbon per GB for DRAM, SSD, and HDD generations.

Regenerates the three panels from Tables 9-11 and checks the trends the
paper calls out: newer DRAM/NAND generations carry less carbon per GB, and
at commensurate nodes DRAM is more carbon-intense than SSD and HDD.
"""

from __future__ import annotations

from repro.data.dram import DEVICE_LEVEL, DRAM_TECHNOLOGIES
from repro.data.hdd import HDD_MODELS
from repro.data.ssd import SSD_TECHNOLOGIES
from repro.experiments.base import ExperimentResult, check_true
from repro.reporting.figures import FigureData, Series

EXPERIMENT_ID = "fig7"
TITLE = "Carbon per GB across DRAM / SSD / HDD technologies"


def run() -> ExperimentResult:
    """Regenerate Figure 7 and check the cross-technology trends."""
    dram = tuple(DRAM_TECHNOLOGIES.values())
    ssd = tuple(SSD_TECHNOLOGIES.values())
    hdd = tuple(HDD_MODELS.values())

    figures = (
        FigureData(
            title="Figure 7 (left): DRAM carbon per GB",
            x_label="technology",
            y_label="g CO2 / GB",
            series=(
                Series(
                    "DRAM",
                    tuple(t.label for t in dram),
                    tuple(t.cps_g_per_gb for t in dram),
                ),
            ),
        ),
        FigureData(
            title="Figure 7 (center): SSD carbon per GB",
            x_label="technology",
            y_label="g CO2 / GB",
            series=(
                Series(
                    "SSD",
                    tuple(t.label for t in ssd),
                    tuple(t.cps_g_per_gb for t in ssd),
                ),
            ),
        ),
        FigureData(
            title="Figure 7 (right): HDD carbon per GB",
            x_label="model",
            y_label="g CO2 / GB",
            series=(
                Series(
                    "HDD",
                    tuple(m.label for m in hdd),
                    tuple(m.cps_g_per_gb for m in hdd),
                ),
            ),
        ),
    )

    # Trend: among node-tagged device-level rows, newer nodes => lower CPS.
    dram_noded = sorted(
        (t for t in dram if t.feature_nm is not None and t.kind == DEVICE_LEVEL
         and t.name.startswith("ddr3")),
        key=lambda t: -t.feature_nm,
    )
    dram_trend = all(
        a.cps_g_per_gb >= b.cps_g_per_gb for a, b in zip(dram_noded, dram_noded[1:])
    )
    planar_nand = ("nand_30nm", "nand_20nm", "nand_10nm")
    nand_noded = sorted(
        (t for t in ssd if t.name in planar_nand),
        key=lambda t: -t.feature_nm,
    )
    nand_trend = all(
        a.cps_g_per_gb >= b.cps_g_per_gb for a, b in zip(nand_noded, nand_noded[1:])
    )

    # "At commensurate technology nodes, the carbon intensity of DRAM is
    # higher than that of SSD and HDD": compare the ~30/20/10 nm pairs.
    pairs = (("ddr3_30nm", "nand_30nm"), ("lpddr3_20nm", "nand_20nm"),
             ("ddr4_10nm", "nand_10nm"))
    dram_heavier = all(
        DRAM_TECHNOLOGIES[d].cps_g_per_gb > SSD_TECHNOLOGIES[s].cps_g_per_gb
        for d, s in pairs
    )
    hdd_max = max(m.cps_g_per_gb for m in hdd)
    dram_min = min(t.cps_g_per_gb for t in dram)

    checks = (
        check_true(
            "DRAM carbon/GB falls with newer nodes (DDR3 ladder)",
            dram_trend, "monotone" if dram_trend else "non-monotone",
            "600 -> 315 -> 230 g/GB",
        ),
        check_true(
            "NAND carbon/GB falls with newer nodes",
            nand_trend, "monotone" if nand_trend else "non-monotone",
            "30 -> 15 -> 10 g/GB",
        ),
        check_true(
            "DRAM is more carbon-intense than SSD at commensurate nodes",
            dram_heavier, "holds at 30/20/10 nm", "DRAM > SSD per GB",
        ),
        check_true(
            "every DRAM row exceeds every HDD row per GB",
            dram_min > hdd_max,
            f"min DRAM {dram_min:.3g} vs max HDD {hdd_max:.3g}",
            "DRAM > HDD per GB",
        ),
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=figures,
        reference={
            "tables": "ACT Tables 9, 10, 11",
            "trend": "newer DRAM/NAND nodes have lower carbon per GB; DRAM "
            "is the most carbon-intense per GB",
        },
        checks=checks,
    )
