"""Fab layer: yield models, energy mixes, scenarios, and CPA curves."""

import math

import pytest

from repro.core.errors import UnknownEntryError
from repro.core.parameters import ParameterError
from repro.data.regions import region_ci
from repro.fabs.cpa import cpa_curve, cpa_point
from repro.fabs.energy_mix import (
    DEFAULT_FAB_MIX,
    FAB_ENERGY_MIXES,
    fab_energy_mix,
    grid_with_renewables,
)
from repro.fabs.fab import FabScenario, default_fab
from repro.fabs.yield_models import (
    ACT_REFERENCE_YIELD,
    FixedYield,
    MurphyYield,
    NodeDefaultYield,
    PoissonYield,
    default_yield_for_node,
)


class TestYieldModels:
    def test_fixed_yield_default_matches_act(self):
        assert FixedYield().yield_for_area(2.0) == ACT_REFERENCE_YIELD == 0.875

    def test_fixed_yield_ignores_area(self):
        model = FixedYield(0.9)
        assert model.yield_for_area(0.1) == model.yield_for_area(10.0)

    def test_fixed_yield_validates(self):
        with pytest.raises(ParameterError):
            FixedYield(0.0)

    def test_poisson_formula(self):
        model = PoissonYield(defect_density_per_cm2=0.5)
        assert model.yield_for_area(1.0) == pytest.approx(math.exp(-0.5))

    def test_poisson_zero_area_is_perfect(self):
        assert PoissonYield(1.0).yield_for_area(0.0) == 1.0

    def test_poisson_decreases_with_area(self):
        model = PoissonYield(0.3)
        assert model.yield_for_area(2.0) < model.yield_for_area(1.0)

    def test_murphy_zero_area_is_perfect(self):
        assert MurphyYield(1.0).yield_for_area(0.0) == 1.0

    def test_murphy_less_pessimistic_than_poisson_for_large_dies(self):
        poisson = PoissonYield(0.5)
        murphy = MurphyYield(0.5)
        assert murphy.yield_for_area(5.0) > poisson.yield_for_area(5.0)

    def test_murphy_formula(self):
        model = MurphyYield(1.0)
        x = 2.0
        expected = ((1 - math.exp(-x)) / x) ** 2
        assert model.yield_for_area(2.0) == pytest.approx(expected)

    def test_node_defaults_fall_with_feature_size(self):
        yields = [default_yield_for_node(nm) for nm in (28, 20, 14, 10, 7, 5, 3)]
        assert yields == sorted(yields, reverse=True)

    def test_node_default_interpolates(self):
        y16 = default_yield_for_node(16)
        assert default_yield_for_node(14) < y16 < default_yield_for_node(20)

    def test_node_default_out_of_range(self):
        with pytest.raises(UnknownEntryError):
            default_yield_for_node(45)

    def test_node_default_model_wrapper(self):
        model = NodeDefaultYield(7.0)
        assert model.yield_for_area(1.0) == default_yield_for_node(7.0)


class TestEnergyMix:
    def test_default_is_25_renewable(self):
        assert DEFAULT_FAB_MIX.name == "taiwan_25_renewable"
        expected = 0.75 * region_ci("taiwan") + 0.25 * 41.0
        assert DEFAULT_FAB_MIX.ci_g_per_kwh == pytest.approx(expected)

    def test_named_scenarios_present(self):
        for name in ("coal", "taiwan_grid", "solar", "carbon_free"):
            assert name in FAB_ENERGY_MIXES

    def test_lookup_normalizes(self):
        assert fab_energy_mix("Taiwan Grid").ci_g_per_kwh == region_ci("taiwan")

    def test_unknown_mix(self):
        with pytest.raises(UnknownEntryError):
            fab_energy_mix("fusion")

    def test_grid_with_renewables_bounds(self):
        assert grid_with_renewables(500.0, 0.0) == pytest.approx(500.0)
        assert grid_with_renewables(500.0, 1.0) == pytest.approx(41.0)

    def test_grid_with_renewables_custom_ci(self):
        assert grid_with_renewables(500.0, 0.5, renewable_ci=0.0) == pytest.approx(
            250.0
        )

    def test_grid_with_renewables_validates_share(self):
        with pytest.raises(ParameterError):
            grid_with_renewables(500.0, 1.5)


class TestFabScenario:
    def test_default_fab_uses_node_yield(self):
        fab = default_fab("28")
        assert fab.params_for_area(1.0).fab_yield == default_yield_for_node(28)

    def test_cpa_matches_manual_eq5(self):
        fab = FabScenario.for_node(
            "10", energy_mix="taiwan_grid", abatement=0.95,
            yield_model=FixedYield(1.0),
        )
        node = fab.node
        expected = region_ci("taiwan") * node.epa_kwh_per_cm2 + 240.0 + 500.0
        assert fab.cpa_g_per_cm2() == pytest.approx(expected)

    def test_with_energy_mix_changes_only_supply(self):
        base = default_fab("7")
        solar = base.with_energy_mix("solar")
        assert solar.node == base.node
        assert solar.cpa_g_per_cm2() < base.cpa_g_per_cm2()

    def test_with_ci_custom_supply(self):
        fab = default_fab("7").with_ci(0.0, label="test")
        params = fab.params_for_area(1.0)
        assert params.ci_fab_g_per_kwh == 0.0
        # With zero-carbon electricity only GPA + MPA remain (scaled by yield).
        expected = (params.gpa_g_per_cm2 + params.mpa_g_per_cm2) / params.fab_yield
        assert fab.cpa_g_per_cm2() == pytest.approx(expected)

    def test_numeric_node_accepted(self):
        assert default_fab(16).node.feature_nm == 16.0

    def test_scenario_accepts_explicit_mix_object(self):
        mix = fab_energy_mix("coal")
        fab = FabScenario.for_node("5", energy_mix=mix)
        assert fab.energy_mix.ci_g_per_kwh == 820.0

    def test_abatement_propagates(self):
        lax = FabScenario.for_node("5", abatement=0.95)
        strict = FabScenario.for_node("5", abatement=0.99)
        assert strict.cpa_g_per_cm2() < lax.cpa_g_per_cm2()


class TestCpaCurve:
    def test_full_ladder_length(self):
        assert len(cpa_curve()) == 9

    def test_band_ordering_everywhere(self):
        for point in cpa_curve():
            assert point.cpa_solar < point.cpa_default < point.cpa_taiwan_grid

    def test_perfect_yield_lowers_cpa(self):
        with_yield = cpa_point("7")
        without = cpa_point("7", perfect_yield=True)
        assert without.cpa_default < with_yield.cpa_default

    def test_28nm_default_near_1_1_kg(self):
        # Figure 6 bottom starts near ~1 kg CO2/cm^2 at 28 nm.
        point = cpa_point("28")
        assert 900.0 < point.cpa_default < 1300.0

    def test_3nm_default_near_3_kg(self):
        point = cpa_point("3")
        assert 2700.0 < point.cpa_default < 3700.0

    def test_euv_variant_more_intense_than_immersion(self):
        assert cpa_point("7-euv").cpa_default > cpa_point("7").cpa_default
