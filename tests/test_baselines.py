"""Prior-work baselines (GreenChip-style inventory, exergy accounting)."""

import pytest

from repro.baselines import exergy, greenchip
from repro.baselines.comparison import exergy_blind_spot, greenchip_vs_act
from repro.core.errors import ParameterError


class TestGreenChip:
    def test_supported_range(self):
        assert greenchip.supports(45.0)
        assert greenchip.supports(28.0)
        assert not greenchip.supports(7.0)
        assert not greenchip.supports(130.0)

    def test_characterized_nodes_not_extrapolated(self):
        for node in (90.0, 65.0, 45.0, 28.0):
            assert not greenchip.cpa_estimate(node).extrapolated

    def test_modern_nodes_flagged(self):
        assert greenchip.cpa_estimate(7.0).extrapolated
        assert greenchip.cpa_estimate(3.0).extrapolated

    def test_interpolation_between_rows(self):
        mid = greenchip.cpa_estimate(55.0).cpa_g_per_cm2
        low = greenchip.cpa_estimate(65.0).cpa_g_per_cm2
        high = greenchip.cpa_estimate(45.0).cpa_g_per_cm2
        assert low < mid < high

    def test_die_embodied(self):
        estimate = greenchip.cpa_estimate(45.0)
        assert greenchip.die_embodied_g(2.0, 45.0) == pytest.approx(
            2.0 * estimate.cpa_g_per_cm2
        )

    def test_negative_area_rejected(self):
        with pytest.raises(ParameterError):
            greenchip.die_embodied_g(-1.0, 45.0)

    def test_invalid_node_rejected(self):
        with pytest.raises(ParameterError):
            greenchip.cpa_estimate(0.0)


class TestExergy:
    def test_account_composition(self):
        result = exergy.account(
            soc_area_cm2=1.0, epa_kwh_per_cm2=1.5, use_energy_kwh=10.0
        )
        assert result.fabrication_kwh == pytest.approx(
            1.5 + exergy.MATERIALS_KWH_PER_CM2
        )
        assert result.total_kwh == pytest.approx(result.fabrication_kwh + 10.0)

    def test_yield_inflates_fabrication(self):
        perfect = exergy.account(
            soc_area_cm2=1.0, epa_kwh_per_cm2=1.5, use_energy_kwh=0.0
        )
        lossy = exergy.account(
            soc_area_cm2=1.0, epa_kwh_per_cm2=1.5, use_energy_kwh=0.0,
            fab_yield=0.5,
        )
        assert lossy.fabrication_kwh == pytest.approx(2 * perfect.fabrication_kwh)

    def test_memory_terms(self):
        result = exergy.account(
            soc_area_cm2=0.0, epa_kwh_per_cm2=0.0, use_energy_kwh=0.0,
            dram_gb=10.0, ssd_gb=100.0,
        )
        assert result.fabrication_kwh == pytest.approx(
            10 * exergy.DRAM_KWH_PER_GB + 100 * exergy.SSD_KWH_PER_GB
        )

    def test_fabrication_share(self):
        result = exergy.account(
            soc_area_cm2=1.0, epa_kwh_per_cm2=1.0, use_energy_kwh=2.4
        )
        assert result.fabrication_share == pytest.approx(0.5)

    def test_zero_account(self):
        result = exergy.account(
            soc_area_cm2=0.0, epa_kwh_per_cm2=0.0, use_energy_kwh=0.0
        )
        assert result.fabrication_share == 0.0


class TestComparisons:
    def test_act_exceeds_baseline_everywhere(self):
        for row in greenchip_vs_act():
            assert row.act_over_baseline > 1.0, row.node

    def test_gap_grows_toward_advanced_nodes(self):
        rows = {row.node: row.act_over_baseline for row in greenchip_vs_act()}
        assert rows["3"] > rows["7"] > rows["14"] > rows["28"]

    def test_only_28nm_is_in_range(self):
        rows = greenchip_vs_act()
        assert [r.node for r in rows if not r.baseline_extrapolated] == ["28"]

    def test_exergy_blind_spot(self):
        result = exergy_blind_spot()
        assert result.exergy_separation == pytest.approx(1.0)
        assert result.act_separation > 1.5

    def test_blind_spot_scales_with_node(self):
        # The dirtier the fab-energy picture at a node, the bigger ACT's
        # separation; exergy stays blind regardless.
        for node in ("28", "7", "3"):
            result = exergy_blind_spot(node=node)
            assert result.exergy_separation == pytest.approx(1.0)
            assert result.act_separation > 1.0
