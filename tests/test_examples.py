"""Every shipped example must run to completion through its main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_examples_directory_is_populated():
    assert len(EXAMPLE_FILES) >= 3, "the deliverable requires >= 3 examples"


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_runs(path, capsys):
    module = _load_module(path)
    assert hasattr(module, "main"), f"{path.name} must expose main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"
