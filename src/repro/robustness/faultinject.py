"""Deterministic fault injection for scenario columns and data tables.

Carbon models feed real design decisions, so "what happens when an input
is corrupt?" must be a tested property, not a hope.  This module corrupts
inputs *on purpose* — reproducibly, from a seeded RNG — so the test suite
can prove that every fault class either raises a typed
:class:`~repro.core.errors.ReproError` somewhere in the stack or surfaces
as an explicitly warned, masked result.  The fault classes mirror the ways
real data goes bad:

========== =========================================================
``nan``    A sensor/parse hole: values become NaN.
``inf``    An overflow artifact: values become ±Inf.
``sign``   A sign flip: values are negated.
``scale``  A unit-scale error (g↔kg, GB↔TB): a whole column or table
           row is multiplied by a constant factor.
``drop``   A dropped entry: a column row or table key disappears.
``dup``    A duplicated entry: a column row or table label appears
           twice.
========== =========================================================

Everything returns *copies* — the bundled tables and caller columns are
never mutated — plus a :class:`FaultRecord` describing exactly what was
corrupted, so tests can assert detection against a clean-run oracle.

Table rows are frozen, eagerly-validated dataclasses; corrupt values are
planted with ``object.__setattr__`` on shallow copies, simulating data
that bypassed construction-time validation (e.g. loaded from disk).
"""

from __future__ import annotations

import copy
import dataclasses
import os
import signal
import time
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import ParameterError
from repro.robustness.durability import DurableIO

#: Fault classes, in the order the smoke suite sweeps them.
FAULT_NAN = "nan"
FAULT_INF = "inf"
FAULT_SIGN = "sign"
FAULT_SCALE = "scale"
FAULT_DROP = "drop"
FAULT_DUP = "dup"
COLUMN_FAULTS = (FAULT_NAN, FAULT_INF, FAULT_SIGN, FAULT_SCALE, FAULT_DROP, FAULT_DUP)
TABLE_FAULTS = COLUMN_FAULTS

#: Unit-scale error factor: grams read as kilograms (or vice versa).
DEFAULT_SCALE_FACTOR = 1000.0


@dataclasses.dataclass(frozen=True)
class FaultRecord:
    """What a single injection corrupted.

    Attributes:
        kind: The fault class (one of :data:`COLUMN_FAULTS`).
        target: ``"column:<name>"`` or ``"table:<name>"``.
        indices: Corrupted row indices (column faults).
        keys: Corrupted table keys (table faults).
        factor: The multiplier applied (``scale`` faults).
    """

    kind: str
    target: str
    indices: tuple[int, ...] = ()
    keys: tuple[str, ...] = ()
    factor: float | None = None

    def __str__(self) -> str:
        where = (
            f"rows {list(self.indices)}"
            if self.indices
            else f"keys {list(self.keys)}"
        )
        suffix = f" ×{self.factor:g}" if self.factor is not None else ""
        return f"{self.kind} fault on {self.target} ({where}){suffix}"


def _pick_indices(
    rng: np.random.Generator, size: int, fraction: float
) -> np.ndarray:
    count = max(1, int(round(size * fraction)))
    return np.sort(rng.choice(size, size=min(count, size), replace=False))


def inject_column_fault(
    columns: Mapping[str, np.ndarray],
    name: str,
    kind: str,
    *,
    rng: np.random.Generator,
    fraction: float = 0.02,
    factor: float = DEFAULT_SCALE_FACTOR,
) -> tuple[dict[str, np.ndarray], FaultRecord]:
    """A copy of ``columns`` with one column corrupted.

    ``nan``/``inf``/``sign`` hit a sampled ``fraction`` of rows; ``scale``
    multiplies the *whole* column (unit errors are systematic); ``drop``
    and ``dup`` change the column's length, modeling a misaligned data
    feed.

    Args:
        columns: Column arrays keyed by scenario field name.
        name: The column to corrupt (must be present).
        kind: One of :data:`COLUMN_FAULTS`.
        rng: Seeded generator — identical seeds inject identical faults.
        fraction: Share of rows corrupted by the per-row fault classes.
        factor: Multiplier for ``scale`` faults.
    """
    if name not in columns:
        raise ParameterError(f"no column {name!r} to corrupt")
    corrupted = {key: np.array(value) for key, value in columns.items()}
    column = corrupted[name]
    target = f"column:{name}"
    if kind == FAULT_NAN:
        indices = _pick_indices(rng, column.size, fraction)
        column[indices] = np.nan
        record = FaultRecord(kind, target, indices=tuple(map(int, indices)))
    elif kind == FAULT_INF:
        indices = _pick_indices(rng, column.size, fraction)
        signs = np.where(rng.random(indices.size) < 0.5, -np.inf, np.inf)
        column[indices] = signs
        record = FaultRecord(kind, target, indices=tuple(map(int, indices)))
    elif kind == FAULT_SIGN:
        indices = _pick_indices(rng, column.size, fraction)
        column[indices] = -column[indices]
        record = FaultRecord(kind, target, indices=tuple(map(int, indices)))
    elif kind == FAULT_SCALE:
        corrupted[name] = column * factor
        record = FaultRecord(
            kind, target, indices=tuple(range(column.size)), factor=factor
        )
    elif kind == FAULT_DROP:
        index = int(rng.integers(column.size))
        corrupted[name] = np.delete(column, index)
        record = FaultRecord(kind, target, indices=(index,))
    elif kind == FAULT_DUP:
        index = int(rng.integers(column.size))
        corrupted[name] = np.insert(column, index, column[index])
        record = FaultRecord(kind, target, indices=(index,))
    else:
        raise ParameterError(
            f"unknown column fault {kind!r}; use one of {COLUMN_FAULTS}"
        )
    return corrupted, record


def _corrupt_row(row: object, attribute: str, value: float) -> object:
    """A shallow copy of a frozen table row with one attribute overwritten.

    Bypasses ``__post_init__`` validation on purpose — the whole point is
    modeling values that arrived without passing through the constructors.
    """
    clone = copy.copy(row)
    object.__setattr__(clone, attribute, value)
    return clone


def inject_table_fault(
    rows: Mapping[str, object],
    kind: str,
    *,
    rng: np.random.Generator,
    attribute: str = "cps_g_per_gb",
    factor: float = DEFAULT_SCALE_FACTOR,
) -> tuple[dict[str, object], FaultRecord]:
    """A corrupted copy of a bundled data table.

    ``nan``/``inf``/``sign``/``scale`` overwrite ``attribute`` on one
    sampled row; ``drop`` removes a key; ``dup`` inserts an alias key
    whose row carries a duplicate label (what a bad merge produces).

    Args:
        rows: A table mapping (e.g. ``DRAM_TECHNOLOGIES``).  Never mutated.
        kind: One of :data:`TABLE_FAULTS`.
        rng: Seeded generator.
        attribute: The numeric row attribute the value faults overwrite.
        factor: Multiplier for ``scale`` faults.
    """
    if not rows:
        raise ParameterError("cannot corrupt an empty table")
    corrupted: dict[str, object] = dict(rows)
    keys = sorted(corrupted)
    key = keys[int(rng.integers(len(keys)))]
    target = f"table:{attribute}"
    if kind == FAULT_NAN:
        corrupted[key] = _corrupt_row(corrupted[key], attribute, float("nan"))
    elif kind == FAULT_INF:
        corrupted[key] = _corrupt_row(corrupted[key], attribute, float("inf"))
    elif kind == FAULT_SIGN:
        original = getattr(corrupted[key], attribute)
        corrupted[key] = _corrupt_row(corrupted[key], attribute, -original)
    elif kind == FAULT_SCALE:
        original = getattr(corrupted[key], attribute)
        corrupted[key] = _corrupt_row(
            corrupted[key], attribute, original * factor
        )
        return corrupted, FaultRecord(kind, target, keys=(key,), factor=factor)
    elif kind == FAULT_DROP:
        del corrupted[key]
    elif kind == FAULT_DUP:
        alias = f"{key}__dup"
        corrupted[alias] = corrupted[key]
        return corrupted, FaultRecord(kind, target, keys=(key, alias))
    else:
        raise ParameterError(
            f"unknown table fault {kind!r}; use one of {TABLE_FAULTS}"
        )
    return corrupted, FaultRecord(kind, target, keys=(key,))


# --------------------------------------------------------------------------
# Process-level chaos: faults against the execution substrate, not the data.
#
# The column/table faults above corrupt *inputs*; these corrupt the
# *machinery* — kill a worker mid-shard, stall it past its deadline, drop
# its result message, hand it a dangling shared-memory name — so every
# recovery path in the shard supervisor is provable in tests rather than
# assumed.  Faults are armed through a filesystem token budget: each
# planned firing is one token file, consumed atomically (``os.remove``)
# by whichever process fires it.  Tokens survive fork, spawn, respawn,
# and retry — exactly the chaos lifecycle — and "already consumed" is a
# natural no-op, so a retried shard runs clean once its fault has fired.
# --------------------------------------------------------------------------

#: Process fault classes (see :class:`ProcessFault`).
FAULT_KILL = "kill"
FAULT_STALL = "stall"
FAULT_DROP_RESULT = "drop_result"
FAULT_CORRUPT_SHM = "corrupt_shm"
PROCESS_FAULTS = (FAULT_KILL, FAULT_STALL, FAULT_DROP_RESULT, FAULT_CORRUPT_SHM)

#: The segment name planted by ``corrupt_shm`` — attaching to it raises
#: ``FileNotFoundError`` (an infrastructure fault, so the supervisor
#: retries; the retried shard gets the parent's pristine handle).
CORRUPT_SHM_NAME = "repro_faultinject_dangling"


class ResultDropped(BaseException):
    """Chaos signal: the shard ran, but its result message vanished.

    Deliberately a ``BaseException`` so no model-level ``except
    Exception`` can absorb it, and flagged with
    :attr:`repro_dropped_result` so the worker loop's transport layer can
    recognize it without importing this module (the parallel package must
    not depend on the robustness package).
    """

    repro_dropped_result = True


@dataclasses.dataclass(frozen=True)
class ProcessFault:
    """One planned fault against the worker fleet.

    Attributes:
        kind: One of :data:`PROCESS_FAULTS` — ``"kill"`` (SIGKILL the
            worker at shard start), ``"stall"`` (sleep past the shard
            deadline), ``"drop_result"`` (evaluate, then lose the result
            message), ``"corrupt_shm"`` (dangle the task's shared-memory
            handles before attach).
        shard: Only fire on this shard index; ``None`` fires on any.
        times: How many firings this fault is budgeted (each firing
            consumes one token; retried shards run clean once spent).
        stall_seconds: How long a ``"stall"`` fault sleeps.
    """

    kind: str
    shard: int | None = None
    times: int = 1
    stall_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in PROCESS_FAULTS:
            raise ParameterError(
                f"unknown process fault {self.kind!r}; "
                f"use one of {PROCESS_FAULTS}"
            )
        if self.times < 1:
            raise ParameterError(
                f"a process fault must fire at least once, got times={self.times}"
            )
        if not self.stall_seconds >= 0.0:
            raise ParameterError(
                f"stall_seconds must be >= 0, got {self.stall_seconds!r}"
            )


class ProcessFaultPlan:
    """An armed set of process faults with a filesystem token budget.

    The plan directory holds one token file per planned firing.  The
    parent creates the plan and threads its picklable :meth:`spec` into
    each shard task; workers consume tokens as faults fire.  The
    filesystem is the one shared mutable store that survives every chaos
    event we inject (worker death, respawn, interpreter restart under
    ``spawn``), which is what makes ``times=N`` budgets exact.
    """

    def __init__(self, root: Path, faults: Sequence[ProcessFault]):
        self.root = Path(root)
        self.faults = tuple(faults)

    @classmethod
    def create(
        cls, root: "Path | str", faults: Sequence[ProcessFault]
    ) -> "ProcessFaultPlan":
        """Arm ``faults`` under ``root`` (created; must be writable)."""
        plan = cls(Path(root), faults)
        plan.root.mkdir(parents=True, exist_ok=True)
        for index, fault in enumerate(plan.faults):
            for firing in range(fault.times):
                plan._token(index, firing).touch()
        return plan

    def _token(self, index: int, firing: int) -> Path:
        return self.root / f"{index:03d}-{firing:02d}.tok"

    def spec(self) -> dict:
        """The picklable description workers fire faults from."""
        return {
            "faults": [
                {
                    "kind": fault.kind,
                    "shard": fault.shard,
                    "stall_seconds": fault.stall_seconds,
                    "tokens": [
                        str(self._token(index, firing))
                        for firing in range(fault.times)
                    ],
                }
                for index, fault in enumerate(self.faults)
            ]
        }

    def remaining(self, index: int = 0) -> int:
        """Unconsumed firings left in fault ``index``'s budget."""
        fault = self.faults[index]
        return sum(
            self._token(index, firing).exists()
            for firing in range(fault.times)
        )


def _consume_token(paths: Sequence[str]) -> bool:
    """Atomically claim one firing from a fault's token budget.

    ``os.remove`` either succeeds in exactly one process or raises
    ``FileNotFoundError`` — no lock needed even with racing workers.
    """
    for path in paths:
        try:
            os.remove(path)
        except FileNotFoundError:
            continue
        return True
    return False


def apply_process_faults(
    spec: Mapping, shard: int, task: dict, stage: str
) -> None:
    """Fire any armed faults matching this shard at this stage.

    Called by the worker's shard entry point at ``stage="start"`` (before
    transport attach — ``kill``/``stall``/``corrupt_shm`` fire here) and
    ``stage="finish"`` (after evaluation — ``drop_result`` fires here, by
    raising :class:`ResultDropped` so the completed work's message never
    reaches the parent).
    """
    for fault in spec["faults"]:
        if fault["shard"] is not None and fault["shard"] != shard:
            continue
        kind = fault["kind"]
        fires_now = (
            stage == "finish"
            if kind == FAULT_DROP_RESULT
            else stage == "start"
        )
        if not fires_now or not _consume_token(fault["tokens"]):
            continue
        if kind == FAULT_KILL:
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == FAULT_STALL:
            time.sleep(fault["stall_seconds"])
        elif kind == FAULT_CORRUPT_SHM:
            for side in ("input", "output"):
                entry = task.get(side)
                if entry is not None and entry[0] == "shm":
                    _, (_, layout) = entry
                    task[side] = (entry[0], (CORRUPT_SHM_NAME, layout))
        elif kind == FAULT_DROP_RESULT:
            raise ResultDropped(
                f"chaos: dropped result message for shard {shard}"
            )


# --------------------------------------------------------------------------
# Filesystem fault injection (crash points, torn writes, ENOSPC/EIO)
# --------------------------------------------------------------------------

#: I/O fault kinds accepted by :class:`IOFault`.
IO_FAULT_CRASH = "crash"
IO_FAULT_TORN = "torn"
IO_FAULT_DROP_FSYNC = "drop_fsync"
IO_FAULT_ENOSPC = "enospc"
IO_FAULT_EIO = "eio"
IO_FAULT_TORN_RENAME = "torn_rename"
IO_FAULTS = (
    IO_FAULT_CRASH,
    IO_FAULT_TORN,
    IO_FAULT_DROP_FSYNC,
    IO_FAULT_ENOSPC,
    IO_FAULT_EIO,
    IO_FAULT_TORN_RENAME,
)


class CrashPoint(BaseException):
    """An injected crash fired at a registered durability boundary.

    Raised by exception-mode :class:`FaultyIO` *after* simulating the
    power loss (un-fsynced bytes truncated, un-dir-fsynced renames rolled
    back), so the on-disk state the handler observes is exactly what a
    real kill at that instant could have left.  A ``BaseException`` so no
    recovery/retry layer can accidentally swallow it.
    """

    def __init__(self, point: str, occurrence: int):
        super().__init__(f"injected crash at {point!r} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


@dataclasses.dataclass(frozen=True)
class IOFault:
    """One deterministic filesystem fault, armed at a named crash point.

    Attributes:
        kind: One of :data:`IO_FAULTS` — ``crash`` (die at the point),
            ``torn`` (write only a byte prefix, then die), ``drop_fsync``
            (the fsync silently does nothing — pair with a later
            ``crash`` to lose the lied-about bytes), ``enospc``/``eio``
            (the operation fails with that ``errno``), ``torn_rename``
            (destination updated, source left behind, then die).
        point: The registered crash-point name to fire at (see
            :data:`~repro.robustness.durability.CRASH_POINTS`).
        occurrence: Fire on the Nth time the point is reached (1-based).
        tear_bytes: For ``torn``: how many leading bytes survive.
    """

    kind: str
    point: str
    occurrence: int = 1
    tear_bytes: int = 37

    def __post_init__(self) -> None:
        if self.kind not in IO_FAULTS:
            raise ParameterError(
                f"unknown I/O fault kind {self.kind!r}; expected one of {IO_FAULTS}"
            )
        if self.occurrence < 1:
            raise ParameterError("IOFault.occurrence is 1-based and must be >= 1")


class FaultyIO(DurableIO):
    """A :class:`~repro.robustness.durability.DurableIO` that injects faults.

    Two crash modes:

    * ``"sigkill"`` — the fault delivers a real ``SIGKILL`` to the
      process.  Used by the subprocess torture campaigns: durability is
      then proven against the actual kernel page cache, not a simulation.
    * ``"exception"`` — the fault simulates the power loss in-process
      (files truncated back to their last-fsynced size, renames not yet
      pinned by a directory fsync rolled back, trimmed log tails
      resurrected) and raises :class:`CrashPoint`.  Used for in-process
      campaigns (e.g. ``workers=4``, where SIGKILLing the parent would
      orphan daemonized pool workers) and for the property tests.

    With an empty fault list the layer is a pure recorder: it performs
    every operation verbatim while counting reached crash points in
    :attr:`points_reached` — how the torture harness enumerates a
    workload's boundary trace before arming faults against it.

    Not thread-safe; install per-run via
    :func:`~repro.robustness.durability.use_durable_io`.
    """

    def __init__(
        self,
        faults: Sequence[IOFault] = (),
        *,
        mode: str = "exception",
    ):
        if mode not in ("exception", "sigkill"):
            raise ParameterError(
                f"unknown FaultyIO mode {mode!r}; expected 'exception' or 'sigkill'"
            )
        self.faults = tuple(faults)
        self.mode = mode
        #: point name -> times reached, in this layer's lifetime.
        self.points_reached: dict[str, int] = {}
        #: every point reached, in order.
        self.trace: list[str] = []
        self._consumed: set[int] = set()
        self._pending: IOFault | None = None
        self._handles: dict[int, tuple[str, str]] = {}
        self._synced: dict[str, int] = {}
        self._pending_renames: list[tuple[str, str, "bytes | None"]] = []
        self._pending_tails: dict[str, bytes] = {}

    # -- fault dispatch ----------------------------------------------------

    def reached(self, point: str) -> None:
        """Count the crossing and fire any fault armed at this point."""
        count = self.points_reached.get(point, 0) + 1
        self.points_reached[point] = count
        self.trace.append(point)
        self._pending = None
        for fault in self.faults:
            if (
                fault.point != point
                or fault.occurrence != count
                or id(fault) in self._consumed
            ):
                continue
            self._consumed.add(id(fault))
            if fault.kind == IO_FAULT_CRASH:
                self._crash(point, count)
            elif fault.kind == IO_FAULT_ENOSPC:
                raise OSError(28, f"injected ENOSPC at {point}")  # errno.ENOSPC
            elif fault.kind == IO_FAULT_EIO:
                raise OSError(5, f"injected EIO at {point}")  # errno.EIO
            else:
                # torn / drop_fsync / torn_rename are honored by the
                # primitive this point guards, which runs next.
                self._pending = fault
            return

    def _take_pending(self, kind: str) -> "IOFault | None":
        fault = self._pending
        if fault is not None and fault.kind == kind:
            self._pending = None
            return fault
        return None

    def _crash(self, point: str, occurrence: int) -> "None":
        if self.mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        self._power_loss()
        raise CrashPoint(point, occurrence)

    def _power_loss(self) -> None:
        """Reduce the filesystem to what a real power cut could leave.

        Write-opened files are truncated back to their last-fsynced size,
        renames not yet pinned by a directory fsync are rolled back, and
        log tails trimmed without a subsequent fsync are resurrected.
        Unlinks are *not* undone (a resurrected manifest is tolerated by
        the reader anyway, which clamps its offset to the log length).
        """
        for path, synced in self._synced.items():
            try:
                if os.path.getsize(path) > synced:
                    os.truncate(path, synced)
            except OSError:
                continue
        for source, destination, old in reversed(self._pending_renames):
            try:
                with open(destination, "rb") as handle:
                    current = handle.read()
            except OSError:
                current = None
            if current is not None:
                with open(source, "wb") as handle:
                    handle.write(current)
            if old is None:
                try:
                    os.remove(destination)
                except OSError:
                    pass
            else:
                with open(destination, "wb") as handle:
                    handle.write(old)
        self._pending_renames.clear()
        for path, tail in self._pending_tails.items():
            try:
                with open(path, "ab") as handle:
                    handle.write(tail)
            except OSError:
                continue
        self._pending_tails.clear()

    # -- DurableIO primitives ---------------------------------------------

    def open(self, path: str, mode: str, point: str):
        """Open ``path``, tracking write handles for power-loss simulation."""
        self.reached(point)
        if "b" in mode:
            handle = open(path, mode)
        else:
            handle = open(path, mode, encoding="utf-8")
        if any(flag in mode for flag in ("w", "a", "+")):
            self._handles[id(handle)] = (os.path.abspath(path), mode)
            durable = 0
            if not mode.startswith("w"):
                try:
                    durable = os.path.getsize(path)
                except OSError:
                    durable = 0
            self._synced.setdefault(os.path.abspath(path), durable)
            if mode.startswith("w"):
                self._synced[os.path.abspath(path)] = 0
        return handle

    def write(self, handle, data, point: str) -> None:
        """Write ``data``, honoring an armed torn-write fault."""
        self.reached(point)
        fault = self._take_pending(IO_FAULT_TORN)
        if fault is None:
            handle.write(data)
            return
        prefix = data[: max(0, min(fault.tear_bytes, len(data)))]
        handle.write(prefix)
        handle.flush()
        if self.mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        # The torn prefix is the part that *did* reach the platter:
        # pin it as durable, then lose everything else.
        info = self._handles.get(id(handle))
        if info is not None:
            try:
                self._synced[info[0]] = os.fstat(handle.fileno()).st_size
            except OSError:
                pass
        self._power_loss()
        raise CrashPoint(point, self.points_reached.get(point, 1))

    def fsync(self, handle, point: str) -> None:
        """Fsync, honoring an armed dropped-fsync fault."""
        self.reached(point)
        if self._take_pending(IO_FAULT_DROP_FSYNC) is not None:
            return  # the lie: caller believes the bytes are durable
        handle.flush()
        os.fsync(handle.fileno())
        info = self._handles.get(id(handle))
        if info is not None:
            try:
                self._synced[info[0]] = os.fstat(handle.fileno()).st_size
            except OSError:
                pass
            self._pending_tails.pop(info[0], None)

    def flush(self, handle, point: str) -> None:
        """Flush without fsync (audit streams); bytes stay volatile."""
        self.reached(point)
        handle.flush()

    def replace(self, source: str, destination: str, point: str) -> None:
        """Rename, honoring an armed torn-rename fault."""
        self.reached(point)
        source = os.path.abspath(source)
        destination = os.path.abspath(destination)
        fault = self._take_pending(IO_FAULT_TORN_RENAME)
        if fault is not None:
            # Worst-case torn rename: destination carries the new bytes
            # but the source entry survives, then the process dies.
            with open(source, "rb") as handle:
                payload = handle.read()
            with open(destination, "wb") as handle:
                handle.write(payload)
            if self.mode == "sigkill":
                os.kill(os.getpid(), signal.SIGKILL)
            self._power_loss()
            raise CrashPoint(point, self.points_reached.get(point, 1))
        old: "bytes | None"
        try:
            with open(destination, "rb") as handle:
                old = handle.read()
        except OSError:
            old = None
        os.replace(source, destination)
        self._synced.pop(source, None)
        self._pending_renames.append((source, destination, old))

    def unlink(self, path: str, point: str) -> None:
        """Remove ``path`` if present."""
        self.reached(point)
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def truncate(self, handle, size: int, point: str) -> None:
        """Truncate, remembering the cut tail until the next fsync."""
        self.reached(point)
        info = self._handles.get(id(handle))
        if info is not None:
            path = info[0]
            try:
                current = os.path.getsize(path)
            except OSError:
                current = size
            if current > size:
                with open(path, "rb") as reader:
                    reader.seek(size)
                    self._pending_tails[path] = reader.read(current - size)
                self._synced[path] = min(self._synced.get(path, 0), size)
        handle.truncate(size)

    def fsync_dir(self, path: str, point: str) -> None:
        """Directory fsync: pins completed renames against power loss."""
        self.reached(point)
        self._pending_renames.clear()
        directory = os.path.dirname(os.path.abspath(path)) or "."
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
