"""Device-replacement (fleet) model for the lifetime case study
(Section 8, Figure 14 right).

A user replaces their mobile device every ``L`` years.  Longer lifetimes
amortize embodied carbon over more service years but forgo the ~1.21x/year
energy-efficiency gains of newer hardware, raising operational emissions.
Two complementary formulations:

* :func:`steady_state_annual_footprint` — the long-run annual footprint of
  a replace-every-L-years policy (smooth; used for the Figure 14 sweep).
  Embodied contributes ``ECF / L`` per year; operational contributes the
  age-averaged efficiency multiplier times today's annual footprint.
* :func:`finite_horizon_footprint` — total emissions over an explicit
  horizon (the paper's "example 10 year period"), with whole-device
  purchases at years 0, L, 2L, ...

The default scenario's constants anchor to the rest of the reproduction:
the device's IC embodied footprint matches the iPhone-11-class ~23 kg CO2
of Figure 4, and its ~4 kg CO2/year operational footprint matches the
use-phase share of the device environmental reports behind Figure 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import require_positive
from repro.lifetime.efficiency_scaling import (
    average_relative_energy_over_life,
    catalog_annual_improvement,
)


@dataclass(frozen=True)
class FleetScenario:
    """Constants of one lifetime study.

    Attributes:
        embodied_kg: Embodied carbon manufactured per device.
        annual_operational_kg: Use-phase carbon per year of a *current
            generation* device.
        efficiency_rate: Annual generational efficiency improvement
            (e.g. 1.21); newer devices divide operational energy by this
            per year.
    """

    embodied_kg: float
    annual_operational_kg: float
    efficiency_rate: float

    def __post_init__(self) -> None:
        require_positive("embodied_kg", self.embodied_kg)
        require_positive("annual_operational_kg", self.annual_operational_kg)
        require_positive("efficiency_rate", self.efficiency_rate)


def mobile_scenario() -> FleetScenario:
    """The Figure 14 mobile-IC scenario.

    23 kg embodied per device (the iPhone-11-class IC footprint of
    Figure 4's top-down estimate) against ~4.05 kg/year operational, with
    the efficiency rate measured live from the SoC catalog (~1.21x).
    """
    return FleetScenario(
        embodied_kg=23.0,
        annual_operational_kg=4.05,
        efficiency_rate=catalog_annual_improvement(),
    )


@dataclass(frozen=True)
class LifetimePoint:
    """One x-position of Figure 14 (right)."""

    lifetime_years: float
    embodied_kg_per_year: float
    operational_kg_per_year: float

    @property
    def total_kg_per_year(self) -> float:
        return self.embodied_kg_per_year + self.operational_kg_per_year


def steady_state_annual_footprint(
    lifetime_years: float, scenario: FleetScenario
) -> LifetimePoint:
    """Long-run annual footprint of replacing the device every L years."""
    require_positive("lifetime_years", lifetime_years)
    embodied = scenario.embodied_kg / lifetime_years
    operational = scenario.annual_operational_kg * (
        average_relative_energy_over_life(lifetime_years, scenario.efficiency_rate)
    )
    return LifetimePoint(
        lifetime_years=lifetime_years,
        embodied_kg_per_year=embodied,
        operational_kg_per_year=operational,
    )


def lifetime_sweep(
    scenario: FleetScenario, lifetimes: tuple[float, ...] = tuple(range(1, 11))
) -> tuple[LifetimePoint, ...]:
    """Figure 14 (right): annual embodied/operational vs lifetime, 1-10 y."""
    return tuple(
        steady_state_annual_footprint(years, scenario) for years in lifetimes
    )


def optimal_lifetime(
    scenario: FleetScenario, lifetimes: tuple[float, ...] = tuple(range(1, 11))
) -> LifetimePoint:
    """The lifetime minimizing total annual footprint (the paper's ~5 y)."""
    return min(lifetime_sweep(scenario, lifetimes), key=lambda p: p.total_kg_per_year)


def extension_saving(
    scenario: FleetScenario,
    current_lifetime_years: float = 2.5,
    lifetimes: tuple[float, ...] = tuple(range(1, 11)),
) -> float:
    """Footprint reduction of the optimal lifetime vs today's 2-3 years.

    The paper reports up to 1.26x versus current average lifetimes.
    """
    current = steady_state_annual_footprint(current_lifetime_years, scenario)
    best = optimal_lifetime(scenario, lifetimes)
    return current.total_kg_per_year / best.total_kg_per_year


def finite_horizon_footprint(
    lifetime_years: float, scenario: FleetScenario, horizon_years: float = 10.0
) -> LifetimePoint:
    """Total emissions over an explicit horizon, expressed per year.

    Devices are purchased at years 0, L, 2L, ... (the final one possibly
    serving less than a full lifetime); each keeps the efficiency of its
    purchase year.
    """
    require_positive("lifetime_years", lifetime_years)
    require_positive("horizon_years", horizon_years)
    purchases = math.ceil(horizon_years / lifetime_years)
    embodied_total = purchases * scenario.embodied_kg
    operational_total = 0.0
    for index in range(purchases):
        start = index * lifetime_years
        served = min(lifetime_years, horizon_years - start)
        operational_total += (
            scenario.annual_operational_kg
            * served
            / scenario.efficiency_rate**start
        )
    return LifetimePoint(
        lifetime_years=lifetime_years,
        embodied_kg_per_year=embodied_total / horizon_years,
        operational_kg_per_year=operational_total / horizon_years,
    )
