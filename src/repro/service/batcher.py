"""Cross-request micro-batching: many scalar queries, one kernel call.

The engine evaluates ~2.5M points/sec batched but only ~75K/sec as
one-row calls, so a service answering concurrent scalar footprint
queries leaves a ~30x factor on the table unless it coalesces them.
:class:`MicroBatcher` is that coalescing point: request threads
:meth:`~MicroBatcher.submit` one scenario each and block on a per-query
event; a single batcher thread gathers waiting queries into a
:class:`~repro.engine.batch.ScenarioBatch` (up to ``max_batch`` rows or
``max_wait_s``, whichever first), runs **one** Eq. 1-8 pass, and hands
each thread its row.

Per-row results are also written back into the shared
:class:`~repro.engine.cache.EvaluationCache` under their single-row
content key, and every tick peeks that cache first — so hot queries are
answered without touching the kernels at all, and the breaker's
cache-only degraded mode has something to serve.

Failure semantics:

* A query whose deadline expires while queued is dropped before
  evaluation and resolves to
  :class:`~repro.service.admission.DeadlineExceeded` (the waiter may
  also time out on its own; both paths agree).
* A kernel failure fails exactly the queries in that tick — each with
  its own copy of the original exception, chained to it — and is
  reported to the ``on_failure`` hook (the circuit breaker) before any
  waiter wakes.  Queries served from cache in the same tick still
  succeed.
* :meth:`close` drains: queued queries are still evaluated, then the
  thread exits.  Submissions after close are refused.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.analysis.scenario import ActScenario
from repro.engine.batch import ScenarioBatch
from repro.engine.cache import EvaluationCache, scenario_key
from repro.engine.kernels import BatchResult, evaluate_batch
from repro.obs.context import current_context
from repro.service.admission import DeadlineExceeded, ServiceUnavailable


def single_row_batch(scenario: ActScenario) -> ScenarioBatch:
    """One scenario as a one-row batch — the per-query cache unit."""
    return ScenarioBatch.from_scenarios((scenario,))


def per_query_error(error: BaseException) -> BaseException:
    """A private copy of a tick's failure for one waiting query.

    Every waiter re-raises its query's error, possibly concurrently, and
    CPython mutates ``__traceback__`` on each raise — so re-raising one
    shared instance from many request threads cross-contaminates the
    tracebacks rendered into error responses and logs.  Each waiter gets
    its own shallow copy, chained (``__cause__``) to the original so the
    kernel-side traceback stays visible.  Exceptions that refuse
    ``copy.copy`` (constructors pickle/copy cannot replay) fall back to
    the shared instance — the status quo, never worse.
    """
    try:
        clone = copy.copy(error)
    except Exception:  # pragma: no cover - exotic __reduce__ failures
        return error
    if type(clone) is not type(error):
        return error
    clone.__cause__ = error
    return clone


#: Column names sliced by :func:`result_row`, resolved once at import.
_RESULT_FIELDS = tuple(BatchResult.__dataclass_fields__)


def result_row(result: BatchResult, index: int) -> BatchResult:
    """Row ``index`` of a batched result as a one-row :class:`BatchResult`.

    ``__post_init__`` is bypassed: a slice of an already-validated column
    keeps its dtype, contiguity, and read-only flag, so revalidating all
    ten columns per row would only re-derive what the parent result
    already guarantees — and at service rates that validation dominates
    the per-row cost.
    """
    row = object.__new__(BatchResult)
    set_field = object.__setattr__
    for name in _RESULT_FIELDS:
        set_field(row, name, getattr(result, name)[index : index + 1])
    return row


class PendingQuery:
    """One submitted query: its scenario, deadline, and completion slot.

    The submitting thread blocks in :meth:`wait`; the batcher thread (or
    a cache hit inside :meth:`MicroBatcher.submit`) calls one of the
    ``_complete*`` methods exactly once.

    The completion latch is a raw pre-acquired :class:`threading.Lock`
    rather than an :class:`threading.Event`: the semantics are the same
    (one releaser, one timed waiter) but a lock costs a fraction of an
    Event to allocate, release, and wait on — and this object is built
    once per service query.  Resolution state lives in ``result`` /
    ``error``, which are always written *before* the latch is released.
    """

    __slots__ = (
        "scenario",
        "key",
        "deadline",
        "enqueued_at",
        "_latch",
        "result",
        "error",
        "served_from",
        "batch_rows",
        "cancelled",
    )

    def __init__(
        self, scenario: ActScenario, key: str, deadline: float
    ) -> None:
        self.scenario = scenario
        self.key = key
        self.deadline = deadline
        self.enqueued_at = time.monotonic()
        self._latch = threading.Lock()
        self._latch.acquire()
        self.result: BatchResult | None = None
        self.error: BaseException | None = None
        self.served_from = ""
        self.batch_rows = 0
        self.cancelled = False

    @property
    def resolved(self) -> bool:
        """Whether a completion (result or error) has landed."""
        return self.result is not None or self.error is not None

    def _complete(self, result: BatchResult, served_from: str, rows: int) -> None:
        self.result = result
        self.served_from = served_from
        self.batch_rows = rows
        self._latch.release()

    def _fail(self, error: BaseException) -> None:
        self.error = error
        self._latch.release()

    def wait(self) -> BatchResult:
        """Block until the query resolves or its deadline expires.

        Raises the query's failure, or :class:`DeadlineExceeded` on
        timeout — in which case the query is also cooperatively
        cancelled, so a still-queued entry is dropped without ever
        being evaluated.
        """
        remaining = self.deadline - time.monotonic()
        if not self._latch.acquire(timeout=max(0.0, remaining)):
            self.cancelled = True
            # A completion racing the timeout may have landed just now;
            # prefer the real answer when it did.
            if not self.resolved:
                raise DeadlineExceeded(
                    "deadline expired while the query was "
                    + ("being evaluated" if self.batch_rows else "queued"),
                    deadline_s=self.deadline - self.enqueued_at,
                    stage="batched" if self.batch_rows else "queued",
                )
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


@dataclass
class BatcherStats:
    """Point-in-time counters of one batcher (all monotone)."""

    ticks: int = 0
    queries: int = 0
    coalesced: int = 0
    cache_served: int = 0
    expired: int = 0
    failed: int = 0
    max_batch_rows: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "ticks": self.ticks,
            "queries": self.queries,
            "coalesced": self.coalesced,
            "cache_served": self.cache_served,
            "expired": self.expired,
            "failed": self.failed,
            "max_batch_rows": self.max_batch_rows,
        }


class MicroBatcher:
    """Coalesces concurrent scalar queries into one kernel call per tick.

    Args:
        cache: The shared evaluation cache (peeked per query, populated
            per row).
        max_batch: Most queries evaluated in one kernel call.
        max_wait_s: Longest the first query of a tick waits for
            co-travelers.
        backend: Kernel backend name for every evaluation (``None`` =
            process-wide selection).
        on_success / on_failure: Hooks reporting each kernel call's
            outcome — the circuit breaker's sensors.
    """

    def __init__(
        self,
        cache: EvaluationCache,
        *,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        backend: str | None = None,
        on_success: Callable[[], None] | None = None,
        on_failure: Callable[[BaseException], None] | None = None,
    ) -> None:
        self.cache = cache
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.backend = backend
        self.on_success = on_success
        self.on_failure = on_failure
        self.stats = BatcherStats()
        self._queue: deque[PendingQuery] = deque()
        self._cond = threading.Condition()
        self._closing = False
        self._thread = threading.Thread(
            target=self._loop, name="micro-batcher", daemon=True
        )
        self._thread.start()

    @property
    def alive(self) -> bool:
        """Whether the batcher thread is still running (readiness)."""
        return self._thread.is_alive()

    def submit(self, scenario: ActScenario, *, timeout_s: float) -> PendingQuery:
        """Enqueue one query; returns the pending handle to ``wait`` on.

        The single-row cache is consulted *here*, in the submitting
        thread, by hashing the scenario's scalar fields directly
        (:func:`~repro.engine.cache.scenario_key`) — no per-query batch
        is ever built: a hit completes immediately without waking the
        batcher, and a miss carries only the scenario and its key.
        """
        key = scenario_key(scenario)
        deadline = time.monotonic() + timeout_s
        query = PendingQuery(scenario, key, deadline)
        cached = self.cache.peek_by_key(key, 1, self.backend)
        if cached is not None:
            query._complete(cached, "cache", 1)
            with self._cond:
                self.stats.queries += 1
                self.stats.cache_served += 1
            return query
        with self._cond:
            if self._closing:
                raise ServiceUnavailable(
                    "service is draining; not accepting new queries",
                    retry_after_s=5.0,
                )
            self.stats.queries += 1
            self._queue.append(query)
            # Only the empty->non-empty transition needs a wakeup: while
            # the queue is non-empty the batcher is already gathering (it
            # drains via timed waits), and skipping redundant notifies
            # measurably cuts per-query submit cost under load.
            if len(self._queue) == 1:
                self._cond.notify()
        return query

    # --- the batcher thread ---------------------------------------------

    def _take_locked(self, room: int) -> list[PendingQuery]:
        """Pop up to ``room`` live queries (dropping dead ones). Lock held."""
        taken: list[PendingQuery] = []
        now = time.monotonic()
        while self._queue and len(taken) < room:
            query = self._queue.popleft()
            if query.cancelled:
                continue
            if query.deadline <= now:
                self.stats.expired += 1
                query._fail(
                    DeadlineExceeded(
                        "deadline expired while the query was queued",
                        deadline_s=query.deadline - query.enqueued_at,
                        stage="queued",
                    )
                )
                continue
            taken.append(query)
        return taken

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closing:
                    self._cond.wait()
                if not self._queue and self._closing:
                    return
                items = self._take_locked(self.max_batch)
                if not self._closing and self.max_wait_s > 0:
                    # Gather co-travelers for at most max_wait_s, but stop
                    # as soon as arrivals go quiet for one idle gap: the
                    # queries this tick would still be waiting for are
                    # usually blocked on this very tick, so dead waiting
                    # only adds latency without growing the batch.
                    idle_gap = max(self.max_wait_s / 8, 50e-6)
                    gather_until = time.monotonic() + self.max_wait_s
                    while len(items) < self.max_batch:
                        remaining = gather_until - time.monotonic()
                        if remaining <= 0 or self._closing:
                            break
                        notified = self._cond.wait(min(remaining, idle_gap))
                        fresh = self._take_locked(self.max_batch - len(items))
                        if not fresh and not notified:
                            break
                        items.extend(fresh)
            if items:
                self._evaluate(items)

    def _evaluate(self, items: list[PendingQuery]) -> None:
        context = current_context()
        rows = len(items)
        with self._cond:
            self.stats.ticks += 1
            self.stats.coalesced += rows
            self.stats.max_batch_rows = max(self.stats.max_batch_rows, rows)
        started = time.perf_counter()
        try:
            coalesced = ScenarioBatch.from_scenarios(
                tuple(item.scenario for item in items)
            )
            result = evaluate_batch(coalesced, backend=self.backend)
        except Exception as error:  # noqa: BLE001 - forwarded per query
            with self._cond:
                self.stats.failed += rows
            # Settle the breaker before any waiter wakes: an endpoint
            # releasing its probe lease on the error path must observe
            # the recorded failure, not race ahead of it.
            if self.on_failure is not None:
                self.on_failure(error)
            for item in items:
                item._fail(per_query_error(error))
            if context.enabled:
                context.count("service.batcher.failed_ticks")
            return
        row_of = [
            result_row(result, index) if rows > 1 else result
            for index in range(rows)
        ]
        self.cache.put_many_by_key(
            [(item.key, row) for item, row in zip(items, row_of)],
            self.backend,
        )
        # Success is recorded before waiters wake for the same reason as
        # the failure path: a half-open probe's lease release must find
        # the breaker already closed.
        if self.on_success is not None:
            self.on_success()
        for item, row in zip(items, row_of):
            item._complete(row, "batch", rows)
        if context.enabled:
            context.count("service.batcher.ticks")
            context.count("service.batcher.rows", rows)
            context.record("service.batcher.batch_rows", rows)
            context.observe(
                "service.batcher.tick_seconds", time.perf_counter() - started
            )

    # --- lifecycle ------------------------------------------------------

    def close(self, timeout_s: float = 10.0) -> bool:
        """Drain queued queries, stop the thread; ``True`` on clean join."""
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        self._thread.join(timeout_s)
        return not self._thread.is_alive()
