"""An exergy-style energy-balance baseline (prior work, Section 2.3).

Chang et al.'s "Totally Green" accounting scores servers by the *energy*
embedded in fabrication plus the energy consumed in use — an elegant
single-currency model, but one that, as the paper notes, "simplifies the
design space": because everything is joules, the carbon intensity of the
electricity (renewable fabs, green grids) cannot influence the result.

This module implements that accounting so the comparison experiment can
demonstrate the blind spot: two scenarios that differ only in fab/grid
energy mix score identically under exergy while ACT separates them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import require_non_negative

#: Fixed exergy cost of materials procurement per wafer area (kWh/cm^2
#: equivalent) — the energy-balance analogue of ACT's MPA term.
MATERIALS_KWH_PER_CM2 = 1.4

#: Exergy cost of memory/storage manufacturing per GB (kWh/GB equivalents).
DRAM_KWH_PER_GB = 0.13
SSD_KWH_PER_GB = 0.017
HDD_KWH_PER_GB = 0.012


@dataclass(frozen=True)
class ExergyAccount:
    """An energy-balance score: fabrication and use energy in kWh."""

    fabrication_kwh: float
    use_kwh: float

    @property
    def total_kwh(self) -> float:
        return self.fabrication_kwh + self.use_kwh

    @property
    def fabrication_share(self) -> float:
        total = self.total_kwh
        if total == 0:
            return 0.0
        return self.fabrication_kwh / total


def account(
    *,
    soc_area_cm2: float,
    epa_kwh_per_cm2: float,
    use_energy_kwh: float,
    fab_yield: float = 1.0,
    dram_gb: float = 0.0,
    ssd_gb: float = 0.0,
    hdd_gb: float = 0.0,
) -> ExergyAccount:
    """The energy-balance score of a platform + workload.

    Note what is *not* a parameter: any carbon intensity.  Exergy cannot
    distinguish a solar-powered fab from a coal-powered one.
    """
    require_non_negative("soc_area_cm2", soc_area_cm2)
    require_non_negative("epa_kwh_per_cm2", epa_kwh_per_cm2)
    require_non_negative("use_energy_kwh", use_energy_kwh)
    fabrication = (
        soc_area_cm2 * (epa_kwh_per_cm2 + MATERIALS_KWH_PER_CM2) / fab_yield
        + dram_gb * DRAM_KWH_PER_GB
        + ssd_gb * SSD_KWH_PER_GB
        + hdd_gb * HDD_KWH_PER_GB
    )
    return ExergyAccount(fabrication_kwh=fabrication, use_kwh=use_energy_kwh)
