"""Generic parameter sweeps for carbon-aware design-space exploration.

Thin, typed helpers that the experiment modules build on: evaluate a design
generator over a one-dimensional parameter grid or the Cartesian product of
several named grids, keeping the (parameters → design) association so
results can be tabulated and constrained afterwards.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Generic, Iterable, Mapping, Sequence, TypeVar

from repro.core.errors import ConstraintError

P = TypeVar("P")
D = TypeVar("D")


@dataclass(frozen=True)
class SweepRecord(Generic[D]):
    """One evaluated point of a sweep: the parameters and the design."""

    params: Mapping[str, object]
    design: D


def sweep_1d(
    name: str, values: Iterable[P], evaluate: Callable[[P], D]
) -> tuple[SweepRecord[D], ...]:
    """Evaluate a single-parameter sweep.

    Args:
        name: Parameter name recorded on each result.
        values: Grid of parameter values.
        evaluate: Maps one parameter value to a design/result object.
    """
    return tuple(
        SweepRecord(params={name: value}, design=evaluate(value))
        for value in values
    )


def sweep_grid(
    grids: Mapping[str, Sequence[object]],
    evaluate: Callable[..., D],
) -> tuple[SweepRecord[D], ...]:
    """Evaluate the Cartesian product of several named parameter grids.

    ``evaluate`` is called with the grid names as keyword arguments.
    """
    if not grids:
        raise ConstraintError("at least one parameter grid is required")
    names = tuple(grids)
    records = []
    for combo in itertools.product(*(grids[name] for name in names)):
        params = dict(zip(names, combo))
        records.append(SweepRecord(params=params, design=evaluate(**params)))
    return tuple(records)


def argmin(
    records: Sequence[SweepRecord[D]], key: Callable[[D], float]
) -> SweepRecord[D]:
    """The record whose design minimizes ``key``."""
    if not records:
        raise ConstraintError("cannot take argmin of an empty sweep")
    return min(records, key=lambda record: key(record.design))


def feasible(
    records: Sequence[SweepRecord[D]], predicate: Callable[[D], bool]
) -> tuple[SweepRecord[D], ...]:
    """The records whose designs satisfy a constraint predicate."""
    return tuple(record for record in records if predicate(record.design))
