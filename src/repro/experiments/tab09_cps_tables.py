"""Tables 9-11: DRAM / SSD / HDD carbon-per-GB, verbatim."""

from __future__ import annotations

from repro.data.dram import DRAM_TECHNOLOGIES
from repro.data.hdd import HDD_MODELS
from repro.data.ssd import SSD_TECHNOLOGIES
from repro.experiments.base import ExperimentResult, check_close

EXPERIMENT_ID = "tab9"
TITLE = "Memory and storage carbon-per-GB tables (DRAM/SSD/HDD)"

PAPER_DRAM = {
    "ddr3_50nm": 600.0, "ddr3_40nm": 315.0, "ddr3_30nm": 230.0,
    "lpddr3_30nm": 201.0, "lpddr3_20nm": 184.0, "lpddr2_20nm": 159.0,
    "lpddr4": 48.0, "ddr4_10nm": 65.0,
}
PAPER_SSD = {
    "nand_30nm": 30.0, "nand_20nm": 15.0, "nand_10nm": 10.0,
    "nand_1z_tlc": 5.6, "nand_v3_tlc": 6.3,
    "wd_2016": 24.4, "wd_2017": 17.9, "wd_2018": 12.5, "wd_2019": 10.7,
    "nytro_1551": 3.95, "nytro_3530": 6.21, "nytro_3331": 16.92,
}
PAPER_HDD = {
    "barracuda": 4.57, "barracuda2": 10.32, "barracuda_pro": 2.35,
    "firecuda": 5.1, "firecuda2": 9.1, "exos_2x14": 1.65, "exos_x12": 1.14,
    "exos_x16": 1.33, "exos_15e900": 20.5, "exos_10e2400": 10.3,
}


def run() -> ExperimentResult:
    """Regenerate Tables 9-11 and check every row verbatim."""
    rows = []
    for tech in DRAM_TECHNOLOGIES.values():
        rows.append(("DRAM", tech.label, tech.cps_g_per_gb))
    for tech in SSD_TECHNOLOGIES.values():
        rows.append(("SSD", tech.label, tech.cps_g_per_gb))
    for model in HDD_MODELS.values():
        rows.append(("HDD", model.label, model.cps_g_per_gb))

    checks = []
    for name, expected in PAPER_DRAM.items():
        checks.append(
            check_close(
                f"DRAM {name} (g/GB)",
                DRAM_TECHNOLOGIES[name].cps_g_per_gb, expected, rel_tol=1e-9,
            )
        )
    for name, expected in PAPER_SSD.items():
        checks.append(
            check_close(
                f"SSD {name} (g/GB)",
                SSD_TECHNOLOGIES[name].cps_g_per_gb, expected, rel_tol=1e-9,
            )
        )
    for name, expected in PAPER_HDD.items():
        checks.append(
            check_close(
                f"HDD {name} (g/GB)",
                HDD_MODELS[name].cps_g_per_gb, expected, rel_tol=1e-9,
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=("kind", "technology", "g CO2/GB"),
        table_rows=tuple(rows),
        reference={"Table 9": PAPER_DRAM, "Table 10": PAPER_SSD,
                   "Table 11": PAPER_HDD},
        checks=tuple(checks),
    )
