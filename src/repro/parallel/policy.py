"""Execution policies: how a scenario workload is split across processes.

An :class:`ExecutionPolicy` is the one knob the analysis, DSE, and
robustness layers expose for parallel execution: how many worker
processes, how many rows per shard, and which transport moves batch
columns between processes (zero-copy ``shared_memory`` views or plain
pickling).  The policy deliberately carries no state — the runner in
:mod:`repro.parallel.runner` owns the pool and the shared segments.

Like the observability :class:`~repro.obs.context.RunContext`, a policy
can be installed process-wide with :func:`use_execution_policy`; entry
points that accept ``policy=None`` then pick it up via
:func:`current_policy`.  That is how ``act-repro experiment --workers 4``
parallelizes every sweep an experiment runs without threading a parameter
through each figure module.

Shard geometry is part of the *result contract*, not just a tuning knob:
Monte Carlo sampling derives one ``np.random.SeedSequence`` child stream
per shard (see :func:`shard_plan`), so the same ``shard_rows`` yields
bit-identical samples at any worker count — ``workers=1`` and
``workers=8`` agree to the last bit.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import ParameterError

#: Transport moving shard inputs/outputs between parent and workers.
SHM = "shm"
PICKLE = "pickle"
TRANSPORTS = (SHM, PICKLE)

#: Failure policies: what happens when a shard fails or its worker dies.
FAIL_FAST = "fail_fast"
RETRY = "retry"
DEGRADE = "degrade"
FAILURE_POLICIES = (FAIL_FAST, RETRY, DEGRADE)

#: Default rows per shard.  Large enough that the Eq. 1-8 kernel pass
#: dominates per-shard dispatch overhead, small enough that a handful of
#: shards exist even for modest workloads.
DEFAULT_SHARD_ROWS = 65_536


def default_start_method() -> str:
    """The preferred multiprocessing start method on this platform.

    ``fork`` (cheap, shares the already-imported numpy) when the platform
    offers it, ``spawn`` otherwise.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class ExecutionPolicy:
    """How to shard and execute one scenario workload.

    Attributes:
        workers: Worker processes evaluating shards.  ``1`` runs the
            serial shard-ordered reference path in-process — same shard
            plan, same per-shard seed streams, bit-identical results to
            any higher worker count.
        shard_rows: Rows per shard.  Part of the determinism contract for
            Monte Carlo: changing it changes which SeedSequence child
            samples which rows (changing ``workers`` never does).
        transport: ``"shm"`` (zero-copy ``multiprocessing.shared_memory``
            views of the batch columns) or ``"pickle"`` (column slices
            serialized through the task queue).
        start_method: Explicit multiprocessing start method, or ``None``
            to pick the platform default (``fork`` where available).
        failure_policy: What happens when a shard fails for an
            *infrastructure* reason (worker death, blown deadline, lost
            result, shm attach error).  ``"fail_fast"`` raises on the
            first failure (the historical behavior); ``"retry"``
            re-executes the shard up to ``max_retries`` times under
            exponential backoff, respawning dead workers, and raises
            :class:`~repro.core.errors.ShardFailedError` only when the
            budget is exhausted; ``"degrade"`` retries the same way but
            quarantines exhausted shards and completes the run with a
            structured :class:`~repro.parallel.supervisor.PartialResult`.
            Model errors (any :class:`~repro.core.errors.ReproError`,
            e.g. a strict-guard ``ValidationError``) are deterministic
            and always propagate immediately under every policy.
        max_retries: Re-executions granted per shard beyond its first
            attempt (``retry``/``degrade`` only).
        backoff_seconds: Base of the exponential backoff between retry
            attempts (attempt ``k`` waits ``backoff_seconds * 2**(k-1)``).
        shard_deadline_seconds: Wall-clock budget per shard attempt.
            A worker whose current shard exceeds it (stale heartbeat)
            is declared hung, killed, and respawned; the shard is
            retried.  ``None`` disables the deadline watch.
        join_timeout_seconds: How long :meth:`WorkerPool.close` waits for
            a worker to exit cooperatively before terminating it.
        term_timeout_seconds: How long close waits after ``terminate()``
            before escalating to ``kill()``.
        serial_fallback: Under ``degrade``, re-run quarantined shards
            once in the parent process before declaring them lost —
            heals faults confined to the worker fleet.
        backend: Name of the kernel backend workers evaluate shards
            with, or ``None`` to inherit the process-wide selection
            (:func:`repro.engine.backends.current_backend`) at dispatch
            time.  Always a *name*, never a backend instance — workers
            re-resolve it from their own registry, so backend objects
            are never pickled across the process boundary.
    """

    workers: int = 1
    shard_rows: int = DEFAULT_SHARD_ROWS
    transport: str = SHM
    start_method: str | None = None
    failure_policy: str = FAIL_FAST
    max_retries: int = 2
    backoff_seconds: float = 0.05
    shard_deadline_seconds: float | None = None
    join_timeout_seconds: float = 10.0
    term_timeout_seconds: float = 5.0
    serial_fallback: bool = False
    backend: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise ParameterError(
                f"workers must be an integer >= 1, got {self.workers!r}"
            )
        if self.workers < 1:
            raise ParameterError(
                f"workers must be >= 1, got {self.workers}"
            )
        if not isinstance(self.shard_rows, int) or self.shard_rows < 1:
            raise ParameterError(
                f"shard_rows must be an integer >= 1, got {self.shard_rows!r}"
            )
        if self.transport not in TRANSPORTS:
            raise ParameterError(
                f"unknown transport {self.transport!r}; use one of {TRANSPORTS}"
            )
        if self.start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if self.start_method not in available:
                raise ParameterError(
                    f"start method {self.start_method!r} is not available "
                    f"on this platform (have: {', '.join(available)})"
                )
        if self.failure_policy not in FAILURE_POLICIES:
            raise ParameterError(
                f"unknown failure policy {self.failure_policy!r}; use one "
                f"of {FAILURE_POLICIES}"
            )
        if not isinstance(self.max_retries, int) or isinstance(
            self.max_retries, bool
        ) or self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be an integer >= 0, got {self.max_retries!r}"
            )
        if not self.backoff_seconds >= 0.0:
            raise ParameterError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds!r}"
            )
        if self.shard_deadline_seconds is not None and not (
            self.shard_deadline_seconds > 0.0
        ):
            raise ParameterError(
                f"shard_deadline_seconds must be > 0 or None, got "
                f"{self.shard_deadline_seconds!r}"
            )
        for name in ("join_timeout_seconds", "term_timeout_seconds"):
            value = getattr(self, name)
            if not value > 0.0:
                raise ParameterError(f"{name} must be > 0, got {value!r}")
        if self.backend is not None:
            if not isinstance(self.backend, str):
                raise ParameterError(
                    "backend must be a registered backend name or None, "
                    f"got {self.backend!r}"
                )
            # Raises ParameterError on unknown names, listing what exists.
            from repro.engine.backends import get_backend

            get_backend(self.backend)

    @property
    def parallel(self) -> bool:
        """Whether this policy actually fans out to worker processes."""
        return self.workers > 1

    def replace(self, **changes: object) -> "ExecutionPolicy":
        """A copy with some fields changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)


def shard_plan(rows: int, shard_rows: int) -> tuple[tuple[int, int], ...]:
    """Contiguous ``(start, stop)`` row ranges covering ``rows``.

    The plan is a pure function of ``(rows, shard_rows)`` — worker count
    never enters — which is what makes shard-seeded Monte Carlo sampling
    reproducible at any parallelism level.
    """
    if rows < 1:
        raise ParameterError(f"cannot shard {rows} rows")
    if shard_rows < 1:
        raise ParameterError(f"shard_rows must be >= 1, got {shard_rows}")
    return tuple(
        (start, min(start + shard_rows, rows))
        for start in range(0, rows, shard_rows)
    )


_ACTIVE: list[ExecutionPolicy | None] = [None]


def current_policy() -> ExecutionPolicy | None:
    """The innermost installed policy, or ``None`` (serial legacy paths)."""
    return _ACTIVE[-1]


@contextmanager
def use_execution_policy(
    policy: ExecutionPolicy | None,
) -> Iterator[ExecutionPolicy | None]:
    """Install ``policy`` as the process-wide default for the block.

    Entry points called with ``policy=None`` resolve to the installed
    policy; installing ``None`` explicitly shadows an outer policy back to
    the serial legacy paths.  Activations nest like
    :func:`~repro.obs.context.use_context`.
    """
    _ACTIVE.append(policy)
    try:
        yield policy
    finally:
        _ACTIVE.pop()


def resolve_policy(
    policy: "ExecutionPolicy | int | None",
) -> ExecutionPolicy | None:
    """Normalize a ``policy=`` argument to an :class:`ExecutionPolicy`.

    ``None`` falls back to the installed :func:`current_policy`; a bare
    integer is shorthand for ``ExecutionPolicy(workers=n)``.
    """
    if policy is None:
        return current_policy()
    if isinstance(policy, ExecutionPolicy):
        return policy
    if isinstance(policy, int) and not isinstance(policy, bool):
        return ExecutionPolicy(workers=policy)
    raise ParameterError(
        f"policy must be an ExecutionPolicy, an integer worker count, or "
        f"None, got {policy!r}"
    )
