"""Figure 12: the NVDLA MAC-count sweep under PPA vs carbon metrics.

Regenerates performance/EDP (left) and the carbon metrics (right) across
64-2048 MACs at 16 nm, checking the paper's per-metric optima — 2048
(performance, EDP), 1024 (CDP), 512 (CE2P), 256 (CEP), 128 (C2EP) — and
the up-to-an-order-of-magnitude reduction vs the most parallel design.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.nvdla import MAC_SWEEP, sweep
from repro.engine.metrics import metric_columns, stack_design_points, winners_batched
from repro.experiments.base import (
    ExperimentResult,
    check_equal,
    check_in_band,
)
from repro.reporting.figures import FigureData, Series

EXPERIMENT_ID = "fig12"
TITLE = "NVDLA design space: performance/EDP vs carbon-aware metrics"

PAPER_OPTIMA = {
    "EDP": "2048 MACs",
    "CDP": "1024 MACs",
    "CE2P": "512 MACs",
    "CEP": "256 MACs",
    "C2EP": "128 MACs",
}
_METRICS = ("EDP", "CDP", "CEP", "C2EP", "CE2P")


def run() -> ExperimentResult:
    """Regenerate Figure 12 and check the metric optima."""
    designs = sweep()
    points = tuple(design.design_point() for design in designs)
    macs = tuple(design.n_macs for design in designs)

    # The whole sweep is scored through the batched engine: stack the
    # (C, E, D, A) columns once, then every metric is one array expression.
    columns = stack_design_points(points)
    scores = metric_columns(
        columns["embodied_carbon_g"],
        columns["energy_kwh"],
        columns["delay_s"],
        columns["area_mm2"],
        metric_names=_METRICS,
    )

    left = FigureData(
        title="Figure 12 (left): performance and EDP vs MAC count",
        x_label="MACs",
        y_label="latency (ms) / EDP (relative)",
        series=(
            Series("latency (ms)", macs, tuple(d.latency_s * 1e3 for d in designs)),
            Series("EDP", macs, tuple(float(v) for v in scores["EDP"])),
        ),
    )
    right = FigureData(
        title="Figure 12 (right): carbon metrics vs MAC count",
        x_label="MACs",
        y_label="metric value (lower is better)",
        series=tuple(
            Series(metric, macs, tuple(float(v) for v in scores[metric]))
            for metric in ("CDP", "CEP", "C2EP", "CE2P")
        ),
    )

    observed = winners_batched(points, _METRICS)
    checks = [
        check_equal(f"{metric} optimal configuration", observed[metric], expected)
        for metric, expected in PAPER_OPTIMA.items()
    ]

    # "Compared to the most parallel configuration, designing the accelerator
    # based on the sustainability target reduces the carbon-aware
    # optimization target by up to an order of magnitude."
    best_reduction = max(
        float(scores[metric][-1] / np.min(scores[metric]))
        for metric in ("CDP", "CEP", "C2EP", "CE2P")
    )
    checks.append(
        check_in_band(
            "max carbon-metric reduction vs the 2048-MAC design",
            best_reduction, 8.0, 30.0, paper="up to ~10x",
        )
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=(left, right),
        reference={"paper optima": PAPER_OPTIMA, "sweep": list(MAC_SWEEP)},
        checks=tuple(checks),
    )
