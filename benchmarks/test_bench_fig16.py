"""Benchmark: regenerate Figures 16-17: device LCA breakdowns."""


def test_bench_fig16(verify):
    """Figures 16-17: device LCA breakdowns — regenerate, print, and verify against the paper."""
    verify("fig16")
