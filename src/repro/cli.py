"""Command-line interface for the ACT reproduction.

Subcommands::

    act-repro footprint --node 7 --area 100 --dram 8 --ssd 128
        Embodied footprint of an ad-hoc platform, with breakdown.

    act-repro cpa [--mix taiwan_grid] [--abatement 0.97]
        Carbon-per-area across the node ladder (Figure 6 data).

    act-repro experiment fig8            # or: all
        Regenerate a paper table/figure and print data + shape checks.

    act-repro socs
        The mobile SoC catalog with embodied carbon per chipset.

    act-repro export fig12 --format csv
        Dump an experiment's first figure as CSV/JSON for plotting.

    act-repro sensitivity [--top 8] [--draws 2000]
        Tornado ranking + Monte Carlo spread over the Table 1 parameters.

    act-repro montecarlo [--draws 10000] [--seed 2022] [--percentiles 5,50,95]
        Footprint distribution over the Table 1 ranges on the batched engine.
        ``--policy`` runs it through the guarded engine; ``--checkpoint`` /
        ``--resume`` / ``--max-seconds`` make long runs killable+resumable.

    act-repro schedule [--windows 1000] [--policy all] [--workers 4]
        Fleet-scale carbon-aware scheduling policy sweep on the vectorized
        evaluator: per-policy emissions/waiting points and the Pareto
        front.  ``--checkpoint`` / ``--resume`` / ``--max-seconds`` make
        long sweeps killable+resumable, bit-identically.

    act-repro baselines
        ACT vs the prior-work models (GreenChip-style inventory, exergy).

    act-repro profile fig10 [--trace run.jsonl]
        Run an experiment under a live run context and print the span
        tree, the per-span cost table, and the metrics counters.

    act-repro serve [--port 8080] [--max-batch 256] [--rate 100]
        The resilient carbon-query HTTP service: concurrent scalar
        queries micro-batched into one kernel call per tick, with
        admission control, per-request deadlines, a circuit breaker, and
        drain-on-SIGTERM.  ``--port 0`` picks a free port and prints it.

Every subcommand additionally accepts ``--trace FILE`` (write the run's
structured JSONL event stream to FILE) and ``--metrics`` (print the
metrics-registry summary to stderr when the command finishes).  Without
either flag the observability spine stays on its no-op null context.

Errors from the model stack (unknown table entries, validation failures,
checkpoint mismatches, …) exit with code 2 and a one-line message; an
interrupted-but-checkpointed run exits with code 3 and a resume hint.
Pass ``--debug`` to get the full traceback instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.components import DramComponent, LogicComponent, SsdComponent
from repro.core.model import Platform
from repro.data.fab_nodes import TSMC_ABATEMENT, node_names
from repro.data.soc_catalog import all_socs
from repro.experiments import EXPERIMENTS, run_all, run_experiment
from repro.experiments.base import result_summary
from repro.fabs.fab import FabScenario
from repro.platforms.mobile import soc_platform
from repro.reporting.serialize import figure_to_csv, figure_to_json
from repro.reporting.tables import ascii_table


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    """The shard-geometry and failure-policy flags shared by the
    parallel-capable subcommands (``montecarlo``/``sensitivity``/
    ``experiment``); ``--workers`` stays per-command (its help text
    differs).  Values are validated by ``ExecutionPolicy`` so bad input
    exits 2 exactly like an invalid ``--workers``."""
    parser.add_argument(
        "--shard-rows",
        type=int,
        default=None,
        metavar="N",
        help="rows per shard (default: 65536; part of the determinism "
        "contract — changing it changes the sharded sample stream)",
    )
    parser.add_argument(
        "--transport",
        choices=("shm", "pickle"),
        default=None,
        help="how shard columns move between processes (default: shm = "
        "zero-copy shared memory; pickle = through the task queue)",
    )
    parser.add_argument(
        "--failure-policy",
        choices=("fail_fast", "retry", "degrade"),
        default=None,
        help="what happens when a worker dies or a shard fails "
        "(default: fail_fast; retry = respawn + re-execute under a "
        "bounded budget; degrade = quarantine exhausted shards and "
        "finish with a partial result)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-executions granted per shard beyond its first attempt "
        "under retry/degrade (default: 2)",
    )
    # Deliberately not argparse `choices`: the registry is open (numba
    # registers itself when installed), so names resolve at runtime and an
    # unknown one raises ParameterError (exit 2) listing what exists.
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend evaluating the batches (reference = pinned "
        "float64 path, fused = same results with fewer allocations, "
        "float32 = reduced precision, numba = JIT loop when installed; "
        "default: the ACT_REPRO_BACKEND env var, else reference)",
    )
    parser.add_argument(
        "--planner",
        choices=("auto", "on", "off"),
        default=None,
        help="structure-aware sweep planner: factor Eq. 1-8 into "
        "per-axis partial terms and combine marginal grids by broadcast "
        "instead of evaluating every Cartesian row (bit-identical "
        "results; auto = engage on grids of 512+ rows, off = always the "
        "dense path; default: the ACT_REPRO_PLANNER env var, else auto)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="act-repro",
        description="ACT (ISCA 2022) architectural carbon model — reproduction",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="re-raise model errors with a full traceback instead of the "
        "one-line exit-code-2 summary",
    )
    # Observability flags shared by every subcommand (a parent parser, so
    # they are accepted *after* the subcommand: ``experiment all --trace f``).
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write the run's structured JSONL event stream to FILE",
    )
    obs.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics-registry summary to stderr on exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    footprint = sub.add_parser(
        "footprint",
        help="embodied footprint of an ad-hoc platform",
        parents=[obs],
    )
    footprint.add_argument(
        "--config", default=None,
        help="JSON platform description (overrides the ad-hoc flags)",
    )
    footprint.add_argument("--node", default="7", help="logic process node")
    footprint.add_argument(
        "--area", type=float, default=100.0, help="SoC die area (mm^2)"
    )
    footprint.add_argument(
        "--dram", type=float, default=0.0, help="DRAM capacity (GB)"
    )
    footprint.add_argument(
        "--dram-tech", default="lpddr4", help="Table 9 DRAM technology"
    )
    footprint.add_argument("--ssd", type=float, default=0.0, help="SSD capacity (GB)")
    footprint.add_argument(
        "--ssd-tech", default="nand_v3_tlc", help="Table 10 SSD technology"
    )
    footprint.add_argument(
        "--mix", default="taiwan_25_renewable", help="fab energy mix"
    )

    cpa = sub.add_parser(
        "cpa", help="carbon-per-area across nodes (Figure 6)", parents=[obs]
    )
    cpa.add_argument("--mix", default="taiwan_25_renewable", help="fab energy mix")
    cpa.add_argument(
        "--abatement", type=float, default=TSMC_ABATEMENT, help="gas abatement"
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure", parents=[obs]
    )
    experiment.add_argument(
        "id",
        help=f"experiment id ({', '.join(EXPERIMENTS)}), an extension id "
        "(ext-*), 'all', or 'extensions'",
    )
    experiment.add_argument(
        "--json",
        action="store_true",
        help="print machine-readable shape-check results instead of text",
    )
    experiment.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for every sweep the experiment runs "
        "(default: 1 = serial; results are bit-identical at any count)",
    )
    _add_parallel_arguments(experiment)

    profile = sub.add_parser(
        "profile",
        help="run an experiment under a live run context and print the "
        "span tree + metrics",
        parents=[obs],
    )
    profile.add_argument(
        "id",
        help=f"experiment id ({', '.join(EXPERIMENTS)}), an extension id "
        "(ext-*), or 'all'",
    )

    sub.add_parser(
        "socs",
        help="the mobile SoC catalog with embodied carbon",
        parents=[obs],
    )

    export = sub.add_parser(
        "export", help="dump an experiment's data", parents=[obs]
    )
    export.add_argument("id", help="experiment id")
    export.add_argument(
        "--format", choices=("csv", "json"), default="csv", help="output format"
    )
    export.add_argument(
        "--panel", type=int, default=0, help="figure panel index to export"
    )

    sensitivity = sub.add_parser(
        "sensitivity",
        help="tornado + Monte Carlo over the ACT parameters",
        parents=[obs],
    )
    sensitivity.add_argument(
        "--top", type=int, default=8, help="parameters to show"
    )
    sensitivity.add_argument(
        "--draws", type=int, default=2000, help="Monte Carlo samples"
    )
    sensitivity.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the Monte Carlo stage (default: 1)",
    )
    _add_parallel_arguments(sensitivity)

    montecarlo = sub.add_parser(
        "montecarlo",
        help="batched Monte Carlo footprint distribution over the Table 1 "
        "parameter ranges",
        parents=[obs],
    )
    montecarlo.add_argument(
        "--draws", type=int, default=10_000, help="Monte Carlo samples"
    )
    montecarlo.add_argument(
        "--seed", type=int, default=2022, help="RNG seed (reproducible)"
    )
    montecarlo.add_argument(
        "--distribution",
        choices=("triangular", "uniform"),
        default="triangular",
        help="per-parameter sampling distribution",
    )
    montecarlo.add_argument(
        "--percentiles",
        default="5,50,95",
        help="comma-separated percentiles to report (0-100)",
    )
    montecarlo.add_argument(
        "--policy",
        choices=("off", "strict", "repair", "skip"),
        default="off",
        help="guarded-engine validation policy (default: off = raw engine)",
    )
    montecarlo.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint file for chunked execution (atomic; enables --resume)",
    )
    montecarlo.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint instead of starting over",
    )
    montecarlo.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        metavar="N",
        help="draws evaluated between checkpoint writes (default: 4096)",
    )
    montecarlo.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes sharding the draws (default: 1 = the serial "
        "legacy sample stream; N > 1 uses sharded per-shard seed streams, "
        "bit-identical across worker counts)",
    )
    _add_parallel_arguments(montecarlo)
    montecarlo.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget; the run checkpoints and exits 3 when it "
        "runs out",
    )

    schedule = sub.add_parser(
        "schedule",
        help="fleet-scale carbon-aware scheduling policy sweep with an "
        "emissions-vs-waiting Pareto front",
        parents=[obs],
    )
    schedule.add_argument(
        "--windows",
        type=int,
        default=1000,
        metavar="N",
        help="sampled (trace offset, job set) windows; every policy "
        "schedules each window's identical job set (default: 1000)",
    )
    schedule.add_argument(
        "--policy",
        default="all",
        metavar="NAME",
        help="one scheduling policy (fifo, edf, carbon_waiting, "
        "carbon_lowest) or 'all' to compare every policy per window "
        "(default: all)",
    )
    schedule.add_argument(
        "--jobs", type=int, default=5, metavar="N",
        help="jobs drawn per window (default: 5)",
    )
    schedule.add_argument(
        "--horizon", type=int, default=48, metavar="H",
        help="simulation window length in hours (default: 48)",
    )
    schedule.add_argument(
        "--seed", type=int, default=2022, help="RNG seed (reproducible)"
    )
    schedule.add_argument(
        "--grid",
        choices=("solar", "flat"),
        default="solar",
        help="grid intensity profile the fleet follows (solar = diurnal "
        "dip, flat = constant; default: solar)",
    )
    schedule.add_argument(
        "--base-ci",
        type=float,
        default=400.0,
        metavar="G",
        help="baseline carbon intensity in g CO2/kWh (default: 400)",
    )
    schedule.add_argument(
        "--threshold-quantile",
        type=float,
        default=0.5,
        metavar="Q",
        help="carbon_waiting's green-start CI quantile in [0, 1] "
        "(default: 0.5)",
    )
    schedule.add_argument(
        "--verify-sample",
        type=int,
        default=0,
        metavar="N",
        help="cross-check N evenly spaced rows against the scalar "
        "reference simulator (default: 0 = off)",
    )
    schedule.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint file for chunked execution (atomic; enables "
        "--resume)",
    )
    schedule.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint instead of starting over",
    )
    schedule.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        metavar="N",
        help="scenario rows evaluated between checkpoint writes "
        "(default: 4096)",
    )
    schedule.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes sharding the sweep rows (results are "
        "bit-identical at any worker count; default: 1)",
    )
    _add_parallel_arguments(schedule)
    schedule.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget; the run checkpoints and exits 3 when it "
        "runs out",
    )

    sub.add_parser(
        "baselines",
        help="compare ACT against prior-work models",
        parents=[obs],
    )

    report = sub.add_parser(
        "report",
        help="generate a product environmental report (Markdown)",
        parents=[obs],
    )
    report.add_argument(
        "--config", required=True, help="JSON platform description"
    )
    report.add_argument("--mass-kg", type=float, default=0.5)
    report.add_argument("--power-w", type=float, default=1.5)
    report.add_argument("--utilization", type=float, default=0.2)
    report.add_argument("--ci", type=float, default=380.0,
                        help="use-phase carbon intensity (g CO2/kWh)")
    report.add_argument("--lifetime-years", type=float, default=3.0)

    sub.add_parser(
        "validate",
        help="run integrity checks over the bundled data tables",
        parents=[obs],
    )

    serve = sub.add_parser(
        "serve",
        help="run the resilient carbon-query HTTP service (micro-batched)",
        parents=[obs],
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 = pick a free port and print it)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        metavar="N",
        help="most concurrent queries coalesced into one kernel call "
        "(1 disables cross-request batching)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="longest a query waits for co-travelers before its batch "
        "fires anyway",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=1024,
        metavar="N",
        help="in-flight request bound; above it load is shed with 429",
    )
    serve.add_argument(
        "--deadline-s",
        type=float,
        default=2.0,
        metavar="S",
        help="default per-request deadline when the client names none",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        metavar="R",
        help="per-client token-bucket refill rate, requests/sec "
        "(0 = unlimited)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=50.0,
        metavar="B",
        help="per-client token-bucket depth",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help="consecutive backend failures that trip the circuit breaker "
        "into cache-only serving",
    )
    serve.add_argument(
        "--breaker-cooldown-s",
        type=float,
        default=1.0,
        metavar="S",
        help="seconds the breaker stays open before probing the backend",
    )
    serve.add_argument(
        "--cache-capacity",
        type=int,
        default=4096,
        metavar="N",
        help="entries in the shared evaluation cache",
    )
    serve.add_argument(
        "--drain-timeout-s",
        type=float,
        default=10.0,
        metavar="S",
        help="longest a SIGTERM drain waits for in-flight requests",
    )
    serve.add_argument(
        "--backend",
        default=None,
        help="kernel backend for every evaluation (default: process-wide "
        "selection)",
    )
    serve.add_argument(
        "--access-log",
        default=None,
        metavar="FILE",
        help="append one JSONL access record per request to FILE",
    )

    torture = sub.add_parser(
        "torture",
        help="crash a checkpointed run at every durability boundary and "
        "prove bit-identical recovery",
        parents=[obs],
    )
    torture.add_argument(
        "--workload",
        default="mc",
        help="workload to torture: mc, sweep, schedule, or all",
    )
    torture.add_argument(
        "--workers", type=int, default=1, help="worker processes per run"
    )
    torture.add_argument(
        "--mode",
        choices=("subprocess", "inprocess"),
        default=None,
        help="subprocess = real SIGKILL (workers=1 only); inprocess = "
        "simulated power loss (default: picked from --workers)",
    )
    torture.add_argument(
        "--kinds",
        default="crash",
        help="comma-separated fault kinds: crash, torn, torn_rename, "
        "drop_fsync, enospc, eio (default: crash)",
    )
    torture.add_argument(
        "--points",
        default=None,
        help="comma-separated crash-point names to restrict the campaign "
        "to (default: every reached point)",
    )
    torture.add_argument(
        "--list-points",
        action="store_true",
        help="list registered crash points and exit",
    )
    torture.add_argument(
        "--json",
        action="store_true",
        help="emit the campaign results as JSON on stdout",
    )
    return parser


def _cmd_footprint(args: argparse.Namespace) -> int:
    if args.config:
        from repro.io.config import load_platform

        platform = load_platform(args.config)
    else:
        fab = FabScenario.for_node(args.node, energy_mix=args.mix)
        components = [LogicComponent("SoC", args.area, fab)]
        if args.dram > 0:
            components.append(
                DramComponent.of("DRAM", args.dram, args.dram_tech)
            )
        if args.ssd > 0:
            components.append(SsdComponent.of("SSD", args.ssd, args.ssd_tech))
        platform = Platform("cli platform", tuple(components))
    report = platform.embodied()
    rows = [
        (item.name, item.category, item.carbon_g / 1000.0) for item in report.items
    ]
    rows.append(("packaging", "packaging", report.packaging_g / 1000.0))
    rows.append(("TOTAL", "", report.total_kg))
    print(ascii_table(("component", "category", "kg CO2e"), rows))
    return 0


def _cmd_cpa(args: argparse.Namespace) -> int:
    rows = []
    for name in node_names():
        fab = FabScenario.for_node(
            name, energy_mix=args.mix, abatement=args.abatement
        )
        params = fab.params_for_area(1.0)
        rows.append(
            (
                name,
                params.epa_kwh_per_cm2,
                params.gpa_g_per_cm2,
                params.fab_yield,
                params.cpa_g_per_cm2(),
            )
        )
    print(
        ascii_table(
            ("node", "EPA kWh/cm2", "GPA g/cm2", "yield", "CPA g/cm2"), rows
        )
    )
    return 0


def _run_experiment_set(experiment_id: str):
    """The results named by an experiment id / 'all' / 'extensions'."""
    key = experiment_id.strip().lower()
    if key == "all":
        return run_all()
    if key == "extensions":
        from repro.experiments import run_all_extensions

        return run_all_extensions()
    return (run_experiment(experiment_id),)


def _workers_policy(
    workers: int,
    shard_rows: "int | None" = None,
    transport: "str | None" = None,
    failure_policy: "str | None" = None,
    max_retries: "int | None" = None,
) -> "object | None":
    """Map the parallel-execution flags to an execution policy.

    Always constructs an :class:`~repro.parallel.ExecutionPolicy` so any
    invalid value fails with :class:`~repro.core.errors.ParameterError`
    (exit code 2).  A plain ``--workers 1`` with no other flag resolves
    to ``None`` so existing serial invocations are untouched (the legacy
    sample stream); explicitly setting shard geometry, transport, or a
    failure policy opts into the policy-driven (sharded-stream) path
    even at one worker.
    """
    from repro.parallel import ExecutionPolicy

    overrides: dict[str, object] = {}
    if shard_rows is not None:
        overrides["shard_rows"] = shard_rows
    if transport is not None:
        overrides["transport"] = transport
    if failure_policy is not None:
        overrides["failure_policy"] = failure_policy
    if max_retries is not None:
        overrides["max_retries"] = max_retries
    policy = ExecutionPolicy(workers=workers, **overrides)
    return policy if (policy.parallel or overrides) else None


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.engine.backends import use_backend
    from repro.engine.plan import use_planner
    from repro.parallel import use_execution_policy

    key = args.id.strip().lower()
    policy = _workers_policy(
        args.workers,
        args.shard_rows,
        args.transport,
        args.failure_policy,
        args.max_retries,
    )
    # use_backend(None) / use_planner(None) re-install the current
    # process-wide selections, so invocations without --backend or
    # --planner are exactly the historical behavior.
    with use_backend(args.backend), use_planner(args.planner), \
            use_execution_policy(policy):
        results = _run_experiment_set(args.id)
    failures = [c for r in results for c in r.failed_checks()]
    if args.json:
        import json

        payload = {
            "experiments": [result.as_dict() for result in results],
            "all_passed": not failures,
        }
        print(json.dumps(payload, indent=2))
        return 1 if failures else 0
    if key in ("all", "extensions"):
        print(result_summary(results))
        for check in failures:
            print(f"FAIL: {check.name} (observed {check.observed}, "
                  f"expected {check.expected})")
        return 1 if failures else 0
    print(results[0].render_text())
    return 1 if failures else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.engine.cache import DEFAULT_CACHE
    from repro.obs.context import current_context
    from repro.obs.trace import span_cost_table

    context = current_context()
    # Scope the process-wide cache's statistics to this profiled run, then
    # mirror them into the event stream so the trace carries hit/miss
    # counts even for experiments that never enter the cached path.
    DEFAULT_CACHE.reset_stats()
    results = _run_experiment_set(args.id)
    stats = DEFAULT_CACHE.stats()
    context.event("cache_stats", **stats.as_dict())
    print(result_summary(results))
    print()
    print("span tree:")
    print(context.tracer.render_tree())
    costs = span_cost_table(context.tracer)
    if len(costs) > 1:
        print()
        print("per-experiment cost:")
        rows = [(name, round(seconds * 1e3, 3)) for name, seconds in costs]
        print(ascii_table(("experiment", "wall ms"), rows))
    print()
    print(context.metrics.render())
    print(
        f"cache: {stats.hits} hits, {stats.misses} misses, "
        f"{stats.evictions} evictions"
    )
    failures = [c for r in results for c in r.failed_checks()]
    return 1 if failures else 0


def _cmd_socs(_: argparse.Namespace) -> int:
    rows = [
        (
            soc.name,
            soc.family,
            soc.year,
            soc.node,
            soc.die_area_mm2,
            soc.tdp_w,
            soc.perf_score,
            soc_platform(soc).embodied_kg(),
        )
        for soc in all_socs()
    ]
    print(
        ascii_table(
            ("SoC", "family", "year", "node", "mm^2", "TDP W", "score",
             "embodied kg"),
            rows,
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    result = run_experiment(args.id)
    if not result.figures:
        print(f"experiment {args.id} has no figure panels", file=sys.stderr)
        return 2
    if not 0 <= args.panel < len(result.figures):
        print(
            f"panel {args.panel} out of range (have {len(result.figures)})",
            file=sys.stderr,
        )
        return 2
    figure = result.figures[args.panel]
    if args.format == "json":
        print(figure_to_json(figure))
    else:
        print(figure_to_csv(figure), end="")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.analysis import ActScenario, run_monte_carlo, tornado
    from repro.engine.backends import use_backend
    from repro.engine.plan import use_planner

    base = ActScenario()
    records = tornado(base)[: args.top]
    rows = [
        (r.parameter, r.low, r.high, r.response_low / 1000.0,
         r.response_high / 1000.0, r.swing / 1000.0)
        for r in records
    ]
    print(f"Base scenario footprint: {base.total_g() / 1000.0:.2f} kg CO2e")
    print("Tornado (one-at-a-time over Table 1 ranges):")
    print(
        ascii_table(
            ("parameter", "low", "high", "CF@low kg", "CF@high kg", "swing kg"),
            rows,
        )
    )
    with use_backend(args.backend), use_planner(args.planner):
        result = run_monte_carlo(
            base,
            draws=args.draws,
            policy=_workers_policy(
                args.workers,
                args.shard_rows,
                args.transport,
                args.failure_policy,
                args.max_retries,
            ),
        )
    print()
    print(
        f"Monte Carlo ({args.draws} draws): mean {result.mean / 1000.0:.2f} kg, "
        f"90% interval [{result.p5 / 1000.0:.2f}, {result.p95 / 1000.0:.2f}] kg"
    )
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    import time

    from repro.analysis import ActScenario, run_monte_carlo
    from repro.engine.backends import use_backend
    from repro.engine.plan import use_planner

    try:
        percentiles = [
            float(field) for field in args.percentiles.split(",") if field.strip()
        ]
    except ValueError:
        print(f"invalid percentile list: {args.percentiles!r}", file=sys.stderr)
        return 2
    if not percentiles or any(not 0 <= q <= 100 for q in percentiles):
        print("percentiles must be numbers in [0, 100]", file=sys.stderr)
        return 2

    from repro.engine.cache import EvaluationCache

    # A private cache so the printed hit/miss/eviction stats describe this
    # run alone, not whatever the process-wide cache accumulated before.
    cache = EvaluationCache()
    guard = None
    if args.policy != "off":
        from repro.robustness import GuardedEngine

        guard = GuardedEngine(policy=args.policy, cache=cache)

    base = ActScenario()
    policy = _workers_policy(
        args.workers,
        args.shard_rows,
        args.transport,
        args.failure_policy,
        args.max_retries,
    )
    started = time.perf_counter()
    chunked = (
        args.checkpoint is not None
        or args.resume
        or args.chunk_rows is not None
        or args.max_seconds is not None
    )
    if chunked:
        from repro.robustness import (
            DEFAULT_CHUNK_ROWS,
            CancelToken,
            run_monte_carlo_chunked,
        )

        cancel = (
            CancelToken(deadline_seconds=args.max_seconds)
            if args.max_seconds is not None
            else None
        )
        with use_backend(args.backend), use_planner(args.planner):
            result = run_monte_carlo_chunked(
                base,
                draws=args.draws,
                seed=args.seed,
                distribution=args.distribution,
                chunk_rows=args.chunk_rows or DEFAULT_CHUNK_ROWS,
                checkpoint=args.checkpoint,
                resume=args.resume,
                cancel=cancel,
                guard=guard,
                cache=cache,
                policy=policy,
            )
    else:
        with use_backend(args.backend), use_planner(args.planner):
            result = run_monte_carlo(
                base,
                draws=args.draws,
                seed=args.seed,
                distribution=args.distribution,
                guard=guard,
                cache=cache,
                policy=policy,
            )
    elapsed = time.perf_counter() - started
    print(
        f"Monte Carlo over the Table 1 ranges — batched engine, "
        f"{args.draws} draws, seed {args.seed}, {args.distribution}"
        + (f", policy={args.policy}" if guard is not None else "")
    )
    if guard is not None and len(result.samples) < args.draws:
        print(
            f"guard masked {args.draws - len(result.samples)} of "
            f"{args.draws} draws; statistics cover the survivors"
        )
    partial = getattr(result, "partial", None)
    if partial is not None:
        print(
            f"DEGRADED: quarantined {len(partial.quarantined)} shard(s) "
            f"({partial.rows} draws dropped after retries); statistics "
            f"cover the surviving draws",
            file=sys.stderr,
        )
    print(f"Base scenario footprint: {result.base_response / 1000.0:.2f} kg CO2e")
    print(
        f"mean {result.mean / 1000.0:.2f} kg, std {result.std / 1000.0:.2f} kg"
    )
    rows = [
        (f"p{q:g}", value / 1000.0)
        for q, value in zip(percentiles, result.percentiles(percentiles))
    ]
    print(ascii_table(("percentile", "kg CO2e"), rows))
    rate = args.draws / elapsed if elapsed > 0 else float("inf")
    print(f"throughput: {rate:,.0f} points/sec ({elapsed * 1e3:.1f} ms)")
    stats = cache.stats()
    print(
        f"cache: {stats.hits} hits, {stats.misses} misses, "
        f"{stats.evictions} evictions ({stats.hit_rate:.0%} hit rate, "
        f"{stats.size}/{stats.capacity} entries)"
    )
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    import time

    from repro.core.intensity import constant_trace, solar_diurnal_trace
    from repro.engine.backends import use_backend
    from repro.scheduling import (
        POLICY_NAMES,
        ScheduleSweepSpec,
        run_policy_sweep,
    )

    if args.grid == "solar":
        trace = solar_diurnal_trace(args.base_ci)
    else:
        trace = constant_trace(args.base_ci)
    key = args.policy.strip().lower()
    policies = POLICY_NAMES if key == "all" else (key,)
    spec = ScheduleSweepSpec(
        trace=trace,
        windows=args.windows,
        policies=policies,
        jobs_per_window=args.jobs,
        horizon_hours=args.horizon,
        seed=args.seed,
        threshold_quantile=args.threshold_quantile,
    )
    policy = _workers_policy(
        args.workers,
        args.shard_rows,
        args.transport,
        args.failure_policy,
        args.max_retries,
    )
    cancel = None
    if args.max_seconds is not None:
        from repro.robustness import CancelToken

        cancel = CancelToken(deadline_seconds=args.max_seconds)
    started = time.perf_counter()
    with use_backend(args.backend):
        result = run_policy_sweep(
            spec,
            policy=policy,
            chunk_rows=args.chunk_rows,
            checkpoint=args.checkpoint,
            resume=args.resume,
            cancel=cancel,
            verify_sample=args.verify_sample,
        )
    elapsed = time.perf_counter() - started
    print(
        f"Carbon-aware scheduling sweep — {spec.windows} windows x "
        f"{len(spec.policies)} policies ({spec.rows} scenarios), "
        f"{spec.jobs_per_window} jobs/window, {args.grid} grid at "
        f"{args.base_ci:g} g/kWh, seed {spec.seed}"
    )
    rows = [
        (
            point.policy,
            round(point.mean_emissions_g, 1),
            round(point.mean_wait_hours, 3),
            round(point.max_wait_hours, 2),
            round(point.mean_energy_kwh, 3),
            int(point.total_preemptions),
            f"{point.feasible_windows}/{point.windows}",
        )
        for point in result.points
    ]
    print(
        ascii_table(
            (
                "policy",
                "mean g CO2",
                "mean wait h",
                "max wait h",
                "mean kWh",
                "preemptions",
                "feasible",
            ),
            rows,
        )
    )
    print(
        "Pareto front (emissions vs waiting): "
        + ", ".join(result.pareto_policies)
    )
    try:
        fifo = result.point_for("fifo")
    except Exception:
        fifo = None
    if fifo is not None and fifo.mean_emissions_g > 0:
        for point in result.points:
            if point.policy == "fifo" or point.feasible_windows == 0:
                continue
            delta_em = point.mean_emissions_g / fifo.mean_emissions_g - 1.0
            delta_wait = point.mean_wait_hours - fifo.mean_wait_hours
            print(
                f"  {point.policy}: {delta_em:+.1%} emissions vs fifo for "
                f"{delta_wait:+.2f} h mean waiting"
            )
    if args.verify_sample > 0:
        print(
            f"verified {min(args.verify_sample, spec.rows)} rows against "
            "the scalar reference"
        )
    rate = spec.rows / elapsed if elapsed > 0 else float("inf")
    print(f"throughput: {rate:,.0f} scenarios/sec ({elapsed * 1e3:.1f} ms)")
    return 0


def _cmd_baselines(_: argparse.Namespace) -> int:
    from repro.baselines import exergy_blind_spot, greenchip_vs_act

    rows = [
        (
            row.node,
            row.act_cpa_g_per_cm2,
            row.baseline_cpa_g_per_cm2,
            row.act_over_baseline,
            "yes" if row.baseline_extrapolated else "no",
        )
        for row in greenchip_vs_act()
    ]
    print("ACT vs GreenChip-style parametric inventory (g CO2/cm^2):")
    print(
        ascii_table(
            ("node", "ACT", "baseline", "ACT/baseline", "extrapolated?"), rows
        )
    )
    blind = exergy_blind_spot()
    print()
    print("Exergy blind spot (Taiwan-grid vs solar fab, same die):")
    print(f"  ACT separates the scenarios by {blind.act_separation:.2f}x")
    print(f"  exergy scores them identically ({blind.exergy_separation:.2f}x)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.lifecycle import device_lifecycle
    from repro.io.config import load_platform
    from repro.reporting.per import product_environmental_report

    platform = load_platform(args.config)
    lifecycle = device_lifecycle(
        platform,
        mass_kg=args.mass_kg,
        average_power_w=args.power_w,
        utilization=args.utilization,
        ci_use_g_per_kwh=args.ci,
        lifetime_years=args.lifetime_years,
    )
    print(
        product_environmental_report(
            platform,
            lifecycle,
            lifetime_years=args.lifetime_years,
            ci_use_g_per_kwh=args.ci,
        )
    )
    return 0


def _cmd_validate(_: argparse.Namespace) -> int:
    from repro.data.validation import validate_all

    findings = validate_all()
    rows = [
        (f.table, f.check, "pass" if f.passed else "FAIL", f.detail)
        for f in findings
    ]
    print(ascii_table(("table", "check", "status", "detail"), rows))
    failed = [f for f in findings if not f.passed]
    print(f"\n{len(findings) - len(failed)}/{len(findings)} checks passed")
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.events import JsonlEventSink
    from repro.service.config import ServiceConfig
    from repro.service.http import serve_forever

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        queue_limit=args.queue_limit,
        default_deadline_s=args.deadline_s,
        rate_limit_per_s=args.rate,
        rate_burst=args.burst,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        cache_capacity=args.cache_capacity,
        drain_timeout_s=args.drain_timeout_s,
        backend=args.backend,
    )
    access_log = (
        JsonlEventSink(args.access_log) if args.access_log else None
    )
    from repro.service.app import CarbonQueryService

    service = CarbonQueryService(config, access_log=access_log)

    def _ready(host: str, port: int) -> None:
        # The bound port goes to stdout so ``--port 0`` harnesses can
        # discover it; flush because a subprocess pipe is block-buffered.
        print(f"listening on http://{host}:{port}", flush=True)

    try:
        return serve_forever(
            service=service, ready=_ready, stream=sys.stderr
        )
    finally:
        if access_log is not None:
            access_log.close()


def _cmd_torture(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.robustness.durability import CRASH_POINTS
    from repro.robustness.torture import (
        ERROR_KINDS,
        KILL_KINDS,
        TORTURE_WORKLOADS,
        run_error_campaign,
        run_kill_campaign,
    )

    if args.list_points:
        for point in sorted(CRASH_POINTS):
            print(f"{point}: {CRASH_POINTS[point]}")
        return 0
    workloads = (
        sorted(TORTURE_WORKLOADS)
        if args.workload == "all"
        else [args.workload]
    )
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    points = (
        tuple(p.strip() for p in args.points.split(",") if p.strip())
        if args.points
        else None
    )
    kill_kinds = tuple(k for k in kinds if k in KILL_KINDS)
    error_kinds = tuple(k for k in kinds if k in ERROR_KINDS)
    unknown = [k for k in kinds if k not in KILL_KINDS and k not in ERROR_KINDS]
    if unknown:
        print(f"error: unknown fault kinds {unknown}", file=sys.stderr)
        return 2
    # Only real-SIGKILL ``crash`` faults can run in subprocess mode; the
    # torn/drop_fsync family needs the in-process power-loss simulation.
    # With no explicit --mode, split the kinds so each runs where it can
    # (crash gets the real kill when workers allow it).
    kill_batches: list[tuple[tuple[str, ...], str | None]] = []
    if args.mode is not None or args.workers != 1:
        if kill_kinds:
            kill_batches.append((kill_kinds, args.mode))
    else:
        crash_kinds = tuple(k for k in kill_kinds if k == "crash")
        sim_kinds = tuple(k for k in kill_kinds if k != "crash")
        if crash_kinds:
            kill_batches.append((crash_kinds, None))
        if sim_kinds:
            kill_batches.append((sim_kinds, "inprocess"))
    results = []
    for workload in workloads:
        for batch_kinds, batch_mode in kill_batches:
            results.append(
                run_kill_campaign(
                    workload,
                    workers=args.workers,
                    mode=batch_mode,
                    kinds=batch_kinds,
                    points=points,
                )
            )
        if error_kinds:
            results.append(
                run_error_campaign(
                    workload,
                    workers=args.workers,
                    kinds=error_kinds,
                    points=points,
                )
            )
    if args.json:
        print(json_module.dumps([r.as_dict() for r in results], indent=2))
    else:
        for campaign in results:
            print(campaign.summary())
            for outcome in campaign.outcomes:
                if not outcome.ok:
                    print(
                        f"  FAIL {outcome.kind}@{outcome.point} "
                        f"[{outcome.phase}]: {outcome.detail}"
                    )
        covered = sorted(
            {p for r in results for p in r.points_covered}
        )
        print(
            f"{len(covered)} distinct crash points exercised across "
            f"{len(results)} campaign(s)"
        )
    return 0 if all(r.passed for r in results) else 1


_COMMANDS = {
    "footprint": _cmd_footprint,
    "report": _cmd_report,
    "validate": _cmd_validate,
    "cpa": _cmd_cpa,
    "experiment": _cmd_experiment,
    "profile": _cmd_profile,
    "socs": _cmd_socs,
    "export": _cmd_export,
    "sensitivity": _cmd_sensitivity,
    "montecarlo": _cmd_montecarlo,
    "schedule": _cmd_schedule,
    "baselines": _cmd_baselines,
    "serve": _cmd_serve,
    "torture": _cmd_torture,
}


def _build_context(
    args: argparse.Namespace, argv: Sequence[str] | None
) -> "RunContext | None":
    """An enabled run context when the invocation asked for observability.

    ``--trace``, ``--metrics``, and the ``profile`` subcommand all turn the
    spine on; every other invocation keeps the no-op null context.
    """
    from repro.obs.context import RunContext

    trace_path = getattr(args, "trace", None)
    if trace_path is None and not getattr(args, "metrics", False) and (
        args.command != "profile"
    ):
        return None
    return RunContext.create(
        trace_path=trace_path,
        seed=getattr(args, "seed", None),
        argv=list(argv) if argv is not None else sys.argv[1:],
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Model-stack errors (:class:`~repro.core.errors.ReproError`) become a
    one-line stderr message and exit code 2; an interrupted-but-resumable
    run (:class:`~repro.core.errors.RunInterrupted`) exits 3 with a resume
    hint.  ``--debug`` re-raises for a full traceback.
    """
    from repro.core.errors import ReproError, RunInterrupted
    from repro.obs.context import use_context

    args = _build_parser().parse_args(argv)
    context = _build_context(args, argv)
    try:
        if context is None:
            return _COMMANDS[args.command](args)
        with use_context(context):
            return _COMMANDS[args.command](args)
    except RunInterrupted as error:
        if args.debug:
            raise
        print(f"interrupted: {error}", file=sys.stderr)
        if getattr(error, "checkpoint", None) is not None:
            print(
                "re-run the same command with --resume to continue",
                file=sys.stderr,
            )
        return 3
    except ReproError as error:
        if args.debug:
            raise
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if context is not None:
            if getattr(args, "metrics", False):
                print("== metrics ==", file=sys.stderr)
                print(context.metrics.render(), file=sys.stderr)
            context.close()
            trace_path = getattr(args, "trace", None)
            if trace_path is not None:
                print(
                    f"trace: {context.sink.emitted} events -> {trace_path}",
                    file=sys.stderr,
                )


if __name__ == "__main__":
    sys.exit(main())
