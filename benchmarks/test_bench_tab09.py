"""Benchmark: regenerate Tables 9-11: DRAM/SSD/HDD carbon per GB."""


def test_bench_tab9(verify):
    """Tables 9-11: DRAM/SSD/HDD carbon per GB — regenerate, print, and verify against the paper."""
    verify("tab9")
