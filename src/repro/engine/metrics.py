"""Table 2 optimization metrics as array expressions over N designs.

The scalar registry in :mod:`repro.core.metrics` evaluates one
(design, metric) pair per call; Figures 8, 9, and 12 score every candidate
under every metric.  This module computes each metric as a single numpy
expression over stacked (C, E, D, A) columns, and re-exposes the results in
the exact shapes the scalar helpers produce (``score_table`` /
``winners``-compatible dicts) so experiments can swap the backend without
changing their downstream reporting.

The metric *expressions* themselves are supplied by the active
:class:`~repro.engine.backends.KernelBackend` — the reference backend uses
one plain numpy expression per metric, the fused backends evaluate the
squared-term metrics into a single output buffer.  Name canonicalization
and the EDAP area requirement live here, identical across backends.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import UnknownEntryError
from repro.core.metrics import METRICS, DesignPoint
from repro.engine.backends import KernelBackend, resolve_backend

_CANONICAL = tuple(METRICS)

#: Which stacked design columns each Table 2 metric actually reads.
#: Drives incremental re-scoring (:class:`repro.dse.optimizer.ExplorationSession`):
#: a metric's cached table entry stays valid while none of its input
#: columns changed between optimizer iterations.
METRIC_INPUTS: Mapping[str, tuple[str, ...]] = {
    "EDP": ("energy_kwh", "delay_s"),
    "EDAP": ("energy_kwh", "delay_s", "area_mm2"),
    "CDP": ("embodied_carbon_g", "delay_s"),
    "CEP": ("embodied_carbon_g", "energy_kwh"),
    "C2EP": ("embodied_carbon_g", "energy_kwh"),
    "CE2P": ("embodied_carbon_g", "energy_kwh"),
}


def canonical_metric(name: str) -> str:
    """Normalize a metric spelling (``"edp"``, ``"ED-P"``…) to its key."""
    key = name.strip().upper().replace("-", "").replace("_", "")
    if key not in METRICS:
        raise UnknownEntryError("metric", name, METRICS)
    return key


_canonical_name = canonical_metric


def metric_columns(
    embodied_carbon_g: np.ndarray,
    energy_kwh: np.ndarray,
    delay_s: np.ndarray,
    area_mm2: np.ndarray | None = None,
    metric_names: Iterable[str] | None = None,
    backend: "KernelBackend | str | None" = None,
) -> dict[str, np.ndarray]:
    """All requested Table 2 metrics over stacked design columns.

    Args:
        embodied_carbon_g: Embodied carbon ``C`` per design.
        energy_kwh: Operational energy ``E`` per design.
        delay_s: Delay ``D`` per design.
        area_mm2: Area ``A`` per design; required only for EDAP.
        metric_names: Metrics to compute (default: all of Table 2;
            EDAP is skipped automatically when no area is given).
        backend: Which :class:`~repro.engine.backends.KernelBackend`
            evaluates the expressions — an instance, a registered name,
            or ``None`` for the process-wide selection.

    Returns:
        ``{metric: scores array}`` with lower-is-better scores.
    """
    resolved = resolve_backend(backend)
    carbon = np.asarray(embodied_carbon_g, dtype=np.float64)
    energy = np.asarray(energy_kwh, dtype=np.float64)
    delay = np.asarray(delay_s, dtype=np.float64)
    area = None if area_mm2 is None else np.asarray(area_mm2, dtype=np.float64)
    if metric_names is None:
        names = tuple(name for name in _CANONICAL if name != "EDAP" or area is not None)
    else:
        names = tuple(_canonical_name(name) for name in metric_names)
    if "EDAP" in names and area is None:
        raise UnknownEntryError("design point area (required by EDAP)", "(batch)")
    return resolved.metric_columns(carbon, energy, delay, area, names)


def stack_design_points(
    points: Sequence[DesignPoint],
) -> dict[str, np.ndarray | None]:
    """Design points as struct-of-arrays columns (area None-aware).

    The ``area_mm2`` entry is ``None`` when *any* point lacks an area, since
    EDAP is undefined for a partially-specified candidate set; the
    per-metric helpers below fall back to the scalar skip semantics there.
    """
    if not points:
        raise UnknownEntryError("design point set", "(empty)")
    has_area = all(point.area_mm2 is not None for point in points)
    return {
        "embodied_carbon_g": np.array(
            [point.embodied_carbon_g for point in points], dtype=np.float64
        ),
        "energy_kwh": np.array(
            [point.energy_kwh for point in points], dtype=np.float64
        ),
        "delay_s": np.array([point.delay_s for point in points], dtype=np.float64),
        "area_mm2": (
            np.array([point.area_mm2 for point in points], dtype=np.float64)
            if has_area
            else None
        ),
    }


def score_table_batched(
    points: Sequence[DesignPoint], metric_names: Iterable[str] | None = None
) -> dict[str, dict[str, float]]:
    """Batched drop-in for :func:`repro.core.metrics.score_table`.

    Returns the same ``{metric: {design name: score}}`` mapping, computed
    from one array expression per metric instead of a per-pair Python call.
    """
    columns = stack_design_points(points)
    requested = (
        tuple(_canonical_name(name) for name in metric_names)
        if metric_names is not None
        else _CANONICAL
    )
    names = [point.name for point in points]
    return {
        metric: metric_table_entry(points, columns, names, metric)
        for metric in requested
    }


def metric_table_entry(
    points: Sequence[DesignPoint],
    columns: Mapping[str, np.ndarray | None],
    names: Sequence[str],
    metric: str,
) -> dict[str, float]:
    """One metric's ``{design name: score}`` row of the score table.

    The loop body of :func:`score_table_batched`, factored out so
    incremental re-scoring (:class:`repro.dse.optimizer.ExplorationSession`)
    can recompute exactly the metrics whose input columns changed and
    still produce byte-identical table entries.  EDAP keeps the scalar
    path's skip semantics: only area-carrying candidates appear.
    """
    if metric == "EDAP":
        eligible = [
            index
            for index, point in enumerate(points)
            if point.area_mm2 is not None
        ]
        if not eligible:
            return {}
        area = np.array(
            [points[index].area_mm2 for index in eligible], dtype=np.float64
        )
        scores = metric_columns(
            columns["embodied_carbon_g"][eligible],
            columns["energy_kwh"][eligible],
            columns["delay_s"][eligible],
            area,
            metric_names=("EDAP",),
        )["EDAP"]
        return {
            names[index]: float(score)
            for index, score in zip(eligible, scores)
        }
    scores = metric_columns(
        columns["embodied_carbon_g"],
        columns["energy_kwh"],
        columns["delay_s"],
        columns["area_mm2"],
        metric_names=(metric,),
    )[metric]
    return dict(zip(names, (float(s) for s in scores)))


def winners_from_table(
    table: Mapping[str, Mapping[str, float]],
) -> dict[str, str]:
    """Per-metric argmin over an already-computed score table.

    Ties resolve to the earliest design (``np.argmin`` breaks ties by
    position; row order follows the candidate order), matching ``min``
    over the scalar path.  Empty rows (EDAP with no area-carrying
    candidates) are skipped.
    """
    result: dict[str, str] = {}
    for metric, row in table.items():
        if not row:
            continue
        labels = list(row)
        result[metric] = labels[int(np.argmin(np.array(list(row.values()))))]
    return result


def winners_batched(
    points: Sequence[DesignPoint], metric_names: Iterable[str] | None = None
) -> dict[str, str]:
    """Batched drop-in for :func:`repro.core.metrics.winners`.

    Per-metric argmin over the score arrays; ties resolve to the earliest
    design, matching ``min`` over the scalar path.
    """
    return winners_from_table(score_table_batched(points, metric_names))


def best_index(
    scores: Mapping[str, np.ndarray] | np.ndarray, metric: str | None = None
) -> int:
    """Index of the minimizing design in a score column."""
    if isinstance(scores, Mapping):
        if metric is None:
            raise UnknownEntryError("metric", "(none given)", scores)
        scores = scores[_canonical_name(metric)]
    return int(np.argmin(np.asarray(scores)))
