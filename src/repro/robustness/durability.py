"""Crash-consistent durability: a write-ahead chunk store with salvage.

Long runs persist their progress through this module so that a SIGKILL,
power loss, full disk, or flaky device mid-write can never cost more than
the last uncommitted chunk — and never silently corrupts what *was*
committed.  Three pieces:

* :class:`DurableIO` — the filesystem boundary.  Every durability-
  relevant syscall (write, fsync, rename, truncate, directory fsync)
  goes through one named method carrying a registered **crash point**
  label, so the fault-injection layer
  (:class:`~repro.robustness.faultinject.FaultyIO`) can kill the process,
  tear the write, drop the fsync, or raise ``ENOSPC``/``EIO`` at every
  boundary the store crosses.
* :class:`DurableChunkStore` — a write-ahead, generation-tagged chunk
  log plus a manifest.  Chunks are appended as CRC-checked,
  length-prefixed records and fsynced; a commit then atomically replaces
  the manifest (tmp-write → fsync → rename → directory fsync) to point
  at the new generation and committed byte offset.  Readers trust only
  what the manifest points at.
* :func:`load_store_state` — the salvage path.  On a corrupt, torn, or
  partial store it recovers the **longest valid committed prefix** of
  chunk records, quarantines everything after the first bad record for
  recompute, and reports exactly what was kept and lost
  (:class:`SalvageReport`) — never silent acceptance of bad bytes, never
  wholesale discard of good ones.

The commit protocol's invariant: at every instant there is either a valid
manifest pointing at fully-fsynced log bytes, or a previous valid
manifest (rename is atomic), or no manifest at all (only before the very
first commit).  A crash therefore loses at most the work since the last
commit, and :func:`load_store_state` proves it by construction in the
torture harness (:mod:`repro.robustness.torture`).
"""

from __future__ import annotations

import io as io_module
import json
import os
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Iterator, Mapping

import numpy as np

from repro.core.errors import CheckpointError

#: Magic prefix of every chunk record in the write-ahead log.
RECORD_MAGIC = b"ACTW"

#: On-disk format version of the chunk store (log records + manifest).
STORE_FORMAT = 1

#: Suffix of the manifest file living next to the chunk log.
MANIFEST_SUFFIX = ".manifest"

#: Sanity bounds used while walking a possibly-corrupt log: a header or
#: payload length beyond these is treated as unframeable garbage.
_MAX_HEADER_BYTES = 1_000_000
_MAX_PAYLOAD_BYTES = 1 << 34

# --------------------------------------------------------------------------
# Crash points
# --------------------------------------------------------------------------

#: Every registered crash point, name → human description.  The torture
#: harness enumerates this registry and proves that killing the process
#: at each point leaves a store that resumes bit-identically.
CRASH_POINTS: dict[str, str] = {}


def register_crash_point(name: str, description: str) -> str:
    """Register a named filesystem crash point and return its name.

    Call sites pass the returned name into the :class:`DurableIO`
    primitives; the fault-injection layer matches on it.  Registering the
    same name twice is allowed (and keeps the first description) so
    modules can be reloaded safely.
    """
    CRASH_POINTS.setdefault(name, description)
    return name


CP_MANIFEST_UNLINK = register_crash_point(
    "store.manifest.unlink", "before a fresh run removes the old manifest"
)
CP_LOG_OPEN = register_crash_point(
    "store.log.open", "before the chunk log is opened (created/truncated)"
)
CP_LOG_TRUNCATE = register_crash_point(
    "store.log.truncate", "before the log is trimmed to its valid prefix"
)
CP_LOG_TRUNCATED = register_crash_point(
    "store.log.truncated", "after the log trim completed"
)
CP_CHUNK_WRITE = register_crash_point(
    "store.chunk.write", "before a chunk record's bytes are written"
)
CP_CHUNK_FSYNC = register_crash_point(
    "store.chunk.fsync", "before the chunk log is fsynced"
)
CP_CHUNK_SYNCED = register_crash_point(
    "store.chunk.synced", "after a chunk record reached stable storage"
)
CP_MANIFEST_TMP_OPEN = register_crash_point(
    "store.manifest.tmp.open", "before the manifest temp file is opened"
)
CP_MANIFEST_TMP_WRITE = register_crash_point(
    "store.manifest.tmp.write", "before the manifest body is written"
)
CP_MANIFEST_TMP_FSYNC = register_crash_point(
    "store.manifest.tmp.fsync", "before the manifest temp file is fsynced"
)
CP_MANIFEST_RENAME = register_crash_point(
    "store.manifest.rename", "before the manifest rename commits"
)
CP_MANIFEST_RENAMED = register_crash_point(
    "store.manifest.renamed", "after the manifest rename, before dir fsync"
)
CP_DIR_FSYNC = register_crash_point(
    "store.dir.fsync", "before the containing directory is fsynced"
)
CP_COMMITTED = register_crash_point(
    "store.committed", "after a commit is fully durable"
)
CP_JSONL_OPEN = register_crash_point(
    "obs.jsonl.open", "before a JSONL event sink opens its file"
)
CP_JSONL_WRITE = register_crash_point(
    "obs.jsonl.write", "before a JSONL event line is written"
)
CP_JSONL_FLUSHED = register_crash_point(
    "obs.jsonl.flushed", "after a JSONL event line was flushed"
)
CP_ATOMIC_TMP_WRITE = register_crash_point(
    "atomic.tmp.write", "before an atomic-file payload is written"
)
CP_ATOMIC_TMP_FSYNC = register_crash_point(
    "atomic.tmp.fsync", "before an atomic-file temp is fsynced"
)
CP_ATOMIC_RENAME = register_crash_point(
    "atomic.rename", "before an atomic-file rename commits"
)


# --------------------------------------------------------------------------
# The I/O boundary
# --------------------------------------------------------------------------


class DurableIO:
    """The real filesystem boundary, with named crash-point hooks.

    Every method takes the crash-point label of its call site and invokes
    :meth:`reached` before performing the operation; marker points (the
    ``*.synced`` / ``*.renamed`` / ``*.committed`` family) are signalled
    through :meth:`reached` directly after the preceding operation
    completed.  The base class performs the operations verbatim;
    :class:`~repro.robustness.faultinject.FaultyIO` overrides them to
    inject crashes, torn writes, dropped fsyncs, and I/O errors.
    """

    def reached(self, point: str) -> None:
        """Crash-point hook: a durability boundary is about to be crossed."""

    def open(self, path: str, mode: str, point: str) -> IO:
        """Open ``path`` (text mode iff ``mode`` has no ``b``)."""
        self.reached(point)
        if "b" in mode:
            return open(path, mode)
        return open(path, mode, encoding="utf-8")

    def write(self, handle: IO, data: "bytes | str", point: str) -> None:
        """Write ``data`` to an open handle."""
        self.reached(point)
        handle.write(data)

    def fsync(self, handle: IO, point: str) -> None:
        """Flush and fsync an open handle."""
        self.reached(point)
        handle.flush()
        os.fsync(handle.fileno())

    def flush(self, handle: IO, point: str) -> None:
        """Flush an open handle (no fsync — used by audit streams)."""
        self.reached(point)
        handle.flush()

    def replace(self, source: str, destination: str, point: str) -> None:
        """Atomically rename ``source`` over ``destination``."""
        self.reached(point)
        os.replace(source, destination)

    def unlink(self, path: str, point: str) -> None:
        """Remove ``path`` if it exists."""
        self.reached(point)
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def truncate(self, handle: IO, size: int, point: str) -> None:
        """Truncate an open handle to ``size`` bytes."""
        self.reached(point)
        handle.truncate(size)

    def fsync_dir(self, path: str, point: str) -> None:
        """Fsync the directory containing ``path`` (rename durability)."""
        self.reached(point)
        directory = os.path.dirname(os.path.abspath(path)) or "."
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


_DEFAULT_IO = DurableIO()
_INSTALLED_IO: DurableIO | None = None


def current_io() -> DurableIO:
    """The process-wide :class:`DurableIO` (the real one by default)."""
    return _INSTALLED_IO if _INSTALLED_IO is not None else _DEFAULT_IO


def resolve_io(io: "DurableIO | None") -> DurableIO:
    """Normalize an ``io=`` argument: ``None`` → the installed layer."""
    return io if io is not None else current_io()


def install_durable_io(io: "DurableIO | None") -> None:
    """Install (or with ``None`` reset) the process-wide I/O layer.

    Used by torture-harness child processes; interactive code should
    prefer the scoped :func:`use_durable_io`.
    """
    global _INSTALLED_IO
    _INSTALLED_IO = io


@contextmanager
def use_durable_io(io: "DurableIO | None") -> Iterator[DurableIO]:
    """Scope the process-wide I/O layer to a ``with`` block."""
    global _INSTALLED_IO
    previous = _INSTALLED_IO
    _INSTALLED_IO = io
    try:
        yield current_io()
    finally:
        _INSTALLED_IO = previous


# --------------------------------------------------------------------------
# Atomic whole-file writes (manifests, benchmark payloads)
# --------------------------------------------------------------------------


def atomic_write_bytes(
    path: "str | os.PathLike", data: bytes, *, io: "DurableIO | None" = None
) -> None:
    """Write ``data`` to ``path`` atomically (tmp → fsync → rename).

    A crash at any instant leaves either the previous file contents or
    the new ones — never a truncated mixture.
    """
    path = os.fspath(path)
    layer = resolve_io(io)
    temp = f"{path}.tmp"
    try:
        handle = layer.open(temp, "wb", CP_ATOMIC_TMP_WRITE)
        try:
            layer.write(handle, data, CP_ATOMIC_TMP_WRITE)
            layer.fsync(handle, CP_ATOMIC_TMP_FSYNC)
        finally:
            handle.close()
        layer.replace(temp, path, CP_ATOMIC_RENAME)
        layer.fsync_dir(path, CP_DIR_FSYNC)
    finally:
        if os.path.exists(temp):
            try:
                os.remove(temp)
            except OSError:  # pragma: no cover - cleanup best effort
                pass


def atomic_write_json(
    path: "str | os.PathLike",
    payload: object,
    *,
    indent: int | None = 2,
    io: "DurableIO | None" = None,
) -> None:
    """JSON-serialize ``payload`` and write it atomically to ``path``.

    The writer of record for ``BENCH_*.json`` and manifest-shaped
    artifacts: an interrupted benchmark or trace run can no longer leave
    a truncated payload behind for CI to choke on.
    """
    text = json.dumps(payload, indent=indent) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"), io=io)


# --------------------------------------------------------------------------
# Record framing
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ChunkRecord:
    """One decoded record of the write-ahead chunk log.

    Attributes:
        index: Append-order index of the record within its store.
        start: First global row the record's arrays cover.
        stop: One past the last global row covered.
        generation: The commit generation the record was appended under.
        kind: The run kind the record belongs to (ownership check for
            manifest-less recovery).
        fingerprint: The run-configuration fingerprint the record was
            written under.
        arrays: The persisted column slices, name → array.
    """

    index: int
    start: int
    stop: int
    generation: int
    kind: str
    fingerprint: str
    arrays: Mapping[str, np.ndarray]


def _record_parts(
    *,
    index: int,
    start: int,
    stop: int,
    generation: int,
    kind: str,
    fingerprint: str,
    arrays: Mapping[str, np.ndarray],
) -> tuple[bytes, list[memoryview], bytes]:
    """Frame one chunk record as ``(prefix, payload views, crc trailer)``.

    The payload stays as zero-copy memoryviews over the (contiguous)
    arrays — at store bandwidth every extra materialization of a
    multi-megabyte chunk shows up directly in the checkpoint overhead
    budget.  The CRC covers ``header + payload`` exactly as if they had
    been concatenated.
    """
    names = sorted(arrays)
    specs = []
    views: list[memoryview] = []
    payload_length = 0
    for name in names:
        array = np.ascontiguousarray(arrays[name])
        specs.append([name, array.dtype.str, list(array.shape)])
        view = memoryview(array).cast("B")
        views.append(view)
        payload_length += view.nbytes
    header = json.dumps(
        {
            "index": index,
            "start": start,
            "stop": stop,
            "gen": generation,
            "kind": kind,
            "fp": fingerprint,
            "arrays": specs,
        },
        sort_keys=True,
    ).encode("utf-8")
    crc = zlib.crc32(header)
    for view in views:
        crc = zlib.crc32(view, crc)
    prefix = b"".join(
        (
            RECORD_MAGIC,
            len(header).to_bytes(4, "little"),
            header,
            payload_length.to_bytes(8, "little"),
        )
    )
    return prefix, views, crc.to_bytes(4, "little")


def _encode_record(
    *,
    index: int,
    start: int,
    stop: int,
    generation: int,
    kind: str,
    fingerprint: str,
    arrays: Mapping[str, np.ndarray],
) -> bytes:
    """Frame one chunk record: magic, lengths, header JSON, payload, CRC."""
    prefix, views, trailer = _record_parts(
        index=index,
        start=start,
        stop=stop,
        generation=generation,
        kind=kind,
        fingerprint=fingerprint,
        arrays=arrays,
    )
    return b"".join((prefix, *views, trailer))


def _decode_header(header: bytes) -> dict | None:
    try:
        decoded = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(decoded, dict) or "arrays" not in decoded:
        return None
    return decoded


def _record_arrays(header: dict, body: bytes) -> dict[str, np.ndarray] | None:
    arrays: dict[str, np.ndarray] = {}
    offset = 0
    try:
        for name, dtype_str, shape in header["arrays"]:
            dtype = np.dtype(dtype_str)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            nbytes = dtype.itemsize * count
            view = body[offset : offset + nbytes]
            if len(view) != nbytes:
                return None
            arrays[str(name)] = (
                np.frombuffer(view, dtype=dtype).reshape(shape).copy()
            )
            offset += nbytes
    except (TypeError, ValueError, KeyError):
        return None
    return arrays


@dataclass(frozen=True)
class _ScanOutcome:
    """Raw results of walking a chunk log's byte range."""

    kept: tuple[ChunkRecord, ...]
    quarantined: tuple[int, ...]  # record indices dropped after the prefix
    valid_end: int  # byte offset one past the last kept record
    walked_end: int  # byte offset one past the last frameable record
    unframeable: int  # bytes that could not even be walked


def _scan_records(data: bytes, limit: int) -> _ScanOutcome:
    """Walk log records in ``data[:limit]``, keeping the valid prefix.

    The kept prefix ends at the first record whose framing or CRC fails;
    later records that still frame-parse are counted as quarantined (they
    exist but sit behind a hole, so the contiguous-prefix contract drops
    them for recompute), and the walk stops entirely at unframeable
    bytes.
    """
    kept: list[ChunkRecord] = []
    quarantined: list[int] = []
    offset = 0
    valid_end = 0
    prefix_intact = True
    walk_index = 0
    while offset + 16 <= limit:
        if data[offset : offset + 4] != RECORD_MAGIC:
            break
        header_len = int.from_bytes(data[offset + 4 : offset + 8], "little")
        if not 0 < header_len <= _MAX_HEADER_BYTES:
            break
        header_start = offset + 8
        header_end = header_start + header_len
        if header_end + 8 > limit:
            break
        header_bytes = data[header_start:header_end]
        payload_len = int.from_bytes(data[header_end : header_end + 8], "little")
        if payload_len > _MAX_PAYLOAD_BYTES:
            break
        body_start = header_end + 8
        body_end = body_start + payload_len
        record_end = body_end + 4
        if record_end > limit:
            break
        header = _decode_header(header_bytes)
        if header is None:
            break
        body = data[body_start:body_end]
        stored_crc = int.from_bytes(data[body_end:record_end], "little")
        crc = zlib.crc32(body, zlib.crc32(header_bytes))
        record_ok = crc == stored_crc
        arrays = _record_arrays(header, body) if record_ok else None
        if record_ok and arrays is not None and prefix_intact:
            kept.append(
                ChunkRecord(
                    index=int(header.get("index", walk_index)),
                    start=int(header.get("start", 0)),
                    stop=int(header.get("stop", 0)),
                    generation=int(header.get("gen", 0)),
                    kind=str(header.get("kind", "")),
                    fingerprint=str(header.get("fp", "")),
                    arrays=arrays,
                )
            )
            valid_end = record_end
        else:
            prefix_intact = False
            quarantined.append(int(header.get("index", walk_index)))
        offset = record_end
        walk_index += 1
    return _ScanOutcome(
        kept=tuple(kept),
        quarantined=tuple(quarantined),
        valid_end=valid_end,
        walked_end=offset,
        unframeable=max(0, limit - offset),
    )


# --------------------------------------------------------------------------
# Manifest
# --------------------------------------------------------------------------


def _manifest_bytes(
    *, generation: int, offset: int, chunks: int, meta: Mapping[str, object]
) -> bytes:
    body = {
        "format": STORE_FORMAT,
        "generation": generation,
        "offset": offset,
        "chunks": chunks,
        "meta": dict(meta),
    }
    canonical = json.dumps(body, sort_keys=True).encode("utf-8")
    body["crc"] = zlib.crc32(canonical)
    return (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")


def _read_manifest(path: str) -> "tuple[dict | None, bool]":
    """The manifest dict and whether it was present-but-invalid.

    Returns ``(manifest, damaged)``: ``(None, False)`` when the file does
    not exist, ``(None, True)`` when it exists but fails parsing or its
    CRC, ``(dict, False)`` when valid.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return None, False
    except OSError:
        return None, True
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None, True
    if not isinstance(manifest, dict) or "crc" not in manifest:
        return None, True
    stored_crc = manifest.pop("crc")
    canonical = json.dumps(manifest, sort_keys=True).encode("utf-8")
    if zlib.crc32(canonical) != stored_crc:
        return None, True
    if manifest.get("format") != STORE_FORMAT:
        return None, True
    return manifest, False


# --------------------------------------------------------------------------
# Salvage
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SalvageReport:
    """What a (possibly damaged) store load kept, dropped, and recovered.

    Attributes:
        chunks_kept: Valid committed records recovered, in append order.
        chunks_quarantined: Record indices dropped for recompute (the
            first bad record and everything committed after it).
        quarantined_rows: Total rows covered by the dropped records.
        generation: The commit generation the recovery represents.
        committed_rows: Contiguous rows (from row 0) the kept prefix
            covers — what a resume may trust.
        manifest_ok: Whether a valid manifest guided the recovery.
        torn_bytes: Committed-region bytes lost to truncation after the
            last kept record (0 on a clean load).
        uncommitted_bytes: Log bytes past the committed offset — the
            normal residue of a crash between append and commit.
    """

    chunks_kept: int = 0
    chunks_quarantined: tuple[int, ...] = ()
    quarantined_rows: int = 0
    generation: int = 0
    committed_rows: int = 0
    manifest_ok: bool = True
    torn_bytes: int = 0
    uncommitted_bytes: int = 0

    @property
    def lossy(self) -> bool:
        """Whether the load dropped any committed state."""
        return (
            bool(self.chunks_quarantined)
            or self.torn_bytes > 0
            or not self.manifest_ok
        )

    def summary(self) -> str:
        """One operator-readable line: kept / quarantined / recovered."""
        parts = [
            f"salvage kept {self.chunks_kept} chunk(s) "
            f"({self.committed_rows} rows), generation {self.generation}"
        ]
        if self.chunks_quarantined:
            shown = ", ".join(str(i) for i in self.chunks_quarantined[:8])
            if len(self.chunks_quarantined) > 8:
                shown += ", …"
            parts.append(
                f"quarantined {len(self.chunks_quarantined)} chunk(s) "
                f"[{shown}] ({self.quarantined_rows} rows for recompute)"
            )
        if self.torn_bytes:
            parts.append(f"dropped {self.torn_bytes} torn committed bytes")
        if self.uncommitted_bytes:
            parts.append(
                f"discarded {self.uncommitted_bytes} uncommitted bytes"
            )
        if not self.manifest_ok:
            parts.append("manifest missing/damaged (log-scan recovery)")
        return "; ".join(parts)


@dataclass(frozen=True)
class StoreState:
    """A salvage-aware snapshot of a chunk store on disk.

    Attributes:
        chunks: The recovered committed prefix, in append order.  Later
            records may overwrite rows of earlier ones (write-ahead
            semantics); replay in order.
        meta: The committed run metadata from the manifest, or ``None``
            when recovery had to scan the log without one.
        generation: Last committed generation recovered.
        report: Exactly what was kept, quarantined, and truncated.
    """

    chunks: tuple[ChunkRecord, ...]
    meta: "dict | None"
    generation: int
    report: SalvageReport

    def replay(self, series: Mapping[str, np.ndarray]) -> int:
        """Apply the recovered records (in order) into ``series`` arrays.

        Later records overwrite overlapping rows of earlier ones — the
        write-ahead contract that lets quarantine-heals rewrite rows of
        an already-committed chunk.  Returns the contiguous row coverage
        from row 0 (what a resume may treat as ``completed``).
        """
        for record in self.chunks:
            for name, values in record.arrays.items():
                if name in series:
                    series[name][record.start : record.stop] = values
        return _contiguous_coverage(self.chunks)


def _contiguous_coverage(chunks: "tuple[ChunkRecord, ...]") -> int:
    """Rows covered contiguously from row 0 by ``chunks``' ranges."""
    spans = sorted((record.start, record.stop) for record in chunks)
    covered = 0
    for start, stop in spans:
        if start > covered:
            break
        covered = max(covered, stop)
    return covered


def load_store_state(
    path: "str | os.PathLike", *, io: "DurableIO | None" = None
) -> StoreState:
    """Read a chunk store from disk, salvaging whatever is recoverable.

    Never raises on damage — torn tails, CRC failures, and a missing or
    corrupt manifest all degrade into a (possibly empty) valid prefix
    plus an honest :class:`SalvageReport`.  Only a genuinely absent log
    raises :class:`~repro.core.errors.CheckpointError` (``"missing"``).
    The *caller* decides whether an empty or lossy recovery is acceptable
    (and with which error); this function only refuses to invent data.
    """
    path = os.fspath(path)
    del io  # reading is injection-free: salvage must work on any bytes
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        raise CheckpointError(
            f"cannot load chunk store: {path!r} does not exist",
            path=path,
            reason="missing",
        ) from None
    manifest, manifest_damaged = _read_manifest(path + MANIFEST_SUFFIX)
    if manifest is not None:
        limit = min(int(manifest.get("offset", 0)), len(data))
        outcome = _scan_records(data, limit)
        expected_chunks = int(manifest.get("chunks", len(outcome.kept)))
        # Records the manifest committed but the walk never reached
        # (framing destroyed) are quarantined too — they are real losses.
        walked = len(outcome.kept) + len(outcome.quarantined)
        ghosts = tuple(range(walked, expected_chunks))
        quarantined = outcome.quarantined + ghosts
        report = SalvageReport(
            chunks_kept=len(outcome.kept),
            chunks_quarantined=quarantined,
            quarantined_rows=_quarantined_rows(outcome, manifest),
            generation=int(manifest.get("generation", 0)),
            committed_rows=_contiguous_coverage(outcome.kept),
            manifest_ok=not manifest_damaged,
            torn_bytes=max(0, limit - outcome.valid_end),
            uncommitted_bytes=max(0, len(data) - limit),
        )
        return StoreState(
            chunks=outcome.kept,
            meta=dict(manifest.get("meta", {})),
            generation=int(manifest.get("generation", 0)),
            report=report,
        )
    # No usable manifest: best-effort scan of the whole log.  Committed
    # and uncommitted bytes are indistinguishable here, so every valid
    # record is kept (they were all written by the protocol) and the
    # caller must verify ownership via the per-record fingerprints.
    outcome = _scan_records(data, len(data))
    generation = outcome.kept[-1].generation if outcome.kept else 0
    report = SalvageReport(
        chunks_kept=len(outcome.kept),
        chunks_quarantined=outcome.quarantined,
        quarantined_rows=0,
        generation=generation,
        committed_rows=_contiguous_coverage(outcome.kept),
        manifest_ok=False,
        torn_bytes=max(0, outcome.unframeable) if data else 0,
        uncommitted_bytes=0,
    )
    return StoreState(
        chunks=outcome.kept, meta=None, generation=generation, report=report
    )


def _quarantined_rows(outcome: _ScanOutcome, manifest: dict) -> int:
    """Rows the dropped records covered (committed minus kept coverage)."""
    committed = int(manifest.get("meta", {}).get("completed", 0) or 0)
    kept = _contiguous_coverage(outcome.kept)
    return max(0, committed - kept)


# --------------------------------------------------------------------------
# The store
# --------------------------------------------------------------------------


class DurableChunkStore:
    """A write-ahead, generation-tagged chunk log with atomic commits.

    Layout on disk: ``<path>`` is the append-only record log,
    ``<path>.manifest`` the committed manifest.  The append/commit
    protocol (all through the injectable :class:`DurableIO`):

    1. :meth:`append` frames the chunk (magic, length-prefixed header
       JSON, payload, CRC-32), writes it to the log, and fsyncs.
    2. :meth:`commit` writes the manifest — generation, committed byte
       offset, chunk count, run metadata, its own CRC — to a temp file,
       fsyncs it, atomically renames it over the manifest, and fsyncs
       the directory.

    Readers (:func:`load_store_state`) trust only bytes at or below the
    manifest's offset; everything later is a crash residue and is
    truncated on the next :meth:`open_resume`.
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        *,
        kind: str,
        fingerprint: str,
        io: "DurableIO | None" = None,
    ):
        self.path = os.fspath(path)
        self.manifest_path = self.path + MANIFEST_SUFFIX
        self.kind = kind
        self.fingerprint = fingerprint
        self.io = resolve_io(io)
        self._handle: IO | None = None
        self._offset = 0
        self._chunks = 0
        self._next_index = 0
        self.generation = 0

    # -- lifecycle ---------------------------------------------------------

    def create(self, meta: Mapping[str, object]) -> None:
        """Start a fresh store: drop old state, commit an empty manifest.

        The immediate empty commit means a crash one instant later
        already leaves a *valid* (zero-progress) store — resume never has
        to distinguish "never started" from "crashed before first chunk".
        """
        self.io.unlink(self.manifest_path, CP_MANIFEST_UNLINK)
        self._handle = self.io.open(self.path, "wb", CP_LOG_OPEN)
        self._offset = 0
        self._chunks = 0
        self._next_index = 0
        self.generation = 0
        self.commit(meta)

    def open_resume(self, state: StoreState) -> None:
        """Re-open for appending after a salvage-aware load.

        Trims the log back to the recovered valid prefix (dropping torn
        tails and quarantined records) so new appends extend a clean
        prefix, then fsyncs the trim before any new record is written.
        """
        # Recompute the byte end of the kept prefix by re-walking the
        # file; cheaper bookkeeping than threading offsets through state.
        # The kept records are exactly the first len(state.chunks)
        # frameable records (the keep-walk stops at the first bad one).
        with open(self.path, "rb") as handle:
            data = handle.read()
        valid_end = _scan_prefix_end(data, len(state.chunks))
        self._handle = self.io.open(self.path, "r+b", CP_LOG_OPEN)
        self.io.truncate(self._handle, valid_end, CP_LOG_TRUNCATE)
        self.io.fsync(self._handle, CP_LOG_TRUNCATE)
        self.io.reached(CP_LOG_TRUNCATED)
        self._handle.seek(valid_end)
        self._offset = valid_end
        self._chunks = len(state.chunks)
        self._next_index = (
            max((record.index for record in state.chunks), default=-1) + 1
        )
        self.generation = state.generation

    def close(self) -> None:
        """Close the append handle (safe to call repeatedly)."""
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    # -- writing -----------------------------------------------------------

    def append(
        self, start: int, stop: int, arrays: Mapping[str, np.ndarray]
    ) -> int:
        """Append one chunk record covering global rows [start, stop).

        The record is written and fsynced immediately (write-ahead), but
        becomes visible to readers only after the next :meth:`commit`.
        Returns the record's append index.
        """
        if self._handle is None:
            raise CheckpointError(
                "chunk store is not open for appending",
                path=self.path,
                reason="corrupt",
            )
        index = self._next_index
        prefix, views, trailer = _record_parts(
            index=index,
            start=start,
            stop=stop,
            generation=self.generation + 1,
            kind=self.kind,
            fingerprint=self.fingerprint,
            arrays=arrays,
        )
        # Each piece goes straight from its source buffer to the file —
        # no record-sized intermediate (see _record_parts).
        for piece in (prefix, *views, trailer):
            self.io.write(self._handle, piece, CP_CHUNK_WRITE)
        self.io.fsync(self._handle, CP_CHUNK_FSYNC)
        self.io.reached(CP_CHUNK_SYNCED)
        self._offset += (
            len(prefix) + sum(view.nbytes for view in views) + len(trailer)
        )
        self._chunks += 1
        self._next_index += 1
        return index

    def commit(self, meta: Mapping[str, object]) -> int:
        """Atomically publish every appended record; returns the generation."""
        generation = self.generation + 1
        payload = _manifest_bytes(
            generation=generation,
            offset=self._offset,
            chunks=self._chunks,
            meta=meta,
        )
        temp = self.manifest_path + ".tmp"
        handle = self.io.open(temp, "wb", CP_MANIFEST_TMP_OPEN)
        try:
            self.io.write(handle, payload, CP_MANIFEST_TMP_WRITE)
            self.io.fsync(handle, CP_MANIFEST_TMP_FSYNC)
        finally:
            handle.close()
        self.io.replace(temp, self.manifest_path, CP_MANIFEST_RENAME)
        self.io.reached(CP_MANIFEST_RENAMED)
        self.io.fsync_dir(self.manifest_path, CP_DIR_FSYNC)
        self.io.reached(CP_COMMITTED)
        self.generation = generation
        return generation


def _scan_prefix_end(data: bytes, keep: int) -> int:
    """Byte offset one past the first ``keep`` frameable records of a log."""
    end = 0
    offset = 0
    count = 0
    while count < keep and offset + 16 <= len(data):
        if data[offset : offset + 4] != RECORD_MAGIC:
            break
        header_len = int.from_bytes(data[offset + 4 : offset + 8], "little")
        header_end = offset + 8 + header_len
        if header_len <= 0 or header_end + 8 > len(data):
            break
        payload_len = int.from_bytes(data[header_end : header_end + 8], "little")
        record_end = header_end + 8 + payload_len + 4
        if record_end > len(data):
            break
        offset = record_end
        count += 1
        end = offset
    return end
