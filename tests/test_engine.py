"""Engine/scalar equivalence: batched Eq. 1-8 pinned to the reference path.

The batched engine is only trustworthy if it is indistinguishable from the
scalar model.  These tests sweep the appendix parameter ranges (one-at-a-time
grids, random draws, and degenerate corners) and assert every Eq. 1-8 output
and all six Table 2 metrics agree to 1e-9 between the two implementations.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.montecarlo import run_monte_carlo, sample_scenario_batch
from repro.analysis.scenario import PARAMETER_RANGES, ActScenario
from repro.analysis.sensitivity import tornado
from repro.core.errors import ParameterError, UnknownEntryError
from repro.core.metrics import METRICS, DesignPoint, evaluate, score_table, winners
from repro.dse.optimizer import explore, explore_batched
from repro.dse.pareto import pareto_front, pareto_mask
from repro.dse.sweep import FrozenParams, SweepRecord, sweep_grid, sweep_grid_batched
from repro.engine import (
    FIELD_NAMES,
    EvaluationCache,
    ScenarioBatch,
    batch_key,
    evaluate_batch,
    evaluate_cached,
    metric_columns,
    score_table_batched,
    winners_batched,
)

TOLERANCE = 1e-9


def assert_matches_scalar(batch: ScenarioBatch) -> None:
    """Every Eq. 1-8 series of ``batch`` matches the scalar path to 1e-9."""
    result = evaluate_batch(batch)
    for index, scenario in enumerate(batch.scenarios()):
        np.testing.assert_allclose(
            result.operational_g[index], scenario.operational_g(),
            rtol=TOLERANCE, atol=TOLERANCE,
        )
        np.testing.assert_allclose(
            result.cpa_g_per_cm2[index], scenario.cpa_g_per_cm2(),
            rtol=TOLERANCE, atol=TOLERANCE,
        )
        np.testing.assert_allclose(
            result.soc_embodied_g[index], scenario.soc_embodied_g(),
            rtol=TOLERANCE, atol=TOLERANCE,
        )
        np.testing.assert_allclose(
            result.embodied_g[index], scenario.embodied_g(),
            rtol=TOLERANCE, atol=TOLERANCE,
        )
        np.testing.assert_allclose(
            result.total_g[index], scenario.total_g(),
            rtol=TOLERANCE, atol=TOLERANCE,
        )


class TestFieldParity:
    def test_batch_fields_track_scenario_fields(self):
        scenario_fields = tuple(
            field.name for field in dataclasses.fields(ActScenario)
        )
        assert FIELD_NAMES == scenario_fields

    def test_every_field_has_a_range_or_default(self):
        # Every batched column corresponds to a real scalar parameter.
        base = ActScenario()
        for name in FIELD_NAMES:
            assert hasattr(base, name)


class TestEquivalenceGrids:
    @pytest.mark.parametrize("parameter", sorted(PARAMETER_RANGES))
    def test_one_at_a_time_over_appendix_ranges(self, parameter):
        low, high = PARAMETER_RANGES[parameter]
        base = ActScenario()
        values = np.linspace(low, high, 7)
        if parameter == "duration_hours":
            # Keep T <= LT as the scalar constructor's semantics expect.
            values = np.clip(values, None, base.lifetime_hours)
        batch = ScenarioBatch.from_columns(
            base, values.size, {parameter: values}
        )
        assert_matches_scalar(batch)

    def test_random_draws_across_all_ranges(self):
        batch = sample_scenario_batch(ActScenario(), draws=250, seed=99)
        assert_matches_scalar(batch)

    def test_cartesian_product_grid(self):
        batch = ScenarioBatch.from_product(
            ActScenario(),
            {
                "ci_fab_g_per_kwh": (30.0, 447.5, 700.0),
                "fab_yield": (0.5, 0.875, 1.0),
                "dram_gb": (2.0, 16.0),
            },
        )
        assert len(batch) == 18
        assert_matches_scalar(batch)


class TestDegenerateCases:
    def test_zero_capacity_storage(self):
        base = ActScenario(dram_gb=0.0, ssd_gb=0.0, hdd_gb=0.0)
        batch = ScenarioBatch.from_columns(base, 3, {"energy_kwh": (0.0, 1.0, 5.0)})
        assert_matches_scalar(batch)

    def test_single_component_platform(self):
        # One packaged IC, logic only: the Eq. 3 sum has a single term.
        base = ActScenario(
            ic_count=1.0, dram_gb=0.0, ssd_gb=0.0, hdd_gb=0.0
        )
        batch = ScenarioBatch.from_columns(
            base, 4, {"soc_area_cm2": (0.3, 0.7, 1.0, 2.0)}
        )
        assert_matches_scalar(batch)

    def test_lifetime_fraction_exactly_one(self):
        base = ActScenario(duration_hours=26_280.0, lifetime_hours=26_280.0)
        batch = ScenarioBatch.from_columns(base, 2, {"energy_kwh": (0.0, 8.0)})
        result = evaluate_batch(batch)
        np.testing.assert_allclose(result.lifetime_fraction, 1.0, rtol=0)
        assert_matches_scalar(batch)

    def test_zero_energy_zero_operational(self):
        base = ActScenario(energy_kwh=0.0)
        batch = ScenarioBatch.from_columns(base, 1, {})
        result = evaluate_batch(batch)
        assert result.operational_g[0] == 0.0
        assert_matches_scalar(batch)

    def test_embodied_share_zero_total(self):
        base = ActScenario(
            energy_kwh=0.0, soc_area_cm2=0.0, dram_gb=0.0, ssd_gb=0.0,
            hdd_gb=0.0, ic_count=0.0,
        )
        batch = ScenarioBatch.from_columns(base, 2, {})
        result = evaluate_batch(batch)
        np.testing.assert_array_equal(result.total_g, 0.0)
        np.testing.assert_array_equal(result.embodied_share, 0.0)


class TestTable2Metrics:
    POINTS = (
        DesignPoint("alpha", 12_000.0, 2.0e-3, 0.006, 14.9),
        DesignPoint("beta", 26_000.0, 0.9e-3, 0.0092, 27.0),
        DesignPoint("gamma", 16.0, 1.1e-6, 0.033, 1.1),
        DesignPoint("delta", 60_000.0, 4.0e-3, 0.001, 80.0),
    )

    @pytest.mark.parametrize("metric_name", sorted(METRICS))
    def test_metric_columns_match_scalar(self, metric_name):
        columns = metric_columns(
            np.array([p.embodied_carbon_g for p in self.POINTS]),
            np.array([p.energy_kwh for p in self.POINTS]),
            np.array([p.delay_s for p in self.POINTS]),
            np.array([p.area_mm2 for p in self.POINTS]),
            metric_names=(metric_name,),
        )
        expected = [evaluate(p, metric_name) for p in self.POINTS]
        np.testing.assert_allclose(
            columns[metric_name], expected, rtol=TOLERANCE, atol=0
        )

    def test_score_table_batched_matches_scalar(self):
        assert score_table_batched(self.POINTS) == score_table(self.POINTS)

    def test_score_table_skips_edap_without_area(self):
        points = (
            DesignPoint("a", 10.0, 2.0, 1.0),
            DesignPoint("b", 5.0, 4.0, 2.0, 3.0),
        )
        assert score_table_batched(points) == score_table(points)
        assert "a" not in score_table_batched(points)["EDAP"]

    def test_winners_batched_matches_scalar(self):
        assert winners_batched(self.POINTS) == winners(self.POINTS)

    def test_unknown_metric_rejected(self):
        with pytest.raises(UnknownEntryError):
            metric_columns(
                np.ones(2), np.ones(2), np.ones(2), metric_names=("XYZ",)
            )


class TestScenarioBatch:
    def test_from_scenarios_roundtrip(self):
        scenarios = [
            ActScenario(),
            ActScenario(energy_kwh=1.0, fab_yield=0.5),
            ActScenario(hdd_gb=4000.0, ic_count=100.0),
        ]
        batch = ScenarioBatch.from_scenarios(scenarios)
        assert [batch.scenario(i) for i in range(3)] == scenarios

    def test_columns_are_read_only(self):
        batch = ScenarioBatch.from_columns(ActScenario(), 3, {})
        with pytest.raises(ValueError):
            batch.energy_kwh[0] = 1.0

    def test_rejects_negative_columns(self):
        with pytest.raises(ParameterError):
            ScenarioBatch.from_columns(
                ActScenario(), 2, {"energy_kwh": (-1.0, 2.0)}
            )

    def test_rejects_bad_yield(self):
        with pytest.raises(ParameterError):
            ScenarioBatch.from_columns(
                ActScenario(), 2, {"fab_yield": (0.5, 1.5)}
            )

    def test_rejects_unknown_parameter(self):
        with pytest.raises(UnknownEntryError):
            ScenarioBatch.from_columns(ActScenario(), 2, {"bogus": (1.0, 2.0)})

    def test_rejects_empty_batch(self):
        with pytest.raises(ParameterError):
            ScenarioBatch.from_columns(ActScenario(), 0, {})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ParameterError):
            ScenarioBatch(
                **{
                    name: np.ones(2 if name == "fab_yield" else 3)
                    for name in FIELD_NAMES
                }
            )

    def test_with_columns_replaces(self):
        batch = ScenarioBatch.from_columns(ActScenario(), 2, {})
        updated = batch.with_columns(energy_kwh=np.array([1.0, 2.0]))
        assert updated.energy_kwh.tolist() == [1.0, 2.0]
        assert batch.energy_kwh.tolist() != [1.0, 2.0]

    def test_product_row_order_matches_itertools(self):
        grids = {"energy_kwh": (1.0, 2.0), "dram_gb": (4.0, 8.0, 16.0)}
        batch = ScenarioBatch.from_product(ActScenario(), grids)
        expected = [
            (e, d) for e in grids["energy_kwh"] for d in grids["dram_gb"]
        ]
        observed = list(zip(batch.energy_kwh, batch.dram_gb))
        assert observed == expected


class TestCache:
    def test_identical_batches_hit(self):
        cache = EvaluationCache()
        batch = ScenarioBatch.from_columns(ActScenario(), 10, {})
        first = evaluate_cached(batch, cache)
        second = evaluate_cached(batch, cache)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_content_addressing_across_constructors(self):
        # The same values hash identically however the batch was built.
        cache = EvaluationCache()
        base = ActScenario()
        grid = ScenarioBatch.from_product(base, {"energy_kwh": (1.0, 2.0)})
        packed = ScenarioBatch.from_scenarios(
            [base.replace(energy_kwh=1.0), base.replace(energy_kwh=2.0)]
        )
        assert batch_key(grid) == batch_key(packed)
        evaluate_cached(grid, cache)
        evaluate_cached(packed, cache)
        assert cache.hits == 1

    def test_different_batches_miss(self):
        cache = EvaluationCache()
        base = ActScenario()
        evaluate_cached(ScenarioBatch.from_columns(base, 2, {}), cache)
        evaluate_cached(
            ScenarioBatch.from_columns(base, 2, {"energy_kwh": (1.0, 2.0)}),
            cache,
        )
        assert cache.misses == 2 and cache.hits == 0

    def test_lru_eviction(self):
        cache = EvaluationCache(capacity=2)
        base = ActScenario()
        batches = [
            ScenarioBatch.from_columns(base, 1, {"energy_kwh": (float(k),)})
            for k in range(3)
        ]
        for batch in batches:
            evaluate_cached(batch, cache)
        assert len(cache) == 2
        evaluate_cached(batches[0], cache)  # evicted -> miss again
        assert cache.misses == 4

    def test_clear_resets(self):
        cache = EvaluationCache()
        batch = ScenarioBatch.from_columns(ActScenario(), 2, {})
        evaluate_cached(batch, cache)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_cached_result_is_immutable(self):
        cache = EvaluationCache()
        result = evaluate_cached(
            ScenarioBatch.from_columns(ActScenario(), 2, {}), cache
        )
        with pytest.raises(ValueError):
            result.total_g[0] = 0.0


class TestBatchedSweep:
    GRIDS = {
        "ci_use_g_per_kwh": (11.0, 301.0, 820.0),
        "lifetime_hours": (8_760.0, 26_280.0, 87_600.0),
    }

    def test_matches_scalar_sweep_grid(self):
        base = ActScenario()
        batched = sweep_grid_batched(base, self.GRIDS)
        scalar = sweep_grid(
            self.GRIDS, lambda **params: base.replace(**params).total_g()
        )
        assert len(batched) == len(scalar)
        for index, record in enumerate(scalar):
            assert batched.params(index) == dict(record.params)
            np.testing.assert_allclose(
                batched.result.total_g[index], record.design,
                rtol=TOLERANCE, atol=TOLERANCE,
            )

    def test_argmin_and_min_record(self):
        base = ActScenario()
        batched = sweep_grid_batched(base, self.GRIDS)
        records = batched.records()
        best = min(records, key=lambda r: r.design)
        assert batched.min_record().params == best.params

    def test_repeat_sweep_hits_cache(self):
        cache = EvaluationCache()
        base = ActScenario()
        sweep_grid_batched(base, self.GRIDS, cache=cache)
        sweep_grid_batched(base, self.GRIDS, cache=cache)
        assert cache.hits == 1

    def test_empty_grids_rejected(self):
        from repro.core.errors import ConstraintError

        with pytest.raises(ConstraintError):
            sweep_grid_batched(ActScenario(), {})


class TestFrozenSweepRecords:
    def test_params_are_immutable(self):
        record = SweepRecord(params={"n": 3}, design=9)
        with pytest.raises(TypeError):
            record.params["n"] = 4

    def test_records_are_hashable(self):
        first = SweepRecord(params={"n": 3}, design=9)
        second = SweepRecord(params={"n": 3}, design=9)
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_params_equal_plain_dicts(self):
        record = SweepRecord(params={"n": 3, "m": 1}, design=0)
        assert record.params == {"n": 3, "m": 1}
        assert dict(record.params) == {"n": 3, "m": 1}

    def test_frozen_params_usable_as_cache_key(self):
        memo = {FrozenParams({"a": 1}): "hit"}
        assert memo[FrozenParams({"a": 1})] == "hit"


class TestBatchedPareto:
    def test_mask_matches_pareto_front(self):
        rng = np.random.default_rng(2022)
        matrix = rng.uniform(0.0, 10.0, size=(40, 3))
        candidates = list(range(40))
        objectives = [
            (lambda axis: (lambda idx: matrix[idx, axis]))(axis)
            for axis in range(3)
        ]
        front = pareto_front(candidates, objectives)
        mask = pareto_mask(matrix)
        assert [idx for idx in candidates if mask[idx]] == list(front)

    def test_duplicates_all_kept(self):
        mask = pareto_mask(np.array([[1.0], [1.0], [2.0]]))
        assert mask.tolist() == [True, True, False]

    def test_explore_batched_matches_explore(self):
        points = TestTable2Metrics.POINTS
        scalar = explore(points)
        batched = explore_batched(points)
        assert batched.scores == scalar.scores
        assert batched.winners == scalar.winners
        assert batched.pareto == scalar.pareto
        assert batched.distinct_winner_count == scalar.distinct_winner_count


class TestAnalysisOnEngine:
    def test_monte_carlo_batched_equals_scalar_response(self):
        base = ActScenario()
        batched = run_monte_carlo(base, draws=400, seed=11)
        scalar = run_monte_carlo(
            base, draws=400, seed=11, response=lambda s: s.total_g()
        )
        np.testing.assert_allclose(
            batched.samples, scalar.samples, rtol=TOLERANCE, atol=TOLERANCE
        )

    def test_tornado_batched_equals_scalar_response(self):
        base = ActScenario()
        batched = tornado(base)
        scalar = tornado(base, response=lambda s: s.total_g())
        assert [r.parameter for r in batched] == [r.parameter for r in scalar]
        for fast, reference in zip(batched, scalar):
            np.testing.assert_allclose(
                fast.response_low, reference.response_low,
                rtol=TOLERANCE, atol=TOLERANCE,
            )
            np.testing.assert_allclose(
                fast.response_high, reference.response_high,
                rtol=TOLERANCE, atol=TOLERANCE,
            )


class TestExperimentEquivalence:
    def test_cpa_curve_batched_identical(self):
        from repro.fabs.cpa import cpa_curve, cpa_curve_batched

        assert cpa_curve_batched() == cpa_curve()
        assert cpa_curve_batched(perfect_yield=True) == cpa_curve(
            perfect_yield=True
        )

    def test_mobile_soc_sweep_batched_identical(self):
        from repro.fabs.fab import default_fab
        from repro.provisioning.mobile_soc import (
            CONFIGURATIONS,
            SOC_NODE,
            per_inference_totals_batched,
        )

        ci_values = (820.0, 380.0, 41.0, 0.0)
        totals = per_inference_totals_batched(ci_use_g_per_kwh=ci_values)
        for config in CONFIGURATIONS:
            for index, ci_use in enumerate(ci_values):
                operational, embodied = config.footprint_per_inference_g(
                    ci_use_g_per_kwh=ci_use
                )
                np.testing.assert_allclose(
                    totals[config.name][index], operational + embodied,
                    rtol=TOLERANCE, atol=0,
                )

        fab_totals = per_inference_totals_batched(
            ci_use_g_per_kwh=41.0,
            fab=default_fab(SOC_NODE),
            ci_fab_g_per_kwh=ci_values,
        )
        for config in CONFIGURATIONS:
            for index, ci_fab in enumerate(ci_values):
                operational, embodied = config.footprint_per_inference_g(
                    ci_use_g_per_kwh=41.0,
                    fab=default_fab(SOC_NODE).with_ci(ci_fab),
                )
                np.testing.assert_allclose(
                    fab_totals[config.name][index], operational + embodied,
                    rtol=TOLERANCE, atol=0,
                )
