"""End-of-life processing and recycling (Figure 3's final phase).

Recycling a retired device costs some processing energy but displaces
virgin-material production for whatever is recovered.  ACT treats EOL as a
small device-report share; this module provides the simple
process-cost-minus-material-credit model needed to close the four-phase
life cycle bottom-up, and to express the Recycle tenet's second-life
accounting (a reused device displaces an entire new device's footprint,
which is why Section 8 frames second life as the strongest form of
recycling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import require_fraction, require_non_negative

#: Energy to collect/shred/sort one kg of e-waste (kWh/kg).
PROCESSING_KWH_PER_KG = 1.2

#: Material credit per kg actually recovered (g CO2 avoided per kg),
#: a mass-weighted average over typical smartphone material fractions.
MATERIAL_CREDIT_G_PER_KG = 1500.0


@dataclass(frozen=True)
class EolOutcome:
    """The net end-of-life footprint of one retired device.

    Attributes:
        processing_g: Emissions from collection and processing.
        credit_g: Avoided-burden credit from recovered materials.
    """

    processing_g: float
    credit_g: float

    @property
    def net_g(self) -> float:
        """Net EOL emissions (can be negative when recovery dominates)."""
        return self.processing_g - self.credit_g


def eol_footprint(
    mass_kg: float,
    *,
    recovery_rate: float = 0.35,
    grid_ci_g_per_kwh: float = 301.0,
    processing_kwh_per_kg: float = PROCESSING_KWH_PER_KG,
    material_credit_g_per_kg: float = MATERIAL_CREDIT_G_PER_KG,
) -> EolOutcome:
    """End-of-life accounting for one device.

    Args:
        mass_kg: Device mass entering the waste stream.
        recovery_rate: Fraction of mass recovered as usable material.
        grid_ci_g_per_kwh: Carbon intensity of the processing energy.
        processing_kwh_per_kg: Energy to process each kg.
        material_credit_g_per_kg: Credit per recovered kg.
    """
    require_non_negative("mass_kg", mass_kg)
    require_fraction("recovery_rate", recovery_rate, allow_zero=True)
    require_non_negative("grid_ci_g_per_kwh", grid_ci_g_per_kwh)
    processing = mass_kg * processing_kwh_per_kg * grid_ci_g_per_kwh
    credit = mass_kg * recovery_rate * material_credit_g_per_kg
    return EolOutcome(processing_g=processing, credit_g=credit)


def second_life_displacement_g(new_device_embodied_g: float) -> float:
    """Avoided emissions when a retired device serves instead of a new one.

    The strongest recycling outcome: the entire embodied footprint of the
    displaced new device is avoided (Section 8's framing).
    """
    require_non_negative("new_device_embodied_g", new_device_embodied_g)
    return new_device_embodied_g
