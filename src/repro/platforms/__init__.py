"""Platform assembly: catalog chipsets to ACT platforms and design points."""

from repro.platforms.mobile import (
    EfficiencyTrend,
    annual_efficiency_improvement,
    design_space,
    family_efficiency_trend,
    soc_design_point,
    soc_embodied_g,
    soc_platform,
)
from repro.platforms.storage import (
    DriveSpec,
    TierAssessment,
    assess_tier,
    enterprise_hdd,
    enterprise_ssd,
    tier_comparison,
)
from repro.platforms.server import (
    DEFAULT_PUE,
    DEFAULT_SERVER_LIFETIME_YEARS,
    FleetSummary,
    ServerConfig,
    consolidation_saving,
    dell_r740_config,
    fleet_footprint,
    server_lifecycle,
)

__all__ = [
    "DEFAULT_PUE",
    "DEFAULT_SERVER_LIFETIME_YEARS",
    "DriveSpec",
    "EfficiencyTrend",
    "FleetSummary",
    "ServerConfig",
    "TierAssessment",
    "annual_efficiency_improvement",
    "assess_tier",
    "consolidation_saving",
    "dell_r740_config",
    "design_space",
    "enterprise_hdd",
    "enterprise_ssd",
    "family_efficiency_trend",
    "fleet_footprint",
    "server_lifecycle",
    "soc_design_point",
    "soc_embodied_g",
    "soc_platform",
    "tier_comparison",
]
