"""GuardedEngine: validation policies, diagnostics, and the scalar cross-check."""

import numpy as np
import pytest

from repro.analysis import ActScenario, run_monte_carlo
from repro.core.errors import DivergenceError, ParameterError, ValidationError
from repro.dse import GuardedSweepResult, sweep_grid_batched
from repro.engine.batch import FIELD_NAMES, ScenarioBatch, broadcast_columns
from repro.engine.cache import EvaluationCache, evaluate_cached
from repro.engine.kernels import BatchResult
from repro.robustness import (
    REPAIR,
    SKIP,
    STRICT,
    GuardedEngine,
    RobustnessWarning,
    diagnose_columns,
)
from repro.robustness.guard import DOMAIN, NON_FINITE, OUTPUT, RANGE

BASE = ActScenario()


def columns_with(**overrides):
    """Full-length raw columns: the base broadcast plus explicit overrides."""
    size = max(np.asarray(v).size for v in overrides.values())
    return size, {
        name: np.array(np.broadcast_to(np.asarray(v, dtype=np.float64), (size,)))
        for name, v in overrides.items()
    }


class TestDiagnoseColumns:
    def test_clean_columns_have_no_diagnostics(self):
        raw = broadcast_columns(BASE, 8)
        assert diagnose_columns(raw) == []

    def test_non_finite_reported_with_indices_and_values(self):
        _, cols = columns_with(energy_kwh=[1.0, np.nan, 2.0, np.inf])
        (diag,) = diagnose_columns(cols)
        assert diag.column == "energy_kwh"
        assert diag.reason == NON_FINITE
        assert diag.indices == (1, 3)
        assert np.isnan(diag.values[0]) and np.isinf(diag.values[1])

    def test_domain_violation_for_negative_value(self):
        _, cols = columns_with(ci_use_g_per_kwh=[100.0, -5.0])
        (diag,) = diagnose_columns(cols)
        assert diag.reason == DOMAIN
        assert diag.indices == (1,)
        assert "must be >= 0" in diag.detail

    def test_fraction_field_domain(self):
        _, cols = columns_with(fab_yield=[0.9, 1.5, 0.0])
        (diag,) = diagnose_columns(cols)
        assert diag.reason == DOMAIN
        assert diag.indices == (1, 2)
        assert "(0, 1]" in diag.detail

    def test_range_violation_against_table1(self):
        # 1e6 g/kWh is finite and non-negative but far outside Table 1.
        _, cols = columns_with(ci_use_g_per_kwh=[100.0, 1.0e6])
        diags = diagnose_columns(cols, ranges={"ci_use_g_per_kwh": (11.0, 820.0)})
        (diag,) = diags
        assert diag.reason == RANGE
        assert diag.indices == (1,)
        assert "documented range" in diag.detail

    def test_str_truncates_long_index_lists(self):
        _, cols = columns_with(energy_kwh=np.full(50, np.nan))
        (diag,) = diagnose_columns(cols)
        assert "… and 42 more" in str(diag)


class TestStrictPolicy:
    def test_clean_batch_matches_unguarded_engine(self):
        engine = GuardedEngine(policy=STRICT)
        guarded = engine.evaluate_columns(BASE, 16)
        plain = evaluate_cached(ScenarioBatch.from_columns(BASE, 16))
        np.testing.assert_array_equal(guarded.result.total_g, plain.total_g)
        assert guarded.masked_count == 0
        assert guarded.valid.all()
        assert not guarded.repaired

    def test_raises_with_structured_diagnostics(self):
        engine = GuardedEngine(policy=STRICT)
        size, cols = columns_with(energy_kwh=[1.0, np.nan, 3.0])
        with pytest.raises(ValidationError) as excinfo:
            engine.evaluate_columns(BASE, size, cols)
        (diag,) = excinfo.value.diagnostics
        assert diag.column == "energy_kwh"
        assert diag.indices == (1,)

    def test_out_of_range_rejected_by_default_table1_ranges(self):
        engine = GuardedEngine(policy=STRICT)
        size, cols = columns_with(ci_fab_g_per_kwh=[100.0, 5.0e4])
        with pytest.raises(ValidationError):
            engine.evaluate_columns(BASE, size, cols)

    def test_ranges_none_validates_domains_only(self):
        engine = GuardedEngine(policy=STRICT, ranges=None)
        size, cols = columns_with(ci_fab_g_per_kwh=[100.0, 5.0e4])
        guarded = engine.evaluate_columns(BASE, size, cols)
        assert guarded.masked_count == 0


class TestRepairPolicy:
    def test_nan_becomes_base_value_and_out_of_range_clamps(self):
        engine = GuardedEngine(policy=REPAIR)
        size, cols = columns_with(fab_yield=[np.nan, 2.0, 0.9])
        with pytest.warns(RobustnessWarning):
            guarded = engine.evaluate_columns(BASE, size, cols)
        assert guarded.repaired
        repaired = guarded.batch.column("fab_yield")
        assert repaired[0] == pytest.approx(BASE.fab_yield)
        assert repaired[1] == 1.0  # clamped to the Table 1 high edge
        assert repaired[2] == 0.9
        assert guarded.valid.all()  # repair never masks

    def test_repaired_batch_evaluates_finite(self):
        engine = GuardedEngine(policy=REPAIR)
        size, cols = columns_with(energy_kwh=[np.inf, -3.0, 5.0])
        with pytest.warns(RobustnessWarning):
            guarded = engine.evaluate_columns(BASE, size, cols)
        assert np.isfinite(guarded.result.total_g).all()


class TestSkipPolicy:
    def test_masks_bad_rows_and_keeps_good_ones_bitwise(self):
        engine = GuardedEngine(policy=SKIP)
        bad = np.array([1.0, np.nan, 3.0, -2.0])
        size, cols = columns_with(energy_kwh=bad)
        with pytest.warns(RobustnessWarning):
            guarded = engine.evaluate_columns(BASE, size, cols)
        assert guarded.masked_count == 2
        np.testing.assert_array_equal(guarded.valid, [True, False, True, False])
        np.testing.assert_array_equal(guarded.indices, [0, 2])
        # Surviving rows equal a clean evaluation of just those rows.
        clean = evaluate_cached(
            ScenarioBatch.from_columns(BASE, 2, {"energy_kwh": bad[[0, 2]]})
        )
        np.testing.assert_array_equal(guarded.result.total_g, clean.total_g)

    def test_full_series_scatters_nan_at_masked_rows(self):
        engine = GuardedEngine(policy=SKIP)
        size, cols = columns_with(energy_kwh=[1.0, np.nan, 3.0])
        with pytest.warns(RobustnessWarning):
            guarded = engine.evaluate_columns(BASE, size, cols)
        full = guarded.full_series("total_g")
        assert full.size == 3
        assert np.isnan(full[1])
        assert np.isfinite(full[[0, 2]]).all()

    def test_all_rows_masked_raises(self):
        engine = GuardedEngine(policy=SKIP)
        size, cols = columns_with(energy_kwh=[np.nan, np.inf])
        with pytest.raises(ValidationError, match="every row"):
            engine.evaluate_columns(BASE, size, cols)


class TestEvaluateConstructedBatch:
    def test_range_violations_still_policed(self):
        batch = ScenarioBatch.from_columns(
            BASE, 3, {"ci_fab_g_per_kwh": np.array([100.0, 5.0e4, 200.0])}
        )
        with pytest.raises(ValidationError):
            GuardedEngine(policy=STRICT).evaluate(batch)
        with pytest.warns(RobustnessWarning):
            guarded = GuardedEngine(policy=SKIP).evaluate(batch)
        assert guarded.masked_count == 1
        np.testing.assert_array_equal(guarded.valid, [True, False, True])

    def test_clean_batch_passes_all_policies(self):
        batch = ScenarioBatch.from_columns(BASE, 4)
        for policy in (STRICT, REPAIR, SKIP):
            guarded = GuardedEngine(policy=policy).evaluate(batch)
            assert guarded.masked_count == 0


class TestCrossCheck:
    def test_divergence_raises_typed_error(self, monkeypatch):
        """A tampered kernel output that the scalar path contradicts."""

        def tampered(batch, cache=None, backend=None):
            result = evaluate_cached(batch, EvaluationCache())
            series = {
                name: np.array(getattr(result, name))
                for name in BatchResult.__dataclass_fields__
            }
            series["total_g"][0] = np.inf  # scalar path says finite
            return BatchResult(**series)

        monkeypatch.setattr("repro.robustness.guard.evaluate_cached", tampered)
        engine = GuardedEngine(policy=STRICT)
        with pytest.raises(DivergenceError) as excinfo:
            engine.evaluate_columns(BASE, 4)
        assert excinfo.value.series == "total_g"
        assert excinfo.value.indices == (0,)
        assert np.isinf(excinfo.value.batched[0])
        assert np.isfinite(excinfo.value.reference[0])

    def test_genuine_overflow_strict_raises_validation_error(self):
        # Both paths overflow identically: input-driven, not divergence.
        engine = GuardedEngine(policy=STRICT, ranges=None)
        size, cols = columns_with(
            energy_kwh=[1.0, 1.0e308], ci_use_g_per_kwh=[300.0, 1.0e308]
        )
        with pytest.raises(ValidationError) as excinfo:
            engine.evaluate_columns(BASE, size, cols)
        assert any(d.reason == OUTPUT for d in excinfo.value.diagnostics)

    def test_genuine_overflow_skip_masks_and_warns(self):
        engine = GuardedEngine(policy=SKIP, ranges=None)
        size, cols = columns_with(
            energy_kwh=[1.0, 1.0e308], ci_use_g_per_kwh=[300.0, 1.0e308]
        )
        with pytest.warns(RobustnessWarning, match="overflow"):
            guarded = engine.evaluate_columns(BASE, size, cols)
        assert guarded.masked_count == 1
        np.testing.assert_array_equal(guarded.valid, [True, False])
        assert np.isfinite(guarded.result.total_g).all()


class TestWiring:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ParameterError):
            GuardedEngine(policy="yolo")

    def test_guarded_monte_carlo_matches_plain_run_bitwise(self):
        """Zero silent wrong numbers: the guard must not perturb clean runs."""
        plain = run_monte_carlo(BASE, draws=500, seed=11)
        guarded = run_monte_carlo(
            BASE, draws=500, seed=11, guard=GuardedEngine(policy=STRICT)
        )
        np.testing.assert_array_equal(plain.samples, guarded.samples)

    def test_guarded_sweep_masks_bad_grid_points(self):
        grids = {
            "fab_yield": [0.6, 0.875, 2.0],  # 2.0 violates (0, 1]
            "energy_kwh": [2.0, 8.0],
        }
        with pytest.warns(RobustnessWarning):
            result = sweep_grid_batched(
                BASE, grids, guard=GuardedEngine(policy=SKIP)
            )
        assert isinstance(result, GuardedSweepResult)
        assert result.masked_count == 2  # fab_yield=2.0 × two energy points
        assert len(result) == 4
        clean = sweep_grid_batched(
            BASE, {"fab_yield": [0.6, 0.875], "energy_kwh": [2.0, 8.0]}
        )
        np.testing.assert_array_equal(
            np.sort(result.result.total_g), np.sort(clean.result.total_g)
        )

    def test_guarded_sweep_strict_on_clean_grid_matches_plain(self):
        grids = {"fab_yield": [0.6, 0.875], "soc_area_cm2": [0.5, 1.0, 1.5]}
        plain = sweep_grid_batched(BASE, grids)
        guarded = sweep_grid_batched(
            BASE, grids, guard=GuardedEngine(policy=STRICT)
        )
        np.testing.assert_array_equal(
            plain.result.total_g, guarded.result.total_g
        )
        for name in FIELD_NAMES:
            np.testing.assert_array_equal(
                plain.batch.column(name), guarded.batch.column(name)
            )
