"""Wafer-level accounting: dies per wafer and per-wafer carbon.

ACT's per-area model abstracts the wafer away; this module puts it back for
designers who think in wafer terms: gross dies per wafer (with edge loss),
good dies after yield, and the effective per-good-die carbon — which is how
Eq. 5's ``1/Y`` factor arises physically (every die on the wafer paid its
share of the fab's energy, gases, and materials, but only the good ones
ship).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import units
from repro.core.parameters import require_positive
from repro.fabs.fab import FabScenario

#: Standard 300 mm wafer.
DEFAULT_WAFER_DIAMETER_MM = 300.0


def wafer_area_cm2(diameter_mm: float = DEFAULT_WAFER_DIAMETER_MM) -> float:
    """Usable wafer area in cm^2."""
    require_positive("diameter_mm", diameter_mm)
    radius_cm = diameter_mm / 20.0
    return math.pi * radius_cm**2


def gross_dies_per_wafer(
    die_area_mm2: float, diameter_mm: float = DEFAULT_WAFER_DIAMETER_MM
) -> int:
    """Gross die count via the standard edge-loss approximation.

    Uses the classic formula ``N = pi*d^2/(4A) - pi*d/sqrt(2A)``: the first
    term tiles the wafer, the second removes partial dies at the edge.
    """
    require_positive("die_area_mm2", die_area_mm2)
    require_positive("diameter_mm", diameter_mm)
    area = die_area_mm2
    tiled = math.pi * diameter_mm**2 / (4.0 * area)
    edge = math.pi * diameter_mm / math.sqrt(2.0 * area)
    return max(0, int(tiled - edge))


@dataclass(frozen=True)
class WaferRun:
    """Carbon accounting for manufacturing one wafer of one die design.

    Attributes:
        die_area_mm2: Die size.
        gross_dies: Dies printed on the wafer.
        good_dies: Expected yielding dies.
        wafer_carbon_g: Total carbon of processing the wafer (pre-yield).
        per_good_die_g: Carbon attributed to each shipping die.
    """

    die_area_mm2: float
    gross_dies: int
    good_dies: float
    wafer_carbon_g: float
    per_good_die_g: float


def wafer_run(
    die_area_mm2: float,
    fab: FabScenario,
    diameter_mm: float = DEFAULT_WAFER_DIAMETER_MM,
) -> WaferRun:
    """Account one wafer of ``die_area_mm2`` dies in ``fab``.

    The wafer pays carbon for its *full* area at the pre-yield intensity
    (Eq. 5's numerator); dividing by the yielding dies recovers, to within
    edge effects, the same per-die footprint as Eq. 4.
    """
    die_area_cm2 = units.mm2_to_cm2(die_area_mm2)
    params = fab.params_for_area(die_area_cm2)
    pre_yield_cpa = params.cpa_g_per_cm2() * params.fab_yield
    gross = gross_dies_per_wafer(die_area_mm2, diameter_mm)
    if gross == 0:
        raise ValueError(
            f"a {die_area_mm2} mm^2 die does not fit a {diameter_mm} mm wafer"
        )
    good = gross * params.fab_yield
    wafer_carbon = wafer_area_cm2(diameter_mm) * pre_yield_cpa
    return WaferRun(
        die_area_mm2=die_area_mm2,
        gross_dies=gross,
        good_dies=good,
        wafer_carbon_g=wafer_carbon,
        per_good_die_g=wafer_carbon / good,
    )


def wafers_needed(
    unit_volume: int,
    die_area_mm2: float,
    fab: FabScenario,
    diameter_mm: float = DEFAULT_WAFER_DIAMETER_MM,
) -> int:
    """Wafers required to ship ``unit_volume`` good dies."""
    require_positive("unit_volume", unit_volume)
    run = wafer_run(die_area_mm2, fab, diameter_mm)
    return math.ceil(unit_volume / run.good_dies)
