"""Chiplet vs monolithic embodied-carbon analysis.

Figure 1 lists "chiplet design" under the Reuse tenet: splitting a large
die into smaller chiplets raises yield (defects kill less area per hit) and
lets mature-node silicon be reused across products — at the cost of
interface area on every chiplet and a more carbon-intensive advanced
package.  This module quantifies that trade-off with the ACT model:

* per-chiplet area = total/n plus an interface overhead per split,
* per-chiplet yield from a defect-density model (Poisson by default),
* packaging = base Kr plus a bonding adder per extra chiplet.

The crossover behaves as chiplet advocates claim: for small dies the
interface/packaging overheads dominate (monolithic wins), for reticle-class
dies the yield savings dominate (chiplets win), and the optimal split count
grows with die size and defect density.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units
from repro.core.parameters import (
    DEFAULT_PACKAGING_G,
    require_non_negative,
    require_positive,
)
from repro.fabs.fab import FabScenario
from repro.fabs.yield_models import PoissonYield, YieldModel

#: Die-to-die interface (PHY + shoreline) area added to each chiplet, as a
#: fraction of its share of the design.
DEFAULT_INTERFACE_OVERHEAD = 0.07

#: Extra packaging carbon per additional chiplet (advanced substrate,
#: bonding), in grams CO2.
DEFAULT_BONDING_G_PER_CHIPLET = 30.0

#: Representative logic defect density for the yield comparison.
DEFAULT_DEFECT_DENSITY_PER_CM2 = 0.2


@dataclass(frozen=True)
class PartitionedDesign:
    """One way of splitting a design into chiplets, fully evaluated.

    Attributes:
        chiplets: Number of dies the design is split into (1 = monolithic).
        chiplet_area_mm2: Area of each chiplet, including interface overhead.
        per_chiplet_yield: Fab yield of one chiplet.
        silicon_g: Embodied carbon of all chiplets (yield-adjusted).
        packaging_g: Package + bonding carbon.
    """

    chiplets: int
    chiplet_area_mm2: float
    per_chiplet_yield: float
    silicon_g: float
    packaging_g: float

    @property
    def total_g(self) -> float:
        return self.silicon_g + self.packaging_g

    @property
    def total_silicon_mm2(self) -> float:
        return self.chiplets * self.chiplet_area_mm2


def partition(
    total_area_mm2: float,
    chiplets: int,
    fab: FabScenario,
    *,
    yield_model: YieldModel | None = None,
    interface_overhead: float = DEFAULT_INTERFACE_OVERHEAD,
    bonding_g_per_chiplet: float = DEFAULT_BONDING_G_PER_CHIPLET,
    packaging_g: float = DEFAULT_PACKAGING_G,
) -> PartitionedDesign:
    """Evaluate one split of ``total_area_mm2`` into ``chiplets`` dies.

    Args:
        total_area_mm2: Logic area of the monolithic design.
        chiplets: Number of dies (1 = monolithic; no interface overhead).
        fab: Manufacturing scenario supplying CPA's numerator terms.
        yield_model: Area-sensitive yield model; Poisson at the default
            defect density if not given.
        interface_overhead: Fractional area added per chiplet for
            die-to-die interfaces (applied only when chiplets > 1).
        bonding_g_per_chiplet: Packaging adder per chiplet beyond the first.
        packaging_g: Base package footprint (Kr).
    """
    require_positive("total_area_mm2", total_area_mm2)
    require_positive("chiplets", chiplets)
    require_non_negative("interface_overhead", interface_overhead)
    require_non_negative("bonding_g_per_chiplet", bonding_g_per_chiplet)
    require_non_negative("packaging_g", packaging_g)
    if yield_model is None:
        yield_model = PoissonYield(DEFAULT_DEFECT_DENSITY_PER_CM2)

    overhead = interface_overhead if chiplets > 1 else 0.0
    chiplet_area_mm2 = (total_area_mm2 / chiplets) * (1.0 + overhead)
    chiplet_area_cm2 = units.mm2_to_cm2(chiplet_area_mm2)
    chip_yield = yield_model.yield_for_area(chiplet_area_cm2)

    # Pre-yield carbon intensity from the fab, divided by this partition's
    # own per-chiplet yield (the FabScenario's default yield model is
    # deliberately bypassed so the comparison isolates the yield effect).
    params = fab.params_for_area(chiplet_area_cm2)
    pre_yield_cpa = params.cpa_g_per_cm2() * params.fab_yield
    silicon = chiplets * chiplet_area_cm2 * pre_yield_cpa / chip_yield
    packaging = packaging_g + bonding_g_per_chiplet * (chiplets - 1)
    return PartitionedDesign(
        chiplets=chiplets,
        chiplet_area_mm2=chiplet_area_mm2,
        per_chiplet_yield=chip_yield,
        silicon_g=silicon,
        packaging_g=packaging,
    )


def partition_sweep(
    total_area_mm2: float,
    fab: FabScenario,
    max_chiplets: int = 16,
    **kwargs,
) -> tuple[PartitionedDesign, ...]:
    """Evaluate splits from monolithic up to ``max_chiplets`` dies."""
    require_positive("max_chiplets", max_chiplets)
    return tuple(
        partition(total_area_mm2, n, fab, **kwargs)
        for n in range(1, max_chiplets + 1)
    )


def optimal_partition(
    total_area_mm2: float,
    fab: FabScenario,
    max_chiplets: int = 16,
    **kwargs,
) -> PartitionedDesign:
    """The split count minimizing total embodied carbon."""
    return min(
        partition_sweep(total_area_mm2, fab, max_chiplets, **kwargs),
        key=lambda design: design.total_g,
    )


def chiplet_break_even_area_mm2(
    fab: FabScenario,
    *,
    low_mm2: float = 20.0,
    high_mm2: float = 1000.0,
    resolution_mm2: float = 5.0,
    **kwargs,
) -> float:
    """Smallest die size at which any chiplet split beats monolithic.

    Scans die sizes upward and returns the first where the optimal
    partition uses more than one chiplet; returns ``high_mm2`` if
    monolithic wins everywhere in range.
    """
    require_positive("resolution_mm2", resolution_mm2)
    area = low_mm2
    while area <= high_mm2:
        if optimal_partition(area, fab, **kwargs).chiplets > 1:
            return area
        area += resolution_mm2
    return high_mm2
