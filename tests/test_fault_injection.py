"""Fault-injection harness: every fault class is caught, never silently wrong.

The contract under test (the robustness tentpole): corrupting scenario
columns or bundled data tables must make the stack raise a typed
``ReproError`` or produce explicitly warned + masked results whose
surviving rows are bit-identical to a clean-run oracle.  No fault class
may flow through into plausible-but-wrong CO2 numbers.
"""

import numpy as np
import pytest

from repro.analysis import ActScenario, sample_parameter_columns
from repro.core.errors import ParameterError, ReproError
from repro.data import DRAM_TECHNOLOGIES, HDD_MODELS, SSD_TECHNOLOGIES
from repro.data.validation import validate_storage_mapping
from repro.engine.batch import ScenarioBatch
from repro.engine.cache import evaluate_cached
from repro.robustness import (
    COLUMN_FAULTS,
    SKIP,
    STRICT,
    TABLE_FAULTS,
    GuardedEngine,
    RobustnessWarning,
    inject_column_fault,
    inject_table_fault,
)

BASE = ActScenario()
DRAWS = 256
SEED = 2022

#: Fault classes that change a column's length (misaligned feeds).
LENGTH_FAULTS = ("drop", "dup")
VALUE_FAULTS = tuple(k for k in COLUMN_FAULTS if k not in LENGTH_FAULTS)


def sampled_columns():
    return sample_parameter_columns(BASE, draws=DRAWS, seed=SEED)


def clean_oracle():
    """The uncorrupted run every faulted run is compared against."""
    batch = ScenarioBatch.from_columns(BASE, DRAWS, sampled_columns())
    return np.array(evaluate_cached(batch).total_g)


class TestColumnFaults:
    @pytest.mark.parametrize("kind", VALUE_FAULTS)
    @pytest.mark.parametrize("column", ["ci_use_g_per_kwh", "fab_yield"])
    def test_strict_guard_rejects_every_value_fault(self, kind, column):
        rng = np.random.default_rng(7)
        corrupted, record = inject_column_fault(
            sampled_columns(), column, kind, rng=rng
        )
        assert record.kind == kind
        engine = GuardedEngine(policy=STRICT)
        with pytest.raises(ReproError):
            engine.evaluate_columns(BASE, DRAWS, corrupted)

    @pytest.mark.parametrize("kind", ["nan", "inf", "sign"])
    def test_skip_guard_masks_exactly_the_faulted_rows(self, kind):
        rng = np.random.default_rng(7)
        corrupted, record = inject_column_fault(
            sampled_columns(), "ci_use_g_per_kwh", kind, rng=rng
        )
        engine = GuardedEngine(policy=SKIP)
        with pytest.warns(RobustnessWarning):
            guarded = engine.evaluate_columns(BASE, DRAWS, corrupted)
        assert guarded.masked_count == len(record.indices)
        assert not guarded.valid[list(record.indices)].any()
        # Survivors are bit-identical to the clean-run oracle.
        oracle = clean_oracle()
        np.testing.assert_array_equal(
            guarded.samples(), oracle[guarded.valid]
        )

    def test_scale_fault_is_systematic_and_caught_by_range_check(self):
        """A g↔kg unit error hits the whole column; Table 1 ranges catch it."""
        rng = np.random.default_rng(7)
        corrupted, record = inject_column_fault(
            sampled_columns(), "ci_use_g_per_kwh", "scale", rng=rng
        )
        assert record.factor == 1000.0
        assert len(record.indices) == DRAWS
        # Every row is out of range, so even skip cannot salvage anything.
        with pytest.raises(ReproError):
            GuardedEngine(policy=SKIP).evaluate_columns(BASE, DRAWS, corrupted)

    @pytest.mark.parametrize("kind", LENGTH_FAULTS)
    def test_length_faults_raise_typed_shape_error(self, kind):
        rng = np.random.default_rng(7)
        corrupted, _ = inject_column_fault(
            sampled_columns(), "energy_kwh", kind, rng=rng
        )
        with pytest.raises(ParameterError, match="shape"):
            GuardedEngine(policy=SKIP).evaluate_columns(BASE, DRAWS, corrupted)
        with pytest.raises(ParameterError, match="shape"):
            ScenarioBatch.from_columns(BASE, DRAWS, corrupted)

    def test_injection_is_deterministic(self):
        first = inject_column_fault(
            sampled_columns(), "energy_kwh", "nan", rng=np.random.default_rng(3)
        )
        second = inject_column_fault(
            sampled_columns(), "energy_kwh", "nan", rng=np.random.default_rng(3)
        )
        assert first[1] == second[1]
        np.testing.assert_array_equal(
            first[0]["energy_kwh"], second[0]["energy_kwh"]
        )

    def test_caller_columns_never_mutated(self):
        columns = sampled_columns()
        before = {k: np.array(v) for k, v in columns.items()}
        inject_column_fault(
            columns, "energy_kwh", "nan", rng=np.random.default_rng(3)
        )
        for name, column in columns.items():
            np.testing.assert_array_equal(column, before[name])

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ParameterError):
            inject_column_fault(
                sampled_columns(), "energy_kwh", "gamma-ray",
                rng=np.random.default_rng(0),
            )


TABLES = [
    ("dram", DRAM_TECHNOLOGIES),
    ("ssd", SSD_TECHNOLOGIES),
    ("hdd", HDD_MODELS),
]


class TestTableFaults:
    @pytest.mark.parametrize("table,rows", TABLES)
    def test_pristine_tables_validate_cleanly(self, table, rows):
        findings = validate_storage_mapping(table, rows, required=set(rows))
        assert all(f.passed for f in findings)

    @pytest.mark.parametrize("kind", TABLE_FAULTS)
    @pytest.mark.parametrize("table,rows", TABLES)
    def test_every_fault_class_fails_validation(self, kind, table, rows):
        rng = np.random.default_rng(11)
        corrupted, record = inject_table_fault(rows, kind, rng=rng)
        findings = validate_storage_mapping(
            table, corrupted, required=set(rows)
        )
        failed = [f for f in findings if not f.passed]
        assert failed, f"{kind} fault on {table} passed validation: {record}"

    def test_shipped_tables_unmodified_by_injection(self):
        keys_before = set(DRAM_TECHNOLOGIES)
        inject_table_fault(
            DRAM_TECHNOLOGIES, "drop", rng=np.random.default_rng(0)
        )
        assert set(DRAM_TECHNOLOGIES) == keys_before

    def test_fault_record_names_the_corrupted_key(self):
        corrupted, record = inject_table_fault(
            SSD_TECHNOLOGIES, "scale", rng=np.random.default_rng(5)
        )
        (key,) = record.keys
        original = SSD_TECHNOLOGIES[key].cps_g_per_gb
        assert corrupted[key].cps_g_per_gb == pytest.approx(original * 1000.0)


class TestWholeStack:
    """A corrupted table value flowing through Monte Carlo is still caught."""

    def test_scaled_table_value_rejected_as_scenario_range_fault(self):
        rng = np.random.default_rng(13)
        corrupted, record = inject_table_fault(
            DRAM_TECHNOLOGIES, "scale", rng=rng
        )
        (key,) = record.keys
        bad_cps = corrupted[key].cps_g_per_gb
        base = BASE.replace(cps_dram_g_per_gb=min(bad_cps, 1.0e12))
        engine = GuardedEngine(policy=STRICT)
        with pytest.raises(ReproError):
            engine.evaluate_columns(base, 32)

    def test_nan_table_value_rejected_before_any_total_is_produced(self):
        rng = np.random.default_rng(13)
        corrupted, record = inject_table_fault(DRAM_TECHNOLOGIES, "nan", rng=rng)
        (key,) = record.keys
        bad_cps = corrupted[key].cps_g_per_gb
        # The scalar constructor refuses the NaN outright...
        with pytest.raises(ReproError):
            BASE.replace(cps_dram_g_per_gb=bad_cps)
        # ...and so does the batched path, were it smuggled into a column.
        columns = {"cps_dram_g_per_gb": np.full(8, bad_cps)}
        with pytest.raises(ReproError):
            GuardedEngine(policy=STRICT).evaluate_columns(BASE, 8, columns)
