"""Effective embodied carbon of over-provisioned SSDs (Figure 15, bottom).

Over-provisioning trades embodied carbon for endurance: spare NAND raises
the manufactured capacity (and thus Eq. 8's embodied footprint) by
``1 + PF``, but extends the device lifetime.  For a service target of ``T``
years, a device that wears out early must be replaced, so the *effective*
embodied carbon of providing T years of storage service is::

    effective(PF) = (1 + PF) * max(1, T / lifetime(PF))

normalized here to the paper's 4% baseline.  Minimizing over PF yields the
paper's anchors: 16% over-provisioning is optimal for a single ~2-year
mobile life, enabling a ~4-year second life requires raising it to 34%, and
serving both lives with one 34% device instead of two 16% devices cuts the
embodied footprint by ~1.8x.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import require_positive
from repro.reliability.ssd_lifetime import (
    BASELINE_OVER_PROVISIONING,
    FIRST_LIFE_YEARS,
    SECOND_LIFE_YEARS,
    SsdWorkload,
    lifetime_years,
)

#: The over-provisioning sweep plotted in Figure 15.
DEFAULT_PF_SWEEP: tuple[float, ...] = (
    0.04, 0.08, 0.12, 0.16, 0.20, 0.24, 0.28, 0.34, 0.40, 0.50
)

#: Tolerance when deciding whether a device's endurance covers the target
#: (avoids spurious replacements from floating-point rounding).
_LIFETIME_EPSILON = 1e-9


def devices_needed(
    over_provisioning: float,
    service_years: float,
    workload: SsdWorkload = SsdWorkload(),
) -> int:
    """How many whole devices a service target consumes.

    A device that wears out before the target is replaced by a fresh,
    identically provisioned one; partial devices cannot be purchased.
    """
    require_positive("service_years", service_years)
    life = lifetime_years(over_provisioning, workload)
    return max(1, math.ceil(service_years / life - _LIFETIME_EPSILON))


def effective_embodied(
    over_provisioning: float,
    service_years: float,
    workload: SsdWorkload = SsdWorkload(),
) -> float:
    """Embodied carbon of T years of service, in units of one un-provisioned
    device's footprint (capacity × CPS cancels in the normalization)."""
    return (1.0 + over_provisioning) * devices_needed(
        over_provisioning, service_years, workload
    )


def normalized_effective_embodied(
    over_provisioning: float,
    service_years: float,
    workload: SsdWorkload = SsdWorkload(),
    baseline_pf: float = BASELINE_OVER_PROVISIONING,
) -> float:
    """Figure 15 (bottom)'s y-axis: effective embodied relative to the 4%
    baseline at the same service target."""
    return effective_embodied(over_provisioning, service_years, workload) / (
        effective_embodied(baseline_pf, service_years, workload)
    )


@dataclass(frozen=True)
class ProvisioningOptimum:
    """The optimal over-provisioning for one service target."""

    service_years: float
    over_provisioning: float
    lifetime_years: float
    effective_embodied: float


def optimal_over_provisioning(
    service_years: float,
    sweep: tuple[float, ...] = DEFAULT_PF_SWEEP,
    workload: SsdWorkload = SsdWorkload(),
) -> ProvisioningOptimum:
    """The sweep point minimizing effective embodied carbon for a target."""
    best_pf = min(
        sweep, key=lambda pf: effective_embodied(pf, service_years, workload)
    )
    return ProvisioningOptimum(
        service_years=service_years,
        over_provisioning=best_pf,
        lifetime_years=lifetime_years(best_pf, workload),
        effective_embodied=effective_embodied(best_pf, service_years, workload),
    )


def second_life_saving(
    workload: SsdWorkload = SsdWorkload(),
    sweep: tuple[float, ...] = DEFAULT_PF_SWEEP,
) -> float:
    """Embodied saving of one second-life device vs two first-life devices.

    Serving two mobile lives (4 years) with one device provisioned for the
    second-life optimum, instead of manufacturing a fresh first-life-optimal
    device per life.  The paper reports ~1.8x.
    """
    first = optimal_over_provisioning(FIRST_LIFE_YEARS, sweep, workload)
    second = optimal_over_provisioning(SECOND_LIFE_YEARS, sweep, workload)
    two_first_life_devices = 2.0 * (1.0 + first.over_provisioning)
    one_second_life_device = 1.0 + second.over_provisioning
    return two_first_life_devices / one_second_life_device
