#!/usr/bin/env python3
"""Sensitivity and uncertainty analysis over the ACT model.

The appendix publishes parameter *ranges* — fab carbon intensity, gas
abatement, yield all "vary by manufacturer, facility, and product line".
This walkthrough asks two questions a practitioner should ask before
trusting any single footprint number:

1. which inputs actually move the answer (tornado / elasticities)?
2. how wide is the footprint distribution when every uncertain input is
   sampled from its published range (Monte Carlo)?

It also demonstrates the carbon-intensity *trace* model: on a solar-heavy
grid, scheduling a deferrable workload into the greenest hours beats the
flat-average model by a measurable factor.

Run:  python examples/uncertainty_analysis.py
"""

from repro.analysis import (
    ActScenario,
    elasticity,
    embodied_share_distribution,
    run_monte_carlo,
    tornado,
)
from repro.core.intensity import scheduling_saving, solar_diurnal_trace
from repro.reporting.tables import ascii_table


def main() -> None:
    # A phone-class scenario: 7nm SoC, 4 GB DRAM, 64 GB NAND, 3-year life.
    base = ActScenario()
    print(f"Base scenario: {base.total_g() / 1000.0:.2f} kg CO2e "
          f"({base.embodied_g() / 1000.0:.2f} kg embodied)")
    print()

    # --- 1. What matters? ----------------------------------------------------
    records = tornado(base)[:8]
    rows = [
        (r.parameter, r.low, r.high, r.swing / 1000.0, r.relative_swing)
        for r in records
    ]
    print("Tornado: footprint swing when each parameter sweeps its range:")
    print(ascii_table(
        ("parameter", "low", "high", "swing kg", "swing / base"), rows
    ))
    print()

    print("Local elasticities (d ln CF / d ln parameter) at the base point:")
    for name in ("ci_use_g_per_kwh", "epa_kwh_per_cm2", "fab_yield",
                 "soc_area_cm2", "lifetime_hours"):
        print(f"  {name:20s} {elasticity(base, name):+.3f}")
    print()

    # --- 2. How uncertain is the answer? ---------------------------------------
    result = run_monte_carlo(base, draws=3000, seed=2022)
    print(f"Monte Carlo over all Table 1 ranges (3000 draws):")
    print(f"  mean {result.mean / 1000.0:.2f} kg, std {result.std / 1000.0:.2f} kg")
    print(f"  90% interval [{result.p5 / 1000.0:.2f}, "
          f"{result.p95 / 1000.0:.2f}] kg "
          f"(spread {result.spread:.1f}x of the mean)")
    share = embodied_share_distribution(base, draws=3000)
    print(f"  embodied share of total: median "
          f"{share.percentile(50):.0%}, 90% interval "
          f"[{share.p5:.0%}, {share.p95:.0%}]")
    print()

    # --- 3. Time-varying carbon intensity ---------------------------------------
    trace = solar_diurnal_trace(base_ci_g_per_kwh=500.0, solar_share_at_noon=0.7)
    print("Solar-heavy grid (70% solar at noon over a 500 g/kWh base):")
    print(f"  daily average {trace.average:.0f} g/kWh, "
          f"greenest hour {trace.minimum:.0f} g/kWh")
    for hours in (2, 4, 8):
        saving = scheduling_saving(hours, trace)
        print(f"  scheduling a {hours}h deferrable job into the greenest "
              f"window saves {saving:.2f}x vs average placement")


if __name__ == "__main__":
    main()
