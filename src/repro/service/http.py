"""The stdlib HTTP transport wrapping :class:`CarbonQueryService`.

A deliberately thin adapter: :class:`ThreadingHTTPServer` accepts
connections, one request thread per connection calls
:meth:`~repro.service.app.CarbonQueryService.handle`, and the triple it
returns is written back as JSON.  Everything interesting — admission,
batching, deadlines, error mapping — lives in the transport-independent
app layer, so this module stays small enough to trust.

Lifecycle: :func:`serve_forever` installs SIGTERM/SIGINT handlers that
drain gracefully — stop accepting, finish in-flight requests, stop the
batcher — and returns ``0`` on a clean drain (the CLI's exit code).
"""

from __future__ import annotations

import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, TextIO

from repro.service.app import CarbonQueryService, Response
from repro.service.config import ServiceConfig

#: Largest request body accepted, in bytes (413 above this).  Generous
#: enough for any legitimate sweep/metric payload, small enough that a
#: hostile client cannot balloon request-thread memory.
MAX_BODY_BYTES = 1 << 20

#: Most bytes of a refused (413) body that are read and discarded so a
#: well-behaved client can finish sending and read the response before
#: the connection closes; a body declared larger than this is simply cut
#: off by the close.
DRAIN_CAP_BYTES = 4 * MAX_BODY_BYTES


class CarbonQueryHandler(BaseHTTPRequestHandler):
    """One HTTP request in, one JSON response out."""

    #: Advertise HTTP/1.1 so keep-alive works for load generators.
    protocol_version = "HTTP/1.1"
    server_version = "act-repro-service"
    #: Nagle + delayed ACK costs ~40ms per keep-alive round trip when
    #: headers and body go out as separate small writes; a query service
    #: answering sub-millisecond requests cannot afford that.
    disable_nagle_algorithm = True
    #: The app instance; set by :func:`make_server` on the handler class.
    service: CarbonQueryService

    def _client_id(self) -> str:
        """The rate-limit identity: explicit header, else peer address."""
        return self.headers.get("X-Client-Id") or self.client_address[0]

    def _read_body(self) -> "bytes | None":
        """The request body, or ``None`` after a 4xx was already sent.

        Both refusal paths leave an unread body on the socket, which
        would desynchronize an HTTP/1.1 keep-alive connection — so each
        sends ``Connection: close`` (which also makes the handler drop
        the connection after the response).
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0:
            self._write(
                Response(
                    400,
                    {
                        "error": "validation",
                        "message": "malformed Content-Length header",
                    },
                    {"Connection": "close"},
                )
            )
            return None
        if length > MAX_BODY_BYTES:
            self._write(
                Response(
                    413,
                    {
                        "error": "payload_too_large",
                        "message": f"request body exceeds {MAX_BODY_BYTES} "
                        "bytes",
                    },
                    {"Connection": "close"},
                )
            )
            self._discard(length)
            return None
        return self.rfile.read(length) if length else b""

    def _discard(self, length: int) -> None:
        """Throw away up to ``DRAIN_CAP_BYTES`` of a refused body.

        The response is already on the wire; draining (in bounded
        chunks, never holding the body) unblocks a client still busy
        sending, so it reads the 413 instead of a connection reset.
        """
        remaining = min(length, DRAIN_CAP_BYTES)
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)

    def _write(self, response: Response) -> None:
        body = response.body()
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        body = self._read_body()
        if body is None:
            return
        self._write(
            self.service.handle(
                method, self.path.split("?", 1)[0], body, self._client_id()
            )
        )

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr chatter; the service keeps its own
        structured access log."""


class CarbonQueryServer(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for many concurrent short requests."""

    daemon_threads = True
    #: The default listen backlog (5) drops connections under a
    #: thundering herd of load-generator clients; deepen it.
    request_queue_size = 128


def make_server(
    service: CarbonQueryService,
) -> ThreadingHTTPServer:
    """A bound (not yet serving) HTTP server for ``service``.

    With ``config.port == 0`` the OS picks a free port; read the real one
    from ``server.server_address[1]``.
    """
    handler = type(
        "BoundCarbonQueryHandler", (CarbonQueryHandler,), {"service": service}
    )
    return CarbonQueryServer(
        (service.config.host, service.config.port), handler
    )


def serve_forever(
    config: ServiceConfig | None = None,
    *,
    service: CarbonQueryService | None = None,
    ready: "Callable[[str, int], None] | None" = None,
    install_signal_handlers: bool = True,
    stream: "TextIO | None" = None,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain; returns exit code.

    Args:
        config: Service configuration (ignored when ``service`` given).
        service: A pre-built app instance (tests inject doctored ones).
        ready: Called with ``(host, port)`` once the socket is bound —
            the CLI prints the port here so ``--port 0`` harnesses can
            discover it.
        install_signal_handlers: Disable when embedding in a thread that
            is not the main thread (signal handlers are main-thread-only).
        stream: Where shutdown progress lines go (``None`` = silent).

    Returns:
        ``0`` when the drain completed cleanly within the configured
        timeout, ``1`` when in-flight work had to be abandoned.
    """
    app = service or CarbonQueryService(config)
    server = make_server(app)
    host, port = server.server_address[0], server.server_address[1]
    stopping = threading.Event()

    def _stop(signum: object = None, frame: object = None) -> None:
        # shutdown() must not run on the serve_forever thread; hand it off.
        if not stopping.is_set():
            stopping.set()
            threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    if ready is not None:
        ready(host, port)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    if stream is not None:
        print(f"draining ({app.queue.depth} in flight)...", file=stream)
    clean = app.drain()
    if stream is not None:
        print(
            "drain complete" if clean else "drain timed out", file=stream
        )
    return 0 if clean else 1
