"""Unit-conversion helpers."""

import math

import pytest

from repro.core import units


class TestTime:
    def test_years_to_hours(self):
        assert units.years_to_hours(1) == pytest.approx(8760.0)

    def test_hours_to_years_roundtrip(self):
        assert units.hours_to_years(units.years_to_hours(3.5)) == pytest.approx(3.5)

    def test_seconds_to_hours(self):
        assert units.seconds_to_hours(7200) == pytest.approx(2.0)

    def test_milliseconds_to_hours(self):
        assert units.milliseconds_to_hours(3_600_000) == pytest.approx(1.0)

    def test_zero_duration(self):
        assert units.years_to_hours(0) == 0.0


class TestEnergy:
    def test_joules_to_kwh(self):
        assert units.joules_to_kwh(3.6e6) == pytest.approx(1.0)

    def test_kwh_to_joules_roundtrip(self):
        assert units.kwh_to_joules(units.joules_to_kwh(1234.5)) == pytest.approx(
            1234.5
        )

    def test_millijoules_to_kwh(self):
        assert units.millijoules_to_kwh(3.6e9) == pytest.approx(1.0)

    def test_watts_times_hours(self):
        # 1000 W for 1 hour is exactly 1 kWh.
        assert units.watts_times_hours(1000.0, 1.0) == pytest.approx(1.0)

    def test_watts_times_seconds(self):
        # 1 W for 1 s = 1 J.
        assert units.watts_times_seconds(1.0, 1.0) == pytest.approx(
            units.joules_to_kwh(1.0)
        )

    def test_table4_opcf_arithmetic(self):
        # The paper's Table 4: 6.6 W x 6.0 ms at 300 g/kWh => 3.3 µg CO2.
        energy_kwh = units.watts_times_seconds(6.6, 6.0e-3)
        grams = energy_kwh * 300.0
        assert units.g_to_ug(grams) == pytest.approx(3.3, rel=1e-3)


class TestMassAndArea:
    def test_kg_g_roundtrip(self):
        assert units.g_to_kg(units.kg_to_g(2.5)) == pytest.approx(2.5)

    def test_tonnes(self):
        assert units.tonnes_to_g(1.0) == pytest.approx(1.0e6)

    def test_micrograms(self):
        assert units.g_to_ug(1e-6) == pytest.approx(1.0)

    def test_area_roundtrip(self):
        assert units.cm2_to_mm2(units.mm2_to_cm2(98.5)) == pytest.approx(98.5)

    def test_mm2_to_cm2(self):
        assert units.mm2_to_cm2(100.0) == pytest.approx(1.0)

    def test_capacity_roundtrip(self):
        assert units.gb_to_tb(units.tb_to_gb(31.0)) == pytest.approx(31.0)

    def test_constants_consistent(self):
        assert units.HOURS_PER_YEAR == units.HOURS_PER_DAY * units.DAYS_PER_YEAR
        assert math.isclose(units.JOULES_PER_KWH, 3.6e6)
