"""Reporting: text tables, figure-as-data containers, CSV/JSON export."""

from repro.reporting.figures import FigureData, Series, series_from_pairs
from repro.reporting.per import product_environmental_report
from repro.reporting.serialize import (
    figure_to_csv,
    figure_to_json,
    rows_to_csv,
    series_to_csv,
)
from repro.reporting.tables import ascii_table, markdown_table

__all__ = [
    "FigureData",
    "Series",
    "ascii_table",
    "figure_to_csv",
    "figure_to_json",
    "markdown_table",
    "product_environmental_report",
    "rows_to_csv",
    "series_from_pairs",
    "series_to_csv",
]
