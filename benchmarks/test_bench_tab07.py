"""Benchmark: regenerate Table 7-8: per-node fab characterization."""


def test_bench_tab7(verify):
    """Table 7-8: per-node fab characterization — regenerate, print, and verify against the paper."""
    verify("tab7")
