"""The kernel-backend protocol: registry, parity, drift, and isolation.

Four contracts are pinned here:

* **Registry mechanics** — lookup by name, :class:`ParameterError` on
  unknown names, registration/unregistration, the process-wide
  ``use_backend`` stack, and the ``ACT_REPRO_BACKEND`` env-var default.
* **Numerical parity** — the reference backend stays bit-identical to
  the historical kernel pass (and within 1e-9 of the scalar model); the
  fused float64 backend is *exactly* equal to the reference (``==``, not
  allclose — same IEEE operations in the same order); the float32
  backend drifts within its documented :data:`FLOAT32_TOLERANCE`.
* **Guard integration** — the sampled fast-path verification catches a
  deliberately corrupted backend with a typed
  :class:`~repro.core.errors.DivergenceError`, and per-backend tolerances
  widen the cross-check exactly as documented.
* **Cache isolation** — the evaluation cache never serves one backend's
  (or one dtype's) result to a request for another.

The numba backend's cases run only where numba is installed (the CI
optional-deps leg); elsewhere they skip with a visible reason.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.montecarlo import sample_scenario_batch
from repro.analysis.scenario import ActScenario
from repro.core.errors import DivergenceError, ParameterError
from repro.engine import (
    BACKEND_ENV_VAR,
    FIELD_NAMES,
    FLOAT32,
    FUSED,
    NUMBA,
    REFERENCE,
    BatchResult,
    EvaluationCache,
    KernelBackend,
    ScenarioBatch,
    available_backends,
    backend_summary,
    batch_key,
    current_backend,
    evaluate_batch,
    evaluate_cached,
    get_backend,
    metric_columns,
    register_backend,
    resolve_backend,
    unregister_backend,
    use_backend,
)
from repro.engine.backends.fused import FLOAT32_TOLERANCE
from repro.engine.backends.numba_backend import HAVE_NUMBA, NUMBA_TOLERANCE
from repro.engine.backends.reference import BackendBase
from repro.engine.kernels import _evaluate_batch_arrays
from repro.robustness import GuardedEngine

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA,
    reason="numba is not installed (the numba backend registers only on "
    "the optional-deps environment)",
)

BASE = ActScenario()
SERIES = tuple(BatchResult.__dataclass_fields__)
REPO_ROOT = Path(__file__).resolve().parents[1]


def _subprocess_env(**overrides: str) -> dict[str, str]:
    """The current environment plus ``src`` on PYTHONPATH and overrides."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    env.update(overrides)
    return env


def sample_batch(rows: int = 512, seed: int = 7) -> ScenarioBatch:
    return sample_scenario_batch(BASE, draws=rows, seed=seed)


def corner_batch() -> ScenarioBatch:
    """Rows exercising zeros, tiny and large magnitudes, and yield edges."""
    scenarios = [
        BASE,
        BASE.replace(hdd_gb=0.0, ssd_gb=0.0, dram_gb=0.0),
        BASE.replace(fab_yield=1.0),
        BASE.replace(fab_yield=0.1, energy_kwh=1e-6),
        BASE.replace(energy_kwh=1e6, lifetime_hours=1.0, duration_hours=1.0),
    ]
    return ScenarioBatch.from_scenarios(scenarios)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert REFERENCE in names
        assert FUSED in names
        assert FLOAT32 in names
        # The default environment has no numba; the backend must register
        # itself exactly when the import succeeds.
        assert (NUMBA in names) == HAVE_NUMBA

    def test_get_backend_by_name(self):
        backend = get_backend(FUSED)
        assert backend.name == FUSED
        assert isinstance(backend, KernelBackend)

    def test_unknown_name_raises_parameter_error(self):
        with pytest.raises(ParameterError) as excinfo:
            get_backend("does-not-exist")
        message = str(excinfo.value)
        assert "does-not-exist" in message
        assert REFERENCE in message  # the error lists what exists

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError):
            register_backend(get_backend(REFERENCE))

    def test_register_and_unregister_custom_backend(self):
        class Custom(BackendBase):
            name = "custom-test"
            tolerance = 0.0

            def evaluate(self, batch):
                return _evaluate_batch_arrays(batch)

        register_backend(Custom())
        try:
            assert "custom-test" in available_backends()
            assert get_backend("custom-test").name == "custom-test"
        finally:
            unregister_backend("custom-test")
        assert "custom-test" not in available_backends()
        with pytest.raises(ParameterError):
            unregister_backend("custom-test")

    def test_default_backend_is_reference(self):
        assert current_backend().name == REFERENCE
        assert resolve_backend(None).name == REFERENCE

    def test_use_backend_stack_nests_and_restores(self):
        assert current_backend().name == REFERENCE
        with use_backend(FUSED):
            assert current_backend().name == FUSED
            with use_backend(FLOAT32):
                assert current_backend().name == FLOAT32
            assert current_backend().name == FUSED
        assert current_backend().name == REFERENCE

    def test_use_backend_none_reinstalls_current(self):
        with use_backend(FUSED):
            with use_backend(None):
                assert current_backend().name == FUSED

    def test_use_backend_unknown_name_raises_eagerly(self):
        with pytest.raises(ParameterError):
            with use_backend("bogus"):
                pass  # pragma: no cover - never entered

    def test_resolve_backend_accepts_instances(self):
        backend = get_backend(FUSED)
        assert resolve_backend(backend) is backend

    def test_backend_summary_shape(self):
        summary = backend_summary()
        assert set(summary) == set(available_backends())
        entry = summary[FLOAT32]
        assert entry["dtype"] == "float32"
        assert entry["tolerance"] == FLOAT32_TOLERANCE

    def test_env_var_selects_default_backend(self):
        # A subprocess, because the env default is resolved once per
        # process — mutating os.environ here would race the cached value.
        code = (
            "from repro.engine import current_backend; "
            "print(current_backend().name)"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=_subprocess_env(**{BACKEND_ENV_VAR: FUSED}),
            cwd=REPO_ROOT,
            check=True,
        )
        assert result.stdout.strip() == FUSED

    def test_env_var_unknown_name_fails_loudly(self):
        code = "import repro.engine as e; e.current_backend()"
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=_subprocess_env(**{BACKEND_ENV_VAR: "not-a-backend"}),
            cwd=REPO_ROOT,
        )
        assert result.returncode != 0
        assert "not-a-backend" in result.stderr


class TestReferenceParity:
    def test_reference_is_bit_identical_to_kernel_pass(self):
        batch = sample_batch()
        via_backend = evaluate_batch(batch, backend=REFERENCE)
        direct = _evaluate_batch_arrays(batch)
        for name in SERIES:
            assert np.array_equal(
                getattr(via_backend, name), getattr(direct, name)
            ), name

    def test_reference_matches_scalar_model(self):
        batch = corner_batch()
        result = evaluate_batch(batch, backend=REFERENCE)
        for index, scenario in enumerate(batch.scenarios()):
            np.testing.assert_allclose(
                result.total_g[index], scenario.total_g(), rtol=1e-9, atol=1e-9
            )
            np.testing.assert_allclose(
                result.embodied_g[index],
                scenario.embodied_g(),
                rtol=1e-9,
                atol=1e-9,
            )

    def test_default_dispatch_unchanged(self):
        """``evaluate_batch(batch)`` with no selection is the reference."""
        batch = sample_batch(rows=64)
        assert np.array_equal(
            evaluate_batch(batch).total_g,
            _evaluate_batch_arrays(batch).total_g,
        )


class TestFusedParity:
    @pytest.mark.parametrize("rows", [1, 7, 512, 4096])
    def test_fused_bit_identical_to_reference(self, rows):
        batch = sample_batch(rows=rows, seed=rows)
        reference = evaluate_batch(batch, backend=REFERENCE)
        fused = evaluate_batch(batch, backend=FUSED)
        for name in SERIES:
            # Exact equality, not allclose: the fused pass executes the
            # identical IEEE operation sequence, only without temporaries.
            assert np.array_equal(
                getattr(fused, name), getattr(reference, name)
            ), name

    def test_fused_bit_identical_on_corners(self):
        batch = corner_batch()
        reference = evaluate_batch(batch, backend=REFERENCE)
        fused = evaluate_batch(batch, backend=FUSED)
        for name in SERIES:
            assert np.array_equal(
                getattr(fused, name), getattr(reference, name)
            ), name

    def test_fused_dtype_is_float64(self):
        assert evaluate_batch(sample_batch(64), backend=FUSED).dtype == np.float64

    def test_fused_metric_columns_bit_identical(self):
        rng = np.random.default_rng(11)
        carbon = rng.uniform(1e3, 1e6, 256)
        energy = rng.uniform(1.0, 1e4, 256)
        delay = rng.uniform(1e-3, 10.0, 256)
        area = rng.uniform(10.0, 500.0, 256)
        reference = metric_columns(carbon, energy, delay, area, backend=REFERENCE)
        fused = metric_columns(carbon, energy, delay, area, backend=FUSED)
        assert set(fused) == set(reference)
        for name in reference:
            assert np.array_equal(fused[name], reference[name]), name


class TestFloat32Drift:
    def test_float32_result_dtype(self):
        result = evaluate_batch(sample_batch(64), backend=FLOAT32)
        assert result.dtype == np.float32

    def test_float32_drift_within_documented_envelope(self):
        batch = sample_batch(rows=4096, seed=3)
        reference = evaluate_batch(batch, backend=REFERENCE)
        low = evaluate_batch(batch, backend=FLOAT32)
        for name in SERIES:
            expected = getattr(reference, name)
            observed = getattr(low, name).astype(np.float64)
            drift = np.abs(observed - expected) / np.maximum(
                1.0, np.abs(expected)
            )
            assert drift.max() <= FLOAT32_TOLERANCE, (
                f"{name}: max drift {drift.max():g}"
            )

    def test_float32_batch_astype_roundtrip(self):
        batch = sample_batch(rows=32)
        narrow = batch.astype(np.float32)
        assert narrow.dtype == np.float32
        assert batch.dtype == np.float64  # original untouched
        assert narrow.astype(np.float32) is narrow  # no-op cast
        widened = narrow.astype(np.float64)
        assert widened.dtype == np.float64
        np.testing.assert_allclose(
            widened.energy_kwh, batch.energy_kwh, rtol=1e-6
        )

    def test_astype_rejects_unsupported_dtypes(self):
        with pytest.raises(ParameterError):
            sample_batch(4).astype(np.int64)

    def test_mixed_dtype_columns_widen_to_float64(self):
        columns = {
            name: np.asarray(getattr(BASE, name), dtype=np.float32).reshape(1)
            for name in FIELD_NAMES
        }
        all_f32 = ScenarioBatch(**columns)
        assert all_f32.dtype == np.float32
        columns["energy_kwh"] = np.asarray([BASE.energy_kwh], dtype=np.float64)
        mixed = ScenarioBatch(**columns)
        assert mixed.dtype == np.float64


class TestNumbaBackend:
    @needs_numba
    def test_numba_registered_and_within_tolerance(self):
        batch = sample_batch(rows=2048, seed=5)
        reference = evaluate_batch(batch, backend=REFERENCE)
        jitted = evaluate_batch(batch, backend=NUMBA)
        for name in SERIES:
            expected = getattr(reference, name)
            observed = getattr(jitted, name)
            drift = np.abs(observed - expected) / np.maximum(
                1.0, np.abs(expected)
            )
            assert drift.max() <= NUMBA_TOLERANCE, (
                f"{name}: max drift {drift.max():g}"
            )

    @needs_numba
    def test_numba_guarded_evaluation_passes(self):
        guarded = GuardedEngine(backend=NUMBA).evaluate(sample_batch(256))
        assert guarded.masked_count == 0

    def test_numba_lookup_without_numba_names_alternatives(self):
        if HAVE_NUMBA:
            pytest.skip("numba installed: the lookup succeeds here")
        with pytest.raises(ParameterError) as excinfo:
            get_backend(NUMBA)
        assert FUSED in str(excinfo.value)


class TestCacheIsolation:
    def test_cache_never_cross_serves_backends(self):
        cache = EvaluationCache()
        batch = sample_batch(rows=128)
        ref = cache.evaluate(batch, backend=REFERENCE)
        fused = cache.evaluate(batch, backend=FUSED)
        f32 = cache.evaluate(batch, backend=FLOAT32)
        assert cache.stats().misses == 3  # three distinct entries
        assert ref is not fused and fused is not f32
        assert cache.evaluate(batch, backend=REFERENCE) is ref
        assert cache.evaluate(batch, backend=FUSED) is fused
        assert cache.evaluate(batch, backend=FLOAT32) is f32
        assert cache.stats().hits == 3

    def test_float32_result_never_served_to_float64_caller(self):
        cache = EvaluationCache()
        batch = sample_batch(rows=64)
        low = cache.evaluate(batch, backend=FLOAT32)
        assert low.dtype == np.float32
        served = cache.evaluate(batch)  # default = reference, float64
        assert served.dtype == np.float64
        assert served is not low

    def test_cache_respects_process_wide_selection(self):
        cache = EvaluationCache()
        batch = sample_batch(rows=64)
        baseline = cache.evaluate(batch)
        with use_backend(FUSED):
            fused = cache.evaluate(batch)
        assert fused is not baseline
        assert cache.evaluate(batch) is baseline

    def test_batch_key_distinguishes_dtype(self):
        batch = sample_batch(rows=32)
        assert batch_key(batch) != batch_key(batch.astype(np.float32))

    def test_evaluate_cached_threads_backend(self):
        cache = EvaluationCache()
        batch = sample_batch(rows=32)
        a = evaluate_cached(batch, cache, backend=FUSED)
        b = evaluate_cached(batch, cache, backend=FUSED)
        assert a is b
        assert cache.stats().hits == 1


class _CorruptBackend(BackendBase):
    """A fast path that silently scales one output series by 1%."""

    name = "corrupt-test"
    tolerance = 0.0

    def evaluate(self, batch):
        result = _evaluate_batch_arrays(batch)
        series = {
            name: np.array(getattr(result, name)) for name in SERIES
        }
        series["total_g"] = series["total_g"] * 1.01
        return BatchResult(**series)


class TestGuardedBackends:
    def test_guard_catches_corrupted_fast_path(self):
        register_backend(_CorruptBackend())
        try:
            engine = GuardedEngine(backend="corrupt-test")
            with pytest.raises(DivergenceError) as excinfo:
                engine.evaluate(sample_batch(rows=256))
            assert excinfo.value.series == "total_g"
            assert "corrupt-test" in str(excinfo.value)
        finally:
            unregister_backend("corrupt-test")

    def test_guard_passes_fused_backend(self):
        guarded = GuardedEngine(backend=FUSED).evaluate(sample_batch(256))
        assert guarded.masked_count == 0

    def test_guard_passes_float32_within_widened_tolerance(self):
        guarded = GuardedEngine(backend=FLOAT32).evaluate(sample_batch(256))
        assert guarded.masked_count == 0
        assert guarded.result.dtype == np.float32

    def test_guard_rejects_unknown_backend_name(self):
        with pytest.raises(ParameterError):
            GuardedEngine(backend="nope")

    def test_effective_tolerance_widens_per_backend(self):
        engine = GuardedEngine(backend=FLOAT32)
        assert engine._effective_tolerance(get_backend(FLOAT32)) == (
            FLOAT32_TOLERANCE
        )
        assert engine._effective_tolerance(get_backend(REFERENCE)) == (
            engine.tolerance
        )

    def test_guard_follows_process_wide_backend(self):
        register_backend(_CorruptBackend())
        try:
            with use_backend("corrupt-test"):
                with pytest.raises(DivergenceError):
                    GuardedEngine().evaluate(sample_batch(rows=128))
        finally:
            unregister_backend("corrupt-test")


class TestParallelBackends:
    def test_policy_validates_backend_name(self):
        from repro.parallel import ExecutionPolicy

        policy = ExecutionPolicy(backend=FUSED)
        assert policy.backend == FUSED
        with pytest.raises(ParameterError):
            ExecutionPolicy(backend="nonsense")

    def test_runner_ships_backend_by_name(self):
        from repro.parallel import ExecutionPolicy
        from repro.parallel.runner import ParallelRunner

        batch = sample_batch(rows=1000)
        reference = evaluate_batch(batch, backend=REFERENCE)
        policy = ExecutionPolicy(workers=2, shard_rows=256, backend=FUSED)
        with ParallelRunner(policy) as runner:
            merged = runner.evaluate_batch(batch)
        np.testing.assert_array_equal(
            merged.series["total_g"], reference.total_g
        )

    def test_runner_inherits_process_wide_backend(self):
        from repro.parallel import ExecutionPolicy
        from repro.parallel.runner import ParallelRunner

        batch = sample_batch(rows=512)
        with use_backend(FUSED):
            policy = ExecutionPolicy(workers=2, shard_rows=128)
            with ParallelRunner(policy) as runner:
                merged = runner.evaluate_batch(batch)
        np.testing.assert_array_equal(
            merged.series["total_g"],
            evaluate_batch(batch, backend=REFERENCE).total_g,
        )

    def test_parallel_fused_bit_identical_to_serial_reference_mc(self):
        from repro.parallel import ExecutionPolicy
        from repro.parallel.runner import ParallelRunner

        serial_policy = ExecutionPolicy(workers=1, shard_rows=512)
        fused_policy = ExecutionPolicy(
            workers=2, shard_rows=512, backend=FUSED
        )
        with ParallelRunner(serial_policy) as serial_runner:
            serial = serial_runner.run_monte_carlo(BASE, draws=2048, seed=9)
        with ParallelRunner(fused_policy) as fused_runner:
            fused = fused_runner.run_monte_carlo(BASE, draws=2048, seed=9)
        np.testing.assert_array_equal(
            fused.series["total_g"], serial.series["total_g"]
        )

    def test_float32_shard_results_upcast_on_merge(self):
        from repro.parallel import ExecutionPolicy
        from repro.parallel.runner import ParallelRunner

        batch = sample_batch(rows=512)
        policy = ExecutionPolicy(workers=1, shard_rows=128, backend=FLOAT32)
        with ParallelRunner(policy) as runner:
            merged = runner.evaluate_batch(batch)
        assert merged.series["total_g"].dtype == np.float64
        expected = evaluate_batch(batch, backend=FLOAT32).total_g
        np.testing.assert_array_equal(
            merged.series["total_g"], expected.astype(np.float64)
        )


class TestCliBackend:
    """The --backend flag, exercised in-process through cli.main()."""

    def _run(self, capsys, *argv: str):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_montecarlo_backend_flag(self, capsys):
        code, out, err = self._run(
            capsys, "montecarlo", "--draws", "500", "--backend", "fused"
        )
        assert code == 0, err
        assert "Monte Carlo" in out

    def test_montecarlo_backend_matches_default(self, capsys):
        code_a, default_out, _ = self._run(capsys, "montecarlo", "--draws", "500")
        code_b, fused_out, _ = self._run(
            capsys, "montecarlo", "--draws", "500", "--backend", "fused"
        )
        assert code_a == code_b == 0

        # Drop wall-clock-dependent lines; every number left is a model
        # output and must match bit-for-bit across backends.
        def stable(text):
            return [
                line
                for line in text.splitlines()
                if "points/sec" not in line and "elapsed" not in line
            ]

        assert stable(default_out) == stable(fused_out)

    def test_sensitivity_backend_flag(self, capsys):
        code, out, err = self._run(
            capsys, "sensitivity", "--draws", "500", "--backend", "fused"
        )
        assert code == 0, err
        assert "Monte Carlo" in out

    def test_unknown_backend_exits_2(self, capsys):
        code, _, err = self._run(
            capsys, "montecarlo", "--draws", "100", "--backend", "warp-drive"
        )
        assert code == 2
        assert "warp-drive" in err

    def test_backend_selection_restored_after_command(self, capsys):
        code, _, _ = self._run(
            capsys, "montecarlo", "--draws", "200", "--backend", "float32"
        )
        assert code == 0
        assert current_backend().name == REFERENCE
