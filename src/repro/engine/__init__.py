"""Batched scenario evaluation: Eq. 1-8 as array kernels over N scenarios.

The scalar model (:class:`~repro.analysis.scenario.ActScenario`,
:class:`~repro.core.model.Platform`) is the reference implementation; this
package is its high-throughput twin.  A :class:`ScenarioBatch` holds N
complete parameter assignments struct-of-arrays style, :func:`evaluate_batch`
runs the full Eq. 1-8 pipeline over all rows at once, and
:class:`EvaluationCache` memoizes results by content hash so overlapping
sweeps never recompute.  The sweep / Monte Carlo / sensitivity / experiment
layers all build on these kernels; the equivalence test suite pins batched
output to the scalar path within 1e-9.

Use the scalar path for single designs and rich per-component reports; use
the engine whenever the same question is asked across a grid, a sample, or
a design space.

*How* a batch is evaluated is a pluggable :class:`KernelBackend`
(:mod:`repro.engine.backends`): the default ``reference`` backend is the
pinned float64 path above, ``fused`` collapses the pipeline into
allocation-minimal in-place passes (bit-identical results), ``float32``
trades precision for bandwidth under a documented drift envelope, and a
``numba`` backend registers when the optional dependency is installed.
Select one per call (``evaluate_batch(batch, backend="fused")``) or
process-wide (``with use_backend("fused"): ...``).
"""

from repro.engine.backends import (
    BACKEND_ENV_VAR,
    FLOAT32,
    FUSED,
    NUMBA,
    REFERENCE,
    KernelBackend,
    available_backends,
    backend_summary,
    current_backend,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
    use_backend,
)
from repro.engine.batch import FIELD_NAMES, ScenarioBatch, product_params
from repro.engine.cache import (
    DEFAULT_CACHE,
    CacheStats,
    EvaluationCache,
    batch_key,
    evaluate_cached,
    row_key,
)
from repro.engine.kernels import (
    BatchResult,
    cpa_g_per_cm2,
    evaluate_batch,
    operational_g,
    packaging_g,
    soc_embodied_g,
    storage_embodied_g,
    total_g,
)
from repro.engine.metrics import (
    METRIC_INPUTS,
    best_index,
    canonical_metric,
    metric_columns,
    metric_table_entry,
    score_table_batched,
    stack_design_points,
    winners_batched,
    winners_from_table,
)
from repro.engine.plan import (
    PLANNER_AUTO,
    PLANNER_ENV_VAR,
    PLANNER_OFF,
    PLANNER_ON,
    DedupPlan,
    SweepPlan,
    backend_plannable,
    current_planner_mode,
    dedup_rows,
    evaluate_batch_deduped,
    evaluate_plan_cached,
    plan_product,
    planner_engaged,
    resolve_planner_mode,
    use_planner,
    verify_plan,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BatchResult",
    "CacheStats",
    "DEFAULT_CACHE",
    "DedupPlan",
    "EvaluationCache",
    "FIELD_NAMES",
    "FLOAT32",
    "FUSED",
    "KernelBackend",
    "METRIC_INPUTS",
    "NUMBA",
    "PLANNER_AUTO",
    "PLANNER_ENV_VAR",
    "PLANNER_OFF",
    "PLANNER_ON",
    "REFERENCE",
    "ScenarioBatch",
    "SweepPlan",
    "available_backends",
    "backend_plannable",
    "backend_summary",
    "batch_key",
    "best_index",
    "canonical_metric",
    "cpa_g_per_cm2",
    "current_backend",
    "current_planner_mode",
    "dedup_rows",
    "evaluate_batch",
    "evaluate_batch_deduped",
    "evaluate_cached",
    "evaluate_plan_cached",
    "get_backend",
    "metric_columns",
    "metric_table_entry",
    "operational_g",
    "packaging_g",
    "plan_product",
    "planner_engaged",
    "product_params",
    "register_backend",
    "resolve_backend",
    "resolve_planner_mode",
    "row_key",
    "score_table_batched",
    "soc_embodied_g",
    "stack_design_points",
    "storage_embodied_g",
    "total_g",
    "unregister_backend",
    "use_backend",
    "use_planner",
    "verify_plan",
    "winners_batched",
    "winners_from_table",
]
