"""Pareto-front extraction for multi-objective design-space exploration.

ACT's central message is that carbon, performance, and energy trade off
along *different* axes than classical PPA; the Pareto front over
(embodied carbon, delay, energy, ...) is the natural way to present that
design space.  All objectives minimize.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.core.errors import ConstraintError

T = TypeVar("T")

Objective = Callable[[T], float]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b`` (minimizing).

    ``a`` dominates ``b`` when it is no worse on every objective and
    strictly better on at least one.
    """
    if len(a) != len(b):
        raise ConstraintError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}"
        )
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(
    candidates: Sequence[T], objectives: Sequence[Objective[T]]
) -> tuple[T, ...]:
    """The non-dominated subset of ``candidates`` under ``objectives``.

    Order is preserved; duplicate objective vectors are all retained (they
    do not dominate each other).
    """
    if not objectives:
        raise ConstraintError("at least one objective is required")
    if not candidates:
        return ()
    vectors = np.array(
        [[fn(candidate) for fn in objectives] for candidate in candidates],
        dtype=np.float64,
    )
    mask = pareto_mask(vectors)
    return tuple(
        candidate
        for candidate, keep in zip(candidates, mask)
        if keep
    )


def pareto_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean non-dominated mask over an ``(n, m)`` objective matrix.

    The array form of :func:`pareto_front` — row ``i`` is one candidate's
    ``m`` minimizing objectives, and the result marks the rows no other row
    Pareto-dominates.  One broadcasted comparison replaces the O(n^2)
    Python loop, so batched sweeps can extract fronts directly from their
    result columns.  Duplicate rows are all retained, matching
    :func:`dominates` semantics.
    """
    matrix = np.asarray(objectives, dtype=np.float64)
    if matrix.ndim != 2:
        raise ConstraintError(
            f"objective matrix must be 2-D (candidates x objectives), "
            f"got shape {matrix.shape}"
        )
    if matrix.shape[1] == 0:
        raise ConstraintError("at least one objective is required")
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    # dominated[i, j]: candidate i is no worse than j everywhere and
    # strictly better somewhere — i.e. i dominates j.
    no_worse = (matrix[:, None, :] <= matrix[None, :, :]).all(axis=2)
    better = (matrix[:, None, :] < matrix[None, :, :]).any(axis=2)
    dominated_by_any = (no_worse & better).any(axis=0)
    return ~dominated_by_any
