"""Generic parameter sweeps for carbon-aware design-space exploration.

Thin, typed helpers that the experiment modules build on: evaluate a design
generator over a one-dimensional parameter grid or the Cartesian product of
several named grids, keeping the (parameters → design) association so
results can be tabulated and constrained afterwards.

Two evaluation paths exist.  The scalar helpers (:func:`sweep_1d`,
:func:`sweep_grid`) call an arbitrary Python evaluator per point and remain
the reference implementation.  :func:`sweep_grid_batched` instead sweeps the
ACT model itself: it lowers the grid into a
:class:`~repro.engine.batch.ScenarioBatch` and evaluates Eq. 1-8 for every
point in one vectorized, cached pass — the same results, orders of
magnitude faster for large grids.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Generic,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    TypeVar,
)

import numpy as np

from repro.analysis.scenario import ActScenario
from repro.core.errors import ConstraintError
from repro.engine.batch import ScenarioBatch, product_columns, product_params
from repro.engine.cache import EvaluationCache, evaluate_cached
from repro.engine.kernels import BatchResult
from repro.obs.context import current_context

if TYPE_CHECKING:  # pragma: no cover - robustness sits above this module
    from repro.robustness.guard import ColumnDiagnostic, GuardedEngine

P = TypeVar("P")
D = TypeVar("D")


class FrozenParams(Mapping[str, object]):
    """An immutable, hashable parameter mapping.

    ``SweepRecord`` is a frozen dataclass, but a frozen dataclass holding a
    plain ``dict`` is neither hashable nor safe to use as a cache key.  This
    wrapper freezes the mapping at construction and hashes by item set, so
    records can go straight into sets, dict keys, and memo tables.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Mapping[str, object]):
        self._items = dict(items)

    def __getitem__(self, key: str) -> object:
        return self._items[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(frozenset(self._items.items()))

    def __repr__(self) -> str:
        return f"FrozenParams({self._items!r})"


@dataclass(frozen=True)
class SweepRecord(Generic[D]):
    """One evaluated point of a sweep: the parameters and the design."""

    params: Mapping[str, object]
    design: D

    def __post_init__(self) -> None:
        # Freeze the mapping so frozen records are genuinely immutable and
        # hashable (dict-valued fields would break hash() and cache keys).
        if not isinstance(self.params, FrozenParams):
            object.__setattr__(self, "params", FrozenParams(self.params))


def sweep_1d(
    name: str, values: Iterable[P], evaluate: Callable[[P], D]
) -> tuple[SweepRecord[D], ...]:
    """Evaluate a single-parameter sweep.

    Args:
        name: Parameter name recorded on each result.
        values: Grid of parameter values.
        evaluate: Maps one parameter value to a design/result object.
    """
    context = current_context()
    with context.span("dse.sweep_1d", parameter=name):
        records = tuple(
            SweepRecord(params={name: value}, design=evaluate(value))
            for value in values
        )
    if context.enabled:
        context.count("dse.sweep.points", len(records))
    return records


def sweep_grid(
    grids: Mapping[str, Sequence[object]],
    evaluate: Callable[..., D],
) -> tuple[SweepRecord[D], ...]:
    """Evaluate the Cartesian product of several named parameter grids.

    ``evaluate`` is called with the grid names as keyword arguments.
    """
    if not grids:
        raise ConstraintError("at least one parameter grid is required")
    names = tuple(grids)
    context = current_context()
    with context.span("dse.sweep_grid_scalar", dimensions=len(names)):
        records = []
        for combo in itertools.product(*(grids[name] for name in names)):
            params = dict(zip(names, combo))
            records.append(
                SweepRecord(params=params, design=evaluate(**params))
            )
    if context.enabled:
        context.count("dse.sweep.points", len(records))
    return tuple(records)


@dataclass(frozen=True)
class BatchSweepResult:
    """A fully-evaluated ACT-model grid sweep, struct-of-arrays style.

    Attributes:
        names: The swept parameter names, in grid order.
        batch: The evaluated scenario batch (row ``i`` = grid point ``i``,
            ordered like ``itertools.product`` over the grids).
        result: Every Eq. 1-8 output series aligned with the batch rows.
    """

    names: tuple[str, ...]
    batch: ScenarioBatch
    result: BatchResult

    def __len__(self) -> int:
        return len(self.batch)

    def params(self, index: int) -> dict[str, float]:
        """The swept-parameter assignment of grid point ``index``."""
        return {
            name: float(self.batch.column(name)[index]) for name in self.names
        }

    def argmin(self, series: str = "total_g") -> int:
        """Row index minimizing one result series (default: Eq. 1 total)."""
        return int(np.argmin(getattr(self.result, series)))

    def min_record(self, series: str = "total_g") -> SweepRecord[ActScenario]:
        """The minimizing grid point as a scalar-compatible sweep record."""
        index = self.argmin(series)
        return SweepRecord(
            params=self.params(index), design=self.batch.scenario(index)
        )

    def records(self) -> tuple[SweepRecord[float], ...]:
        """Scalar-compatible records carrying each point's total footprint."""
        totals = self.result.total_g
        return tuple(
            SweepRecord(params=self.params(index), design=float(totals[index]))
            for index in range(len(self))
        )


@dataclass(frozen=True)
class GuardedSweepResult(BatchSweepResult):
    """A guarded grid sweep: the surviving points plus what was masked.

    A drop-in :class:`BatchSweepResult` whose batch holds only the rows
    the guard accepted (with ``repair``-policy clamping applied), plus the
    guard's bookkeeping so callers can see exactly which grid points were
    dropped and why.

    Attributes:
        valid: Boolean mask over the *original* grid rows.
        source_indices: Original grid-row index of each surviving row.
        diagnostics: Everything the guard's validation found.
    """

    valid: np.ndarray = None  # type: ignore[assignment]
    source_indices: np.ndarray = None  # type: ignore[assignment]
    diagnostics: "tuple[ColumnDiagnostic, ...]" = ()

    @property
    def masked_count(self) -> int:
        """How many grid points the guard masked out."""
        return int(self.valid.size - np.count_nonzero(self.valid))


def _parallel_sweep(
    base: ActScenario,
    grids: Mapping[str, Sequence[float]],
    policy: object,
    guard: "GuardedEngine | None",
) -> BatchSweepResult:
    """Evaluate a grid sweep through the parallel runner.

    Bit-identical to the serial sweep: the Eq. 1-8 kernels are elementwise,
    so shard boundaries cannot change any value, and the guard's repair
    clamping is a pure per-row function reapplied parent-side to rebuild
    the surviving batch.
    """
    from repro.parallel.runner import ParallelRunner

    size, columns = product_columns(base, grids)
    context = current_context()
    if context.enabled:
        context.count("dse.sweep.points", size)
    with ParallelRunner(policy) as runner:
        evaluation = runner.evaluate_columns(base, size, columns, guard=guard)
    if guard is None:
        return BatchSweepResult(
            names=tuple(grids),
            batch=ScenarioBatch(**columns),
            result=evaluation.batch_result(),
        )
    # Rebuild the surviving (possibly repaired) input batch exactly as the
    # serial guard would: reapply the pure repair clamp to the diagnosed
    # input values, then keep the valid rows.  Output-overflow diagnostics
    # describe kernel results, not input columns, so they are excluded.
    from repro.engine.batch import FIELD_NAMES
    from repro.robustness.guard import OUTPUT

    raw = {name: np.array(column) for name, column in columns.items()}
    input_diagnostics = tuple(
        diagnostic
        for diagnostic in evaluation.diagnostics
        if diagnostic.reason != OUTPUT and diagnostic.column in FIELD_NAMES
    )
    if evaluation.repaired and input_diagnostics:
        raw = guard._repair(base, raw, input_diagnostics)
    valid = evaluation.valid
    batch = ScenarioBatch(
        **{
            name: np.ascontiguousarray(column[valid])
            for name, column in raw.items()
        }
    )
    return GuardedSweepResult(
        names=tuple(grids),
        batch=batch,
        result=evaluation.batch_result(),
        valid=np.array(valid),
        source_indices=evaluation.indices,
        diagnostics=evaluation.diagnostics,
    )


def sweep_grid_batched(
    base: ActScenario,
    grids: Mapping[str, Sequence[float]],
    *,
    cache: EvaluationCache | None = None,
    guard: "GuardedEngine | None" = None,
    policy: "object | int | None" = None,
) -> BatchSweepResult:
    """Sweep the ACT model over a parameter grid in one vectorized pass.

    The batched twin of ``sweep_grid(grids, lambda **p: base.replace(**p))``:
    every Cartesian grid point becomes one batch row, Eq. 1-8 run once over
    the whole batch, and repeated sweeps of an identical grid are served
    from the content-hash cache.

    Args:
        base: Scenario providing every non-swept parameter.
        grids: Named grids over :class:`ActScenario` fields.
        cache: Optional evaluation cache (default: the process-wide one).
        guard: Optional :class:`~repro.robustness.guard.GuardedEngine`.
            When given, the grid columns are validated (and repaired or
            masked, per policy) before evaluation and a
            :class:`GuardedSweepResult` over the surviving points is
            returned.
        policy: An :class:`~repro.parallel.ExecutionPolicy`, a bare worker
            count, or ``None`` to pick up an installed process-wide
            policy.  Sweeps are elementwise, so parallel results are
            bit-identical to the serial pass at any worker count; a
            resolved ``workers=1`` policy stays on the serial cached path.
    """
    if not grids:
        raise ConstraintError("at least one parameter grid is required")
    from repro.parallel.policy import resolve_policy

    resolved_policy = resolve_policy(policy)
    context = current_context()
    with context.span(
        "dse.sweep_grid",
        dimensions=len(grids),
        guarded=guard is not None,
        workers=resolved_policy.workers if resolved_policy is not None else 0,
    ):
        if resolved_policy is not None and resolved_policy.parallel:
            return _parallel_sweep(base, grids, resolved_policy, guard)
        if guard is not None:
            size, columns = product_columns(base, grids)
            if context.enabled:
                context.count("dse.sweep.points", size)
            guarded = guard.evaluate_columns(base, size, columns)
            return GuardedSweepResult(
                names=tuple(grids),
                batch=guarded.batch,
                result=guarded.result,
                valid=guarded.valid,
                source_indices=guarded.indices,
                diagnostics=guarded.diagnostics,
            )
        batch = ScenarioBatch.from_product(base, grids)
        if context.enabled:
            context.count("dse.sweep.points", len(batch))
        result = evaluate_cached(batch, cache)
        return BatchSweepResult(names=tuple(grids), batch=batch, result=result)


def argmin(
    records: Sequence[SweepRecord[D]], key: Callable[[D], float]
) -> SweepRecord[D]:
    """The record whose design minimizes ``key``."""
    if not records:
        raise ConstraintError("cannot take argmin of an empty sweep")
    return min(records, key=lambda record: key(record.design))


def feasible(
    records: Sequence[SweepRecord[D]], predicate: Callable[[D], bool]
) -> tuple[SweepRecord[D], ...]:
    """The records whose designs satisfy a constraint predicate."""
    return tuple(record for record in records if predicate(record.design))


__all__ = [
    "BatchSweepResult",
    "FrozenParams",
    "GuardedSweepResult",
    "SweepRecord",
    "argmin",
    "feasible",
    "product_params",
    "sweep_1d",
    "sweep_grid",
    "sweep_grid_batched",
]
