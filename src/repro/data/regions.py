"""Regional grid carbon intensities (ACT appendix Table 6).

Average carbon intensity of electricity generation by geography, in
g CO2/kWh, with the dominant energy source the paper lists for each region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import UnknownEntryError
from repro.data.provenance import PAPER_TABLE, Source


@dataclass(frozen=True)
class Region:
    """One row of Table 6.

    Attributes:
        name: Canonical lower-case identifier (e.g. ``"taiwan"``).
        ci_g_per_kwh: Average grid carbon intensity in g CO2/kWh.
        dominant_source: The paper's noted dominant generation source
            (empty string when the paper lists none).
        source: Provenance record.
    """

    name: str
    ci_g_per_kwh: float
    dominant_source: str
    source: Source


_TABLE6 = Source(PAPER_TABLE, "ACT Table 6")

REGIONS: dict[str, Region] = {
    region.name: region
    for region in (
        Region("world", 301.0, "", _TABLE6),
        Region("india", 725.0, "coal/gas", _TABLE6),
        Region("australia", 597.0, "coal", _TABLE6),
        Region("taiwan", 583.0, "coal/gas", _TABLE6),
        Region("singapore", 495.0, "gas", _TABLE6),
        Region("united_states", 380.0, "coal/gas", _TABLE6),
        Region("europe", 295.0, "", _TABLE6),
        Region("brazil", 82.0, "wind/hydropower", _TABLE6),
        Region("iceland", 28.0, "hydropower", _TABLE6),
    )
}

_ALIASES = {
    "us": "united_states",
    "usa": "united_states",
    "united states": "united_states",
    "eu": "europe",
}

#: Average US grid intensity the reuse case study assumes (Section 6.1 quotes
#: "average carbon intensity of the United States (e.g., 300 g CO2 per kWh)").
US_CASE_STUDY_CI = 300.0


def region(name: str) -> Region:
    """Look up a region by name (case-insensitive, with common aliases)."""
    key = name.strip().lower().replace("-", "_")
    key = _ALIASES.get(key, key)
    try:
        return REGIONS[key]
    except KeyError:
        raise UnknownEntryError("region", name, REGIONS) from None


def region_ci(name: str) -> float:
    """Grid carbon intensity (g CO2/kWh) of a named region."""
    return region(name).ci_g_per_kwh
