"""EvaluationCache: LRU mechanics, caller-cache routing, and guard purity."""

import numpy as np
import pytest

from repro.analysis import ActScenario
from repro.core.errors import ParameterError
from repro.engine.batch import ScenarioBatch
from repro.engine.cache import (
    DEFAULT_CACHE,
    EvaluationCache,
    batch_key,
    evaluate_cached,
)
from repro.robustness import SKIP, GuardedEngine, RobustnessWarning

BASE = ActScenario()


def batch_of(energy):
    return ScenarioBatch.from_columns(
        BASE, len(energy), {"energy_kwh": np.asarray(energy, dtype=np.float64)}
    )


class TestBatchKey:
    def test_equal_content_hashes_identically_across_constructors(self):
        a = ScenarioBatch.from_product(BASE, {"energy_kwh": [1.0, 2.0]})
        b = ScenarioBatch.from_scenarios(
            [BASE.replace(energy_kwh=1.0), BASE.replace(energy_kwh=2.0)]
        )
        assert batch_key(a) == batch_key(b)

    def test_different_content_hashes_differently(self):
        assert batch_key(batch_of([1.0, 2.0])) != batch_key(batch_of([1.0, 3.0]))


class TestLru:
    def test_eviction_order_is_least_recently_used(self):
        cache = EvaluationCache(capacity=2)
        a, b, c = batch_of([1.0]), batch_of([2.0]), batch_of([3.0])
        cache.evaluate(a)
        cache.evaluate(b)
        cache.evaluate(c)  # evicts a
        assert len(cache) == 2
        cache.evaluate(b)
        assert cache.hits == 1
        cache.evaluate(a)  # was evicted: a miss again
        assert cache.misses == 4

    def test_hit_moves_entry_to_most_recent(self):
        cache = EvaluationCache(capacity=2)
        a, b, c = batch_of([1.0]), batch_of([2.0]), batch_of([3.0])
        cache.evaluate(a)
        cache.evaluate(b)
        cache.evaluate(a)  # refresh a; b becomes least recent
        cache.evaluate(c)  # evicts b, not a
        cache.evaluate(a)
        assert cache.hits == 2
        cache.evaluate(b)
        assert cache.misses == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ParameterError):
            EvaluationCache(capacity=0)

    def test_clear_resets_store_and_counters(self):
        cache = EvaluationCache()
        cache.evaluate(batch_of([1.0]))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
        assert cache.hit_rate == 0.0

    def test_hit_rate(self):
        cache = EvaluationCache()
        a = batch_of([1.0])
        cache.evaluate(a)
        cache.evaluate(a)
        assert cache.hit_rate == pytest.approx(0.5)


class TestCallerCacheRouting:
    def test_empty_caller_cache_is_used_not_default(self):
        """Regression: an empty EvaluationCache is falsy (len() == 0), so a
        truthiness check would silently reroute to the process-wide default
        cache.  The explicitly-passed cache must take the traffic."""
        cache = EvaluationCache()
        assert not cache  # the trap: empty caches are falsy
        default_before = (DEFAULT_CACHE.hits, DEFAULT_CACHE.misses)
        batch = batch_of([4.0, 5.0])
        evaluate_cached(batch, cache)
        evaluate_cached(batch, cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert (DEFAULT_CACHE.hits, DEFAULT_CACHE.misses) == default_before

    def test_none_routes_to_default_cache(self):
        before = DEFAULT_CACHE.hits + DEFAULT_CACHE.misses
        evaluate_cached(batch_of([6.0]))
        assert DEFAULT_CACHE.hits + DEFAULT_CACHE.misses == before + 1


class TestGuardCachePurity:
    def test_masked_batches_do_not_poison_cache_keys(self):
        """The skip policy compacts valid rows *before* evaluation, so the
        cached entry is keyed by clean content only — a later evaluation of
        that same clean content must hit, and the cache must never have
        seen the corrupted full-length columns."""
        cache = EvaluationCache()
        engine = GuardedEngine(policy=SKIP, cache=cache)
        bad = np.array([1.0, np.nan, 3.0, np.inf])
        with pytest.warns(RobustnessWarning):
            guarded = engine.evaluate_columns(
                BASE, 4, {"energy_kwh": np.array(bad)}
            )
        assert (cache.hits, cache.misses) == (0, 1)
        # The one cached entry is exactly the compacted, clean batch.
        clean = batch_of([1.0, 3.0])
        evaluate_cached(clean, cache)
        assert cache.hits == 1
        assert batch_key(guarded.batch) == batch_key(clean)

    def test_repeated_guarded_evaluation_hits_cache(self):
        cache = EvaluationCache()
        engine = GuardedEngine(policy=SKIP, cache=cache)
        columns = {"energy_kwh": np.array([1.0, np.nan, 3.0])}
        for _ in range(2):
            with pytest.warns(RobustnessWarning):
                engine.evaluate_columns(
                    BASE, 3, {k: np.array(v) for k, v in columns.items()}
                )
        assert (cache.hits, cache.misses) == (1, 1)
