"""A small persistent worker-process pool with faithful error transport.

``multiprocessing.Pool`` would almost fit, but the runner needs three
things it does not give cleanly: a pool that survives across many
evaluate calls without re-importing numpy (persistent daemon workers fed
through queues), per-task knowledge of *which worker* ran it (so the
parent can tag observability counters per worker), and loss-free
exception propagation (``Pool`` re-raises whatever survives pickling and
hangs or obscures what does not).

:class:`WorkerPool` keeps the contract tiny: ``run(fn, payloads)`` maps a
**module-level** function over payloads on the workers and returns results
in submission order.  Worker exceptions are pickled back and re-raised
with their original type when the exception round-trips; otherwise the
parent raises :class:`~repro.core.errors.WorkerError` carrying the
original's text and traceback.

Liveness is part of the contract too: the parent never blocks
indefinitely on the result queue.  ``run`` polls with a timeout and
checks worker exit codes between polls, so a worker killed mid-task
(OOM, SIGKILL) surfaces as a :class:`~repro.core.errors.WorkerError`
instead of a parent deadlock.  For supervised execution
(:class:`~repro.parallel.supervisor.ShardSupervisor`) the pool exposes
lower-level primitives — per-run epochs, per-worker heartbeats and task
claims, targeted termination, and respawn — that make lost shards
attributable and dead workers replaceable without tearing the pool down.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import time
import traceback
from typing import Any, Callable, Sequence

from repro.core.errors import ParameterError, WorkerError
from repro.parallel.policy import default_start_method

#: BLAS thread-pool pins applied before workers start: each worker runs
#: single-threaded kernels so speedups are attributable to the pool (and
#: W workers × T BLAS threads cannot oversubscribe the machine).
BLAS_ENV_PINS = {
    "OPENBLAS_NUM_THREADS": "1",
    "OMP_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
}

#: How long a blocking result-queue read waits before the parent checks
#: worker liveness.  Small enough that a dead worker is noticed promptly,
#: large enough that a healthy run never spins.
DEFAULT_POLL_SECONDS = 0.05

#: Claim-array sentinel: this worker holds no task.
_IDLE = -1


def pin_blas_threads() -> None:
    """Pin BLAS/OpenMP thread pools to 1 (existing settings win)."""
    for key, value in BLAS_ENV_PINS.items():
        os.environ.setdefault(key, value)


def _encode_error(exc: BaseException) -> tuple[str, Any]:
    """Encode an exception for the result queue.

    Returns ``("exc", exception)`` when the exception survives a pickle
    round trip (the parent re-raises it as-is), else ``("text", (repr,
    traceback))`` for a parent-side :class:`WorkerError`.
    """
    try:
        if pickle.loads(pickle.dumps(exc)) is not None:
            return ("exc", exc)
    except Exception:
        pass
    return ("text", (repr(exc), traceback.format_exc()))


def _worker_loop(
    worker_id: int,
    tasks: Any,
    results: Any,
    heartbeats: Any,
    claim_tasks: Any,
    claim_runs: Any,
) -> None:
    """Worker main: drain the task queue until the ``None`` sentinel.

    Before executing a task the worker *claims* it — records the task
    index and run epoch in the shared claim arrays, and stamps its
    heartbeat — so the parent can attribute a lost shard to the worker
    that died holding it, and can spot a worker stalled past its shard
    deadline (the heartbeat only advances between tasks).
    """
    pin_blas_threads()
    for item in iter(tasks.get, None):
        run_id, index, fn, payload = item
        claim_tasks[worker_id] = index
        claim_runs[worker_id] = run_id
        heartbeats[worker_id] = time.monotonic()
        try:
            out = fn(payload)
        except BaseException as exc:  # noqa: BLE001 - transported to parent
            # A chaos-injected dropped result: the work happened but the
            # message never reaches the parent (see robustness.faultinject).
            if not getattr(exc, "repro_dropped_result", False):
                results.put(
                    (run_id, index, worker_id, False, _encode_error(exc))
                )
        else:
            results.put((run_id, index, worker_id, True, out))
        finally:
            claim_tasks[worker_id] = _IDLE
            heartbeats[worker_id] = time.monotonic()


class WorkerPool:
    """A persistent pool of daemon worker processes fed through queues.

    Start is lazy — processes launch on the first :meth:`run` — and the
    pool is reusable across calls until :meth:`close`.  Tasks name their
    function by reference (it must be importable module-level, picklable
    under both ``fork`` and ``spawn``).  Workers found dead at the start
    of a run are respawned automatically; a worker that dies *during*
    a plain :meth:`run` raises :class:`WorkerError` (never a deadlock).
    """

    def __init__(
        self,
        workers: int,
        *,
        start_method: str | None = None,
        join_timeout: float = 10.0,
        term_timeout: float = 5.0,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
    ):
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.start_method = start_method or default_start_method()
        self.join_timeout = float(join_timeout)
        self.term_timeout = float(term_timeout)
        self.poll_seconds = float(poll_seconds)
        self._context = multiprocessing.get_context(self.start_method)
        self._processes: list[multiprocessing.process.BaseProcess] = []
        self._tasks: Any = None
        self._results: Any = None
        self._heartbeats: Any = None
        self._claim_tasks: Any = None
        self._claim_runs: Any = None
        self._run_id = 0
        self._respawns = 0
        self._closed = False

    @property
    def running(self) -> bool:
        return bool(self._processes)

    @property
    def respawns(self) -> int:
        """Workers respawned over the pool's lifetime."""
        return self._respawns

    # --- process lifecycle ----------------------------------------------

    def _spawn(self, worker_id: int) -> multiprocessing.process.BaseProcess:
        self._claim_tasks[worker_id] = _IDLE
        self._claim_runs[worker_id] = _IDLE
        self._heartbeats[worker_id] = time.monotonic()
        process = self._context.Process(
            target=_worker_loop,
            args=(
                worker_id,
                self._tasks,
                self._results,
                self._heartbeats,
                self._claim_tasks,
                self._claim_runs,
            ),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        return process

    def _ensure_started(self) -> None:
        if self._closed:
            raise ParameterError("worker pool is closed")
        if self._processes:
            # Replace any worker that died since the last run so a crashed
            # batch does not permanently shrink the pool.
            for worker_id, process in enumerate(self._processes):
                if process.exitcode is not None:
                    self.respawn(worker_id)
            return
        # Pin in the parent before forking/spawning so children inherit
        # the single-threaded BLAS configuration from their environment.
        pin_blas_threads()
        # Full Queues, not SimpleQueues: their feeder threads make put()
        # non-blocking, so submitting every task before draining results
        # cannot deadlock on a full pipe when payloads are large (pickle
        # transport ships whole column slices through these queues).
        self._tasks = self._context.Queue()
        self._results = self._context.Queue()
        # Lock-free shared scalars: each slot has exactly one writer (its
        # worker) and one reader (the parent); aligned word-sized loads
        # and stores need no lock.
        self._heartbeats = self._context.Array("d", self.workers, lock=False)
        self._claim_tasks = self._context.Array("q", self.workers, lock=False)
        self._claim_runs = self._context.Array("q", self.workers, lock=False)
        for worker_id in range(self.workers):
            self._processes.append(self._spawn(worker_id))

    def respawn(self, worker_id: int) -> None:
        """Replace one (dead) worker process with a fresh one."""
        process = self._processes[worker_id]
        if process.is_alive():  # pragma: no cover - defensive
            self.terminate_worker(worker_id)
            process = self._processes[worker_id]
        process.join(timeout=0)
        self._processes[worker_id] = self._spawn(worker_id)
        self._respawns += 1

    def terminate_worker(self, worker_id: int) -> None:
        """Forcibly stop one worker: ``terminate()``, escalate to ``kill()``.

        Used by the supervisor on workers hung past their shard deadline.
        The worker's slot stays dead until :meth:`respawn`.
        """
        process = self._processes[worker_id]
        if not process.is_alive():
            return
        process.terminate()
        process.join(timeout=self.term_timeout)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=self.term_timeout)

    # --- supervised-run primitives --------------------------------------

    def begin_run(self) -> int:
        """Open a new run epoch and discard any stale queued tasks.

        Results tagged with an older epoch (stragglers from an aborted
        batch) are dropped by :meth:`poll`; draining the task queue here
        keeps surviving workers from wasting time on them.
        """
        self._ensure_started()
        self._run_id += 1
        try:
            while True:
                self._tasks.get_nowait()
        except queue.Empty:
            pass
        return self._run_id

    def submit(
        self, run_id: int, index: int, fn: Callable[[Any], Any], payload: Any
    ) -> None:
        """Enqueue one task for the given run epoch."""
        self._tasks.put((run_id, index, fn, payload))

    def poll(self, timeout: float) -> tuple[int, int, bool, Any] | None:
        """One ``(index, worker_id, ok, out)`` result, or ``None`` on timeout.

        Results from earlier run epochs are silently discarded (their
        shard data is idempotent and already abandoned).
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                run_id, index, worker_id, ok, out = self._results.get(
                    timeout=remaining
                )
            except queue.Empty:
                return None
            if run_id == self._run_id:
                return (index, worker_id, ok, out)

    def dead_workers(self) -> list[tuple[int, int, int | None]]:
        """``(worker_id, exitcode, claimed_task)`` for every dead worker.

        ``claimed_task`` is the task index the worker held when it died
        (this run epoch only), or ``None`` if it died idle — the tiny
        window between dequeuing a task and claiming it also reads as
        idle, which the supervisor covers with its lost-task backstop.
        """
        found = []
        for worker_id, process in enumerate(self._processes):
            if process.exitcode is None:
                continue
            claimed: int | None = None
            if (
                self._claim_runs[worker_id] == self._run_id
                and self._claim_tasks[worker_id] != _IDLE
            ):
                claimed = int(self._claim_tasks[worker_id])
            found.append((worker_id, int(process.exitcode), claimed))
        return found

    def claimed_task(self, worker_id: int) -> int | None:
        """The task index this worker currently claims (this run), if any."""
        if not self._processes or self._processes[worker_id].exitcode is not None:
            return None
        if (
            self._claim_runs[worker_id] == self._run_id
            and self._claim_tasks[worker_id] != _IDLE
        ):
            return int(self._claim_tasks[worker_id])
        return None

    def heartbeat_age(self, worker_id: int) -> float:
        """Seconds since this worker last stamped its heartbeat.

        The heartbeat advances at task boundaries only, so for a worker
        holding a claim this is (slightly more than) the current task's
        age — the signal the shard-deadline watch runs on.
        """
        return time.monotonic() - self._heartbeats[worker_id]

    # --- plain fail-fast mapping ----------------------------------------

    def run(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
    ) -> list[tuple[int, Any]]:
        """Map ``fn`` over ``payloads`` on the workers.

        Returns one ``(worker_id, result)`` pair per payload, in payload
        order.  The first failed task re-raises in the parent (original
        exception type when picklable, :class:`WorkerError` otherwise) —
        after all in-flight results have been collected, so the queues
        stay consistent for the next :meth:`run`.  A worker process found
        dead with tasks outstanding raises :class:`WorkerError`
        immediately: the missing results can never arrive, so waiting for
        them would deadlock the parent.
        """
        if not payloads:
            return []
        run_id = self.begin_run()
        for index, payload in enumerate(payloads):
            self.submit(run_id, index, fn, payload)
        outcomes: list[tuple[int, Any] | None] = [None] * len(payloads)
        pending = len(payloads)
        failure: tuple[int, int, Any] | None = None
        while pending:
            item = self.poll(self.poll_seconds)
            if item is None:
                dead = self.dead_workers()
                if dead:
                    worker_id, exitcode, claimed = dead[0]
                    raise WorkerError(
                        f"worker {worker_id} died (exit code {exitcode}) "
                        f"with {pending} task(s) outstanding"
                        + (
                            f" while running task {claimed}"
                            if claimed is not None
                            else ""
                        ),
                        worker=worker_id,
                        shard=claimed if claimed is not None else -1,
                        original=f"exit code {exitcode}",
                    )
                continue
            index, worker_id, ok, out = item
            if outcomes[index] is not None:
                continue  # duplicate delivery of an idempotent shard
            pending -= 1
            if ok:
                outcomes[index] = (worker_id, out)
            else:
                outcomes[index] = (worker_id, None)
                if failure is None or index < failure[0]:
                    failure = (index, worker_id, out)
        if failure is not None:
            index, worker_id, encoded = failure
            kind, payload = encoded
            if kind == "exc":
                raise payload
            original, trace = payload
            raise WorkerError(
                f"worker {worker_id} failed on task {index}: {original}",
                worker=worker_id,
                shard=index,
                original=trace,
            )
        return [outcome for outcome in outcomes if outcome is not None]

    # --- shutdown --------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down (idempotent).

        Cooperative first — a ``None`` sentinel per worker, then a join
        bounded by ``join_timeout`` — escalating per survivor to
        ``terminate()`` and, should a worker outlive even SIGTERM (masked
        signals, stuck in uninterruptible I/O), to ``kill()``.  Both
        timeouts come from the owning
        :class:`~repro.parallel.policy.ExecutionPolicy` when the pool is
        runner-managed.
        """
        if self._closed:
            return
        self._closed = True
        if self._processes:
            for _ in self._processes:
                self._tasks.put(None)
            for process in self._processes:
                process.join(timeout=self.join_timeout)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=self.term_timeout)
                if process.is_alive():  # pragma: no cover - SIGTERM masked
                    process.kill()
                    process.join(timeout=self.term_timeout)
            self._processes.clear()
            for q in (self._tasks, self._results):
                q.close()
                # The feeder thread may still hold buffered sentinels for
                # workers that already exited; never block shutdown on it.
                q.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
