"""EvaluationCache: LRU mechanics, caller-cache routing, and guard purity."""

import numpy as np
import pytest

from repro.analysis import ActScenario
from repro.core.errors import ParameterError
from repro.engine.batch import ScenarioBatch
from repro.engine.cache import (
    DEFAULT_CACHE,
    EvaluationCache,
    batch_key,
    evaluate_cached,
    scenario_key,
)
from repro.robustness import SKIP, GuardedEngine, RobustnessWarning

BASE = ActScenario()


def batch_of(energy):
    return ScenarioBatch.from_columns(
        BASE, len(energy), {"energy_kwh": np.asarray(energy, dtype=np.float64)}
    )


class TestBatchKey:
    def test_equal_content_hashes_identically_across_constructors(self):
        a = ScenarioBatch.from_product(BASE, {"energy_kwh": [1.0, 2.0]})
        b = ScenarioBatch.from_scenarios(
            [BASE.replace(energy_kwh=1.0), BASE.replace(energy_kwh=2.0)]
        )
        assert batch_key(a) == batch_key(b)

    def test_different_content_hashes_differently(self):
        assert batch_key(batch_of([1.0, 2.0])) != batch_key(batch_of([1.0, 3.0]))


class TestLru:
    def test_eviction_order_is_least_recently_used(self):
        cache = EvaluationCache(capacity=2)
        a, b, c = batch_of([1.0]), batch_of([2.0]), batch_of([3.0])
        cache.evaluate(a)
        cache.evaluate(b)
        cache.evaluate(c)  # evicts a
        assert len(cache) == 2
        cache.evaluate(b)
        assert cache.hits == 1
        cache.evaluate(a)  # was evicted: a miss again
        assert cache.misses == 4

    def test_hit_moves_entry_to_most_recent(self):
        cache = EvaluationCache(capacity=2)
        a, b, c = batch_of([1.0]), batch_of([2.0]), batch_of([3.0])
        cache.evaluate(a)
        cache.evaluate(b)
        cache.evaluate(a)  # refresh a; b becomes least recent
        cache.evaluate(c)  # evicts b, not a
        cache.evaluate(a)
        assert cache.hits == 2
        cache.evaluate(b)
        assert cache.misses == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ParameterError):
            EvaluationCache(capacity=0)

    def test_clear_resets_store_and_counters(self):
        cache = EvaluationCache()
        cache.evaluate(batch_of([1.0]))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
        assert cache.hit_rate == 0.0

    def test_hit_rate(self):
        cache = EvaluationCache()
        a = batch_of([1.0])
        cache.evaluate(a)
        cache.evaluate(a)
        assert cache.hit_rate == pytest.approx(0.5)


class TestCallerCacheRouting:
    def test_empty_caller_cache_is_used_not_default(self):
        """Regression: an empty EvaluationCache is falsy (len() == 0), so a
        truthiness check would silently reroute to the process-wide default
        cache.  The explicitly-passed cache must take the traffic."""
        cache = EvaluationCache()
        assert not cache  # the trap: empty caches are falsy
        default_before = (DEFAULT_CACHE.hits, DEFAULT_CACHE.misses)
        batch = batch_of([4.0, 5.0])
        evaluate_cached(batch, cache)
        evaluate_cached(batch, cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert (DEFAULT_CACHE.hits, DEFAULT_CACHE.misses) == default_before

    def test_none_routes_to_default_cache(self):
        before = DEFAULT_CACHE.hits + DEFAULT_CACHE.misses
        evaluate_cached(batch_of([6.0]))
        assert DEFAULT_CACHE.hits + DEFAULT_CACHE.misses == before + 1


class TestGuardCachePurity:
    def test_masked_batches_do_not_poison_cache_keys(self):
        """The skip policy compacts valid rows *before* evaluation, so the
        cached entry is keyed by clean content only — a later evaluation of
        that same clean content must hit, and the cache must never have
        seen the corrupted full-length columns."""
        cache = EvaluationCache()
        engine = GuardedEngine(policy=SKIP, cache=cache)
        bad = np.array([1.0, np.nan, 3.0, np.inf])
        with pytest.warns(RobustnessWarning):
            guarded = engine.evaluate_columns(
                BASE, 4, {"energy_kwh": np.array(bad)}
            )
        assert (cache.hits, cache.misses) == (0, 1)
        # The one cached entry is exactly the compacted, clean batch.
        clean = batch_of([1.0, 3.0])
        evaluate_cached(clean, cache)
        assert cache.hits == 1
        assert batch_key(guarded.batch) == batch_key(clean)

    def test_repeated_guarded_evaluation_hits_cache(self):
        cache = EvaluationCache()
        engine = GuardedEngine(policy=SKIP, cache=cache)
        columns = {"energy_kwh": np.array([1.0, np.nan, 3.0])}
        for _ in range(2):
            with pytest.warns(RobustnessWarning):
                engine.evaluate_columns(
                    BASE, 3, {k: np.array(v) for k, v in columns.items()}
                )
        assert (cache.hits, cache.misses) == (1, 1)


class TestThreadSafety:
    def test_concurrent_mixed_access_is_consistent(self):
        """Many threads hammering evaluate/peek/put/stats on a small cache
        must never corrupt the store: every returned result is correct for
        its batch, counters balance, and size respects capacity."""
        import threading

        cache = EvaluationCache(capacity=8)
        batches = [batch_of([float(i + 1), float(i + 2)]) for i in range(16)]
        expected = [evaluate_cached(b, EvaluationCache()) for b in batches]
        failures = []

        def worker(offset):
            for step in range(120):
                index = (offset + step) % len(batches)
                result = cache.evaluate(batches[index])
                if not np.array_equal(
                    result.total_g, expected[index].total_g
                ):
                    failures.append(index)
                cache.peek(batches[(index + 1) % len(batches)])
                cache.put(batches[index], expected[index])
                cache.stats()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        stats = cache.stats()
        assert stats.size <= cache.capacity
        assert stats.hits + stats.misses == 8 * 120 * 2  # evaluate + peek

    def test_put_rejects_row_count_mismatch(self):
        cache = EvaluationCache()
        two = batch_of([1.0, 2.0])
        three = batch_of([1.0, 2.0, 3.0])
        result = evaluate_cached(three, EvaluationCache())
        with pytest.raises(ParameterError, match="rows"):
            cache.put(two, result)

    def test_peek_never_computes(self):
        cache = EvaluationCache()
        batch = batch_of([4.0])
        assert cache.peek(batch) is None
        assert cache.stats().misses == 1
        evaluate_cached(batch, cache)
        assert cache.peek(batch) is not None


class TestScenarioKey:
    def test_matches_single_row_batch_key(self):
        """The scalar fast path must hash exactly like the one-row batch,
        or the service's per-query entries stop interoperating with
        batch-level ones."""
        scenarios = [
            BASE,
            BASE.replace(energy_kwh=123.456),
            BASE.replace(lifetime_hours=1.0, dram_gb=0.125),
        ]
        for scenario in scenarios:
            assert scenario_key(scenario) == batch_key(
                ScenarioBatch.from_scenarios((scenario,))
            )

    def test_distinct_scenarios_hash_differently(self):
        assert scenario_key(BASE) != scenario_key(
            BASE.replace(energy_kwh=BASE.energy_kwh + 1e-9)
        )

    def test_key_level_entries_interoperate_with_batch_level(self):
        """A row stored via put_by_key is served to a peek of the
        equivalent one-row batch, and vice versa."""
        cache = EvaluationCache()
        scenario = BASE.replace(energy_kwh=7.5)
        one_row = ScenarioBatch.from_scenarios((scenario,))
        result = evaluate_cached(one_row, cache)
        assert cache.peek_by_key(scenario_key(scenario), 1) is result

    def test_put_many_is_equivalent_to_individual_puts(self):
        cache = EvaluationCache(capacity=2)
        batch = batch_of([1.0])
        result = evaluate_cached(batch, EvaluationCache())
        cache.put_many_by_key([("a", result), ("b", result), ("c", result)])
        assert cache.peek_by_key("a") is None  # evicted (capacity 2)
        assert cache.peek_by_key("b") is result
        assert cache.peek_by_key("c") is result
        assert cache.stats().evictions == 1
