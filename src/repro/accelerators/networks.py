"""A small CNN library for network-dependent accelerator studies.

The Figure 12/13 case study fixes one reference vision model (~3.9 GMACs
per frame).  Real deployments pick the accelerator for a *set* of
networks; this module carries a few representative CNNs and re-derives the
QoS-minimal NVDLA configuration per network — showing how the lean design
point slides with the compute intensity of the workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerators import perf_model
from repro.accelerators.nvdla import MAC_SWEEP, NpuDesign, design
from repro.core.errors import ParameterError, UnknownEntryError
from repro.core.parameters import require_positive


@dataclass(frozen=True)
class Network:
    """One inference workload.

    Attributes:
        name: Canonical identifier.
        gmacs_per_inference: MAC operations per frame, in billions.
        description: What the network is.
    """

    name: str
    gmacs_per_inference: float
    description: str


NETWORKS: dict[str, Network] = {
    network.name: network
    for network in (
        Network("mobilenet_v2", 0.3, "lightweight mobile classifier"),
        Network("resnet18", 1.8, "compact residual classifier"),
        Network("resnet50", 3.9, "the paper's reference-class workload"),
        Network("yolo_tiny", 5.5, "real-time detector"),
        Network("vgg16", 15.5, "legacy heavyweight classifier"),
    )
}


def network(name: str) -> Network:
    """Look up a bundled network by name."""
    key = name.strip().lower().replace("-", "_")
    try:
        return NETWORKS[key]
    except KeyError:
        raise UnknownEntryError("network", name, NETWORKS) from None


def throughput_fps(n_macs: int, net: Network) -> float:
    """Pipelined throughput of an ``n_macs`` array on ``net``.

    Scales the calibrated reference model by the per-frame work ratio.
    """
    require_positive("n_macs", n_macs)
    scale = perf_model.WORK_MACS_PER_INFERENCE / (net.gmacs_per_inference * 1e9)
    return perf_model.throughput_fps(n_macs) * scale


def qos_minimal_design_for(
    net: Network,
    target_fps: float = 30.0,
    node: str | float = 16,
    macs: tuple[int, ...] = MAC_SWEEP,
) -> NpuDesign:
    """The lowest-embodied sweep configuration meeting QoS on ``net``."""
    require_positive("target_fps", target_fps)
    feasible = [
        design(n, node)
        for n in macs
        if throughput_fps(n, net) >= target_fps
    ]
    if not feasible:
        raise ParameterError(
            f"no configuration in {macs} reaches {target_fps} FPS on "
            f"{net.name} ({net.gmacs_per_inference} GMACs/frame)"
        )
    return min(feasible, key=lambda d: d.embodied_g)


def qos_table(
    target_fps: float = 30.0, node: str | float = 16
) -> tuple[tuple[Network, NpuDesign], ...]:
    """QoS-minimal configuration for every bundled network.

    The Reduce-tenet message generalized: the leaner the workload, the
    leaner (and lower-carbon) the right accelerator.
    """
    rows = []
    for net in NETWORKS.values():
        rows.append((net, qos_minimal_design_for(net, target_fps, node)))
    return tuple(rows)
