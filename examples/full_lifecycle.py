#!/usr/bin/env python3
"""Closing the loop: a device's full four-phase life cycle, bottom-up.

Figure 3 splits hardware life cycles into manufacturing, transport, use,
and end-of-life.  The paper's Figure 1 reads those shares off Apple's
product reports; this walkthrough *derives* them instead:

* manufacturing from the iPhone-11-class bill of ICs (the Figure 4 model),
* use from a behavioural usage profile (screen-on mix, standby, charging
  losses),
* transport from a freight route, and
* end-of-life from processing-minus-recovery,

then compares the derived shares against the published ones, and finishes
with a co-located-workload attribution example (who owns the embodied
carbon of shared hardware?).

Run:  python examples/full_lifecycle.py
"""

from repro.analysis.attribution import (
    TIME,
    TIME_GROSSED_UP,
    WorkloadUsage,
    attribute,
    unattributed_embodied_g,
)
from repro.core.lifecycle import device_lifecycle
from repro.data.devices import device_report, iphone11_platform
from repro.data.regions import region_ci
from repro.reporting.tables import ascii_table
from repro.workloads.usage import (
    heavy_gamer_profile,
    light_user_profile,
    typical_smartphone_profile,
)


def main() -> None:
    platform = iphone11_platform()
    profile = typical_smartphone_profile()
    ci = region_ci("united_states")

    # --- 1. Behaviour -> energy ------------------------------------------------
    print(f"Usage profile '{profile.name}': "
          f"{profile.active_hours_per_day:.1f} active h/day, "
          f"{profile.wall_energy_kwh_per_year():.1f} kWh/year from the wall")
    print()

    # --- 2. The four phases, bottom-up ------------------------------------------
    report = device_lifecycle(
        platform,
        mass_kg=0.5,
        average_power_w=profile.average_active_power_w(),
        utilization=profile.utilization,
        ci_use_g_per_kwh=ci,
        lifetime_years=3.0,
        charging_efficiency=profile.charging_efficiency,
    )
    published = device_report("iphone11")
    rows = [
        ("manufacturing (ICs)", report.manufacturing_g / 1000.0,
         report.shares()["manufacturing"], published.manufacturing_share),
        ("transport", report.transport_g / 1000.0,
         report.shares()["transport"],
         published.transport_share),
        ("use", report.use_g / 1000.0, report.shares()["use"],
         published.use_share),
        ("end-of-life", report.eol.net_g / 1000.0, report.shares()["eol"],
         published.eol_share),
    ]
    print("Derived life cycle vs the published report "
          "(shares; our manufacturing covers ICs only):")
    print(
        ascii_table(
            ("phase", "kg CO2e", "derived share", "published share"),
            rows,
            float_format=".2f",
        )
    )
    print(f"Derived total: {report.total_kg:.1f} kg; "
          f"manufacturing-dominated: {report.manufacturing_dominated}")
    print()

    # --- 3. Behaviour sensitivity -------------------------------------------------
    print("Use-phase emissions across behaviours (3-year life, US grid):")
    for p in (light_user_profile(), typical_smartphone_profile(),
              heavy_gamer_profile()):
        annual = p.annual_operational_g(ci) / 1000.0
        print(f"  {p.name:20s} {annual:5.2f} kg/year "
              f"({p.wall_energy_kwh_per_year():.1f} kWh/year)")
    print()

    # --- 4. Attribution of shared hardware ------------------------------------------
    print("Attributing one day of a shared edge server "
          "(embodied 250 kg, 4-year life):")
    usages = (
        WorkloadUsage("inference service", busy_hours=10.0, energy_kwh=3.0),
        WorkloadUsage("nightly training", busy_hours=6.0, energy_kwh=4.5),
    )
    kwargs = dict(
        embodied_g=250_000.0, period_hours=24.0,
        ci_use_g_per_kwh=ci, lifetime_hours=4 * 8760.0,
    )
    for policy in (TIME, TIME_GROSSED_UP):
        results = attribute(usages, policy=policy, **kwargs)
        parts = ", ".join(
            f"{r.name}: {r.total_g:.0f} g" for r in results
        )
        print(f"  policy={policy:16s} {parts}")
    idle = unattributed_embodied_g(
        usages, embodied_g=250_000.0, period_hours=24.0,
        lifetime_hours=4 * 8760.0,
    )
    print(f"  idle embodied carbon nobody claims under 'time': {idle:.0f} g/day")
    print("  -> consolidation (the Reuse tenet) is about driving that to zero.")


if __name__ == "__main__":
    main()
