"""Declarative platform configuration (JSON → Platform)."""

import json

import pytest

from repro.core.errors import ParameterError, UnknownEntryError
from repro.io.config import (
    component_from_spec,
    load_platform,
    platform_from_dict,
    platform_from_json,
)

VALID_CONFIG = {
    "name": "cfg phone",
    "packaging_g_per_ic": 150,
    "components": [
        {"type": "logic", "name": "SoC", "area_mm2": 98.5, "node": "7"},
        {"type": "dram", "name": "DRAM", "capacity_gb": 4,
         "technology": "lpddr4"},
        {"type": "ssd", "name": "NAND", "capacity_gb": 64,
         "technology": "nand_v3_tlc"},
        {"type": "hdd", "name": "disk", "capacity_gb": 1000,
         "model": "barracuda"},
        {"type": "fixed", "name": "battery", "carbon_g": 5000},
    ],
}


class TestPlatformFromDict:
    def test_valid_config_builds(self):
        platform = platform_from_dict(VALID_CONFIG)
        assert platform.name == "cfg phone"
        assert len(platform.components) == 5
        assert platform.embodied_kg() > 0

    def test_matches_programmatic_equivalent(self):
        from repro.core.components import LogicComponent

        platform = platform_from_dict(
            {"components": [
                {"type": "logic", "name": "SoC", "area_mm2": 100, "node": "7"}
            ]}
        )
        manual = LogicComponent.at_node("SoC", 100, "7")
        assert platform.components[0].embodied_g() == pytest.approx(
            manual.embodied_g()
        )

    def test_logic_options(self):
        spec = {
            "type": "logic", "name": "die", "area_mm2": 50, "node": "28",
            "energy_mix": "solar", "abatement": 0.99, "fab_yield": 0.9,
            "category": "other", "ics": 2,
        }
        component = component_from_spec(spec)
        assert component.category == "other"
        assert component.ic_count == 2
        assert component.fab.energy_mix.name == "solar"
        assert component.fab.params_for_area(0.5).fab_yield == 0.9

    def test_soc_alias_for_logic(self):
        component = component_from_spec(
            {"type": "soc", "name": "x", "area_mm2": 10, "node": "7"}
        )
        assert component.category == "soc"

    def test_missing_required_field(self):
        with pytest.raises(ParameterError, match="missing fields"):
            component_from_spec({"type": "logic", "name": "x", "node": "7"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ParameterError, match="unknown fields"):
            component_from_spec(
                {"type": "dram", "name": "x", "capacity_gb": 4, "nodee": "7"}
            )

    def test_unknown_component_type(self):
        with pytest.raises(UnknownEntryError):
            component_from_spec({"type": "gpu", "name": "x"})

    def test_missing_type(self):
        with pytest.raises(ParameterError, match="missing 'type'"):
            component_from_spec({"name": "x"})

    def test_unknown_platform_field(self):
        with pytest.raises(ParameterError, match="unknown fields"):
            platform_from_dict({"components": [], "vendor": "acme"})

    def test_components_must_be_list(self):
        with pytest.raises(ParameterError, match="'components' list"):
            platform_from_dict({"components": "none"})


class TestJsonAndFiles:
    def test_from_json_string(self):
        platform = platform_from_json(json.dumps(VALID_CONFIG))
        assert platform.ic_count == 4  # fixed component contributes 0

    def test_invalid_json(self):
        with pytest.raises(ParameterError, match="invalid platform JSON"):
            platform_from_json("{not json")

    def test_top_level_must_be_object(self):
        with pytest.raises(ParameterError, match="object at the top level"):
            platform_from_json("[1, 2]")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "platform.json"
        path.write_text(json.dumps(VALID_CONFIG))
        platform = load_platform(path)
        assert platform.name == "cfg phone"

    def test_roundtrip_totals_stable(self):
        a = platform_from_json(json.dumps(VALID_CONFIG)).embodied_g()
        b = platform_from_dict(VALID_CONFIG).embodied_g()
        assert a == pytest.approx(b)
