"""SSD endurance lifetime model (Section 8, after Meza et al.).

The paper models storage lifetime as::

    Lifetime (years) = PEC * (1 + PF) / (365 * DWPD * WA * R_compress)

where PEC is the NAND program/erase-cycle endurance, PF the
over-provisioning factor, DWPD full physical disk-writes per day, WA the
write-amplification factor, and R_compress the storage compression rate.
Following the paper we fix PEC, DWPD, and R_compress (values calibrated so
16% over-provisioning sustains one ~2-year mobile life and 34% sustains a
~4-year second life, Figure 15's anchor points) and sweep PF, with WA
derived from PF via :mod:`repro.reliability.write_amplification`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import require_positive
from repro.reliability.write_amplification import write_amplification

#: NAND program/erase-cycle endurance (MLC-class flash).
DEFAULT_PEC = 3000.0

#: Full physical disk writes per day the workload applies.
DEFAULT_DWPD = 1.28

#: Storage compression rate (1.0 = incompressible data).
DEFAULT_COMPRESSION = 1.0

#: The Figure 15 baseline over-provisioning factor.
BASELINE_OVER_PROVISIONING = 0.04

#: One mobile life (~2 years) and a second life (~4 years of total service).
FIRST_LIFE_YEARS = 2.0
SECOND_LIFE_YEARS = 4.0


@dataclass(frozen=True)
class SsdWorkload:
    """The fixed endurance-workload parameters of the lifetime equation."""

    pec: float = DEFAULT_PEC
    dwpd: float = DEFAULT_DWPD
    compression: float = DEFAULT_COMPRESSION

    def __post_init__(self) -> None:
        require_positive("pec", self.pec)
        require_positive("dwpd", self.dwpd)
        require_positive("compression", self.compression)


def lifetime_years(
    over_provisioning: float,
    workload: SsdWorkload = SsdWorkload(),
    wa: float | None = None,
) -> float:
    """Endurance lifetime in years for an over-provisioning factor.

    Args:
        over_provisioning: Spare capacity fraction ``PF``.
        workload: Fixed PEC/DWPD/compression parameters.
        wa: Optional explicit write-amplification factor; derived from
            ``over_provisioning`` by default.
    """
    require_positive("over_provisioning", over_provisioning)
    if wa is None:
        wa = write_amplification(over_provisioning)
    return (
        workload.pec
        * (1.0 + over_provisioning)
        / (365.0 * workload.dwpd * wa * workload.compression)
    )


@dataclass(frozen=True)
class ReliabilityPoint:
    """One x-position of Figure 15 (top): PF, WA, and resulting lifetime."""

    over_provisioning: float
    write_amplification: float
    lifetime_years: float


def reliability_curve(
    over_provisioning_values: tuple[float, ...],
    workload: SsdWorkload = SsdWorkload(),
) -> tuple[ReliabilityPoint, ...]:
    """WA and lifetime across an over-provisioning sweep."""
    points = []
    for pf in over_provisioning_values:
        wa = write_amplification(pf)
        points.append(
            ReliabilityPoint(
                over_provisioning=pf,
                write_amplification=wa,
                lifetime_years=lifetime_years(pf, workload, wa=wa),
            )
        )
    return tuple(points)
