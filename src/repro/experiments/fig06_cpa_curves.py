"""Figure 6: logic embodied-carbon intensity across process nodes.

Regenerates all three panels — EPA (top), the GPA abatement band (middle),
and the CPA band between Taiwan-grid and solar-powered fabs with the
25%-renewable default (bottom) — over the 28 nm → 3 nm node ladder.  The
sweep itself runs on the batched engine: every (node, energy-mix) CPA value
comes from one broadcasted Eq. 5 kernel call.
"""

from __future__ import annotations

from repro.data.fab_nodes import node_names
from repro.experiments.base import ExperimentResult, check_true
from repro.fabs.cpa import cpa_curve_batched
from repro.reporting.figures import FigureData, Series

EXPERIMENT_ID = "fig6"
TITLE = "Embodied carbon intensity of logic across nodes (28nm -> 3nm)"


def run() -> ExperimentResult:
    """Regenerate Figure 6 and check monotonicity/band ordering."""
    points = cpa_curve_batched()
    nodes = tuple(point.node for point in points)

    figures = (
        FigureData(
            title="Figure 6 (top): fab energy per area",
            x_label="process node",
            y_label="kWh / cm^2",
            series=(
                Series("EPA", nodes, tuple(p.epa_kwh_per_cm2 for p in points)),
            ),
        ),
        FigureData(
            title="Figure 6 (middle): gas emissions per area",
            x_label="process node",
            y_label="g CO2 / cm^2",
            series=(
                Series("GPA 95% abated", nodes, tuple(p.gpa95_g_per_cm2 for p in points)),
                Series("GPA 97% abated (TSMC)", nodes, tuple(p.gpa97_g_per_cm2 for p in points)),
                Series("GPA 99% abated", nodes, tuple(p.gpa99_g_per_cm2 for p in points)),
            ),
        ),
        FigureData(
            title="Figure 6 (bottom): carbon per area",
            x_label="process node",
            y_label="g CO2 / cm^2",
            series=(
                Series("Taiwan grid fab", nodes, tuple(p.cpa_taiwan_grid for p in points)),
                Series("25% renewable fab (default)", nodes, tuple(p.cpa_default for p in points)),
                Series("100% solar fab", nodes, tuple(p.cpa_solar for p in points)),
            ),
        ),
    )

    # The ladder of distinct feature sizes (EUV variants share 7 nm's x slot).
    ladder = [p for p in points if "euv" not in p.node]
    epa_rising = all(
        a.epa_kwh_per_cm2 <= b.epa_kwh_per_cm2 for a, b in zip(ladder, ladder[1:])
    )
    gpa_rising = all(
        a.gpa97_g_per_cm2 <= b.gpa97_g_per_cm2 for a, b in zip(ladder, ladder[1:])
    )
    cpa_rising = all(
        a.cpa_default <= b.cpa_default for a, b in zip(ladder, ladder[1:])
    )
    band_ordered = all(
        p.cpa_solar < p.cpa_default < p.cpa_taiwan_grid for p in points
    )
    abatement_ordered = all(
        p.gpa99_g_per_cm2 < p.gpa97_g_per_cm2 < p.gpa95_g_per_cm2 for p in points
    )
    growth = points[-1].cpa_default / points[0].cpa_default

    checks = (
        check_true(
            "EPA rises toward newer nodes (EUV lithography)",
            epa_rising, "monotone" if epa_rising else "non-monotone", "monotone rise",
        ),
        check_true(
            "GPA rises toward newer nodes",
            gpa_rising, "monotone" if gpa_rising else "non-monotone", "monotone rise",
        ),
        check_true(
            "CPA rises toward newer nodes",
            cpa_rising, "monotone" if cpa_rising else "non-monotone", "monotone rise",
        ),
        check_true(
            "solar < 25%-renewable default < Taiwan grid at every node",
            band_ordered, "ordered" if band_ordered else "violated", "band ordering",
        ),
        check_true(
            "99% abatement < 97% < 95% at every node",
            abatement_ordered,
            "ordered" if abatement_ordered else "violated",
            "abatement ordering",
        ),
        check_true(
            "CPA roughly triples from 28nm to 3nm",
            2.0 <= growth <= 4.0,
            f"{growth:.2f}x",
            "~3x (Figure 6 bottom, ~1 -> ~3 kg CO2/cm^2)",
        ),
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=figures,
        reference={
            "nodes": ", ".join(node_names()),
            "shape": "EPA/GPA/CPA all rise toward advanced nodes; fab energy "
            "mix brackets CPA between solar and Taiwan-grid curves",
        },
        checks=checks,
    )
