"""Exception hierarchy for the ACT reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause while still
letting programming errors (TypeError, etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParameterError(ReproError, ValueError):
    """An ACT model parameter is missing, out of range, or inconsistent."""


class UnknownEntryError(ReproError, KeyError):
    """A lookup into one of the bundled data tables failed.

    Carries the requested key and the set of available keys so error
    messages are actionable.
    """

    def __init__(self, kind: str, key: object, available: object = None):
        self.kind = kind
        self.key = key
        self.available = sorted(available) if available else None
        message = f"unknown {kind}: {key!r}"
        if self.available:
            message += f" (available: {', '.join(map(str, self.available))})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its args; keep message plain
        return self.args[0]


class ConstraintError(ReproError, ValueError):
    """A design-space constraint is infeasible or malformed."""


class CalibrationError(ReproError, RuntimeError):
    """A calibrated case-study model failed an internal sanity check."""
