#!/usr/bin/env python3
"""Generate docs/API.md: an index of every public symbol and its summary.

Walks the package's subpackage ``__all__`` lists and renders each symbol's
first docstring line, so the API tour can never drift from the code.

Run:  python tools/generate_api_md.py > docs/API.md
"""

from __future__ import annotations

import importlib
import inspect

SUBPACKAGES = (
    "repro",
    "repro.core",
    "repro.data",
    "repro.fabs",
    "repro.workloads",
    "repro.platforms",
    "repro.accelerators",
    "repro.provisioning",
    "repro.reliability",
    "repro.lifetime",
    "repro.engine",
    "repro.engine.backends",
    "repro.obs",
    "repro.parallel",
    "repro.dse",
    "repro.analysis",
    "repro.robustness",
    "repro.baselines",
    "repro.scheduling",
    "repro.lca",
    "repro.io",
    "repro.reporting",
    "repro.experiments",
    "repro.service",
)

HEADER = """\
# API index

Every public symbol, by subpackage, with its one-line summary.  Generated
from the live docstrings (`python tools/generate_api_md.py > docs/API.md`);
see `docs/MODEL.md` for how the pieces map to the paper's equations.

"""


def _summary(obj: object) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        return "(no docstring)"
    first = doc.strip().splitlines()[0].strip()
    return first


def _kind(obj: object) -> str:
    if inspect.isclass(obj):
        return "class"
    if inspect.isfunction(obj):
        return "function"
    if inspect.ismodule(obj):
        return "module"
    return "constant"


def main() -> None:
    lines = [HEADER]
    for name in SUBPACKAGES:
        module = importlib.import_module(name)
        lines.append(f"## `{name}`\n")
        module_doc = _summary(module)
        lines.append(f"{module_doc}\n")
        exported = getattr(module, "__all__", ())
        if not exported:
            lines.append("_(no `__all__`; see module source)_\n")
            continue
        lines.append("| symbol | kind | summary |")
        lines.append("| --- | --- | --- |")
        for symbol in exported:
            obj = getattr(module, symbol)
            kind = _kind(obj)
            summary = _summary(obj) if kind != "constant" else "data"
            summary = summary.replace("|", "\\|")
            lines.append(f"| `{symbol}` | {kind} | {summary} |")
        lines.append("")
    print("\n".join(lines))


if __name__ == "__main__":
    main()
