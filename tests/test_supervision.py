"""Fault-tolerant parallel execution: liveness, retry, and degradation.

Process-level chaos (SIGKILL a worker mid-shard, stall it past its
deadline, drop its result message, corrupt its shared-memory handle) is
injected through :class:`~repro.robustness.faultinject.ProcessFaultPlan`
and every recovery path is asserted against the determinism contract: a
retried shard re-derives the same rows from the same SeedSequence child
stream, so recovery is **bit-identical** to the unfaulted run — never
merely "close".
"""

import os
import signal
import time
import warnings

import numpy as np
import pytest

from repro.analysis.montecarlo import run_monte_carlo
from repro.analysis.scenario import ActScenario
from repro.core.errors import (
    ParameterError,
    ShardFailedError,
    ValidationError,
    WorkerError,
)
from repro.obs.context import RunContext, use_context
from repro.parallel import (
    DEGRADE,
    FAIL_FAST,
    RETRY,
    ExecutionPolicy,
    ParallelRunner,
    PartialResult,
    SharedArrayStore,
    WorkerPool,
)
from repro.robustness.checkpoint import run_monte_carlo_chunked
from repro.robustness.faultinject import (
    CORRUPT_SHM_NAME,
    PROCESS_FAULTS,
    ProcessFault,
    ProcessFaultPlan,
    ResultDropped,
    apply_process_faults,
)
from repro.robustness.guard import QUARANTINED, GuardedEngine, RobustnessWarning

BASE = ActScenario()

#: A fast supervised policy for tests: tiny backoff, prompt liveness.
def fast_policy(**overrides):
    defaults = dict(
        workers=2,
        shard_rows=128,
        failure_policy=RETRY,
        max_retries=2,
        backoff_seconds=0.01,
    )
    defaults.update(overrides)
    return ExecutionPolicy(**defaults)


def reference_samples(draws=600, seed=7, shard_rows=128):
    """The unfaulted serial run every recovery must match bit-for-bit."""
    with ParallelRunner(
        ExecutionPolicy(workers=1, shard_rows=shard_rows)
    ) as runner:
        return runner.run_monte_carlo(BASE, draws=draws, seed=seed)


# --- module-level worker functions (pickled by reference) -----------------


def _echo(payload):
    return payload


def _die_if_marked(payload):
    if payload == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return payload


def _ignore_sigterm_and_sleep(payload):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(30.0)
    return payload


def _attach_and_die(handle):
    """Die between shm attach and detach — the leak-prone window."""
    store = SharedArrayStore.attach(handle)
    store.array("data")  # hold a live view into the mapping
    os.kill(os.getpid(), signal.SIGKILL)


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# --- satellite 1: the parent-hang bug ------------------------------------


class TestPoolLiveness:
    def test_dead_worker_raises_worker_error_not_deadlock(self):
        """A worker SIGKILLed mid-task must surface as WorkerError fast."""
        with WorkerPool(1) as pool:
            started = time.monotonic()
            with pytest.raises(WorkerError, match="died.*outstanding"):
                pool.run(_die_if_marked, ["die"])
            assert time.monotonic() - started < 10.0

    def test_todays_blocking_get_would_hang(self):
        """Demonstrate the bug the liveness loop fixes: after the kill,
        the result queue never yields — a bare ``_results.get()`` (the
        pre-supervision implementation) would have blocked forever."""
        pool = WorkerPool(1)
        try:
            run_id = pool.begin_run()
            pool.submit(run_id, 0, _die_if_marked, "die")
            deadline = time.monotonic() + 10.0
            while not pool.dead_workers() and time.monotonic() < deadline:
                time.sleep(0.01)
            dead = pool.dead_workers()
            assert dead, "worker should have died"
            # The task is outstanding, its worker is a corpse, and no
            # result will ever arrive: blocking would hang the parent.
            assert pool.poll(1.0) is None
            worker_id, exitcode, claimed = dead[0]
            assert exitcode == -signal.SIGKILL
            assert claimed == 0
        finally:
            pool.close()

    def test_pool_reusable_after_worker_death(self):
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerError):
                pool.run(_die_if_marked, ["ok-1", "die", "ok-2"])
            outcomes = pool.run(_echo, ["a", "b", "c"])
            assert [result for _, result in outcomes] == ["a", "b", "c"]
            assert pool.respawns >= 1


# --- satellite 2: close() hardening ---------------------------------------


class TestCloseEscalation:
    def test_close_escalates_terminate_to_kill(self):
        """A worker masking SIGTERM must still die — via kill() — within
        the policy-provided timeouts, not the historical hardcoded 15s."""
        pool = WorkerPool(1, join_timeout=0.2, term_timeout=0.3)
        run_id = pool.begin_run()
        pool.submit(run_id, 0, _ignore_sigterm_and_sleep, None)
        deadline = time.monotonic() + 5.0
        while pool.claimed_task(0) is None and time.monotonic() < deadline:
            time.sleep(0.01)
        started = time.monotonic()
        pool.close()
        assert time.monotonic() - started < 5.0

    def test_policy_timeouts_reach_the_pool(self):
        policy = fast_policy(
            join_timeout_seconds=0.25, term_timeout_seconds=0.125
        )
        runner = ParallelRunner(policy)
        runner.run_monte_carlo(BASE, draws=300, seed=1)
        assert runner._pool.join_timeout == 0.25
        assert runner._pool.term_timeout == 0.125
        runner.close()

    def test_policy_timeout_validation(self):
        with pytest.raises(ParameterError):
            ExecutionPolicy(join_timeout_seconds=0.0)
        with pytest.raises(ParameterError):
            ExecutionPolicy(term_timeout_seconds=-1.0)


# --- process-fault plans ---------------------------------------------------


class TestProcessFaultPlan:
    def test_token_budget_is_exact(self, tmp_path):
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("kill", shard=1, times=2)]
        )
        assert plan.remaining(0) == 2
        spec = plan.spec()
        task = {}
        # drop_result fires at finish, kill at start; consume via a safe
        # kind by checking token files directly.
        for token in spec["faults"][0]["tokens"]:
            os.remove(token)
        assert plan.remaining(0) == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError, match="unknown process fault"):
            ProcessFault("segfault")
        with pytest.raises(ParameterError, match="at least once"):
            ProcessFault("kill", times=0)

    def test_spec_is_picklable_and_complete(self, tmp_path):
        import pickle

        plan = ProcessFaultPlan.create(
            tmp_path,
            [ProcessFault(kind, shard=0) for kind in PROCESS_FAULTS],
        )
        spec = pickle.loads(pickle.dumps(plan.spec()))
        assert [fault["kind"] for fault in spec["faults"]] == list(
            PROCESS_FAULTS
        )

    def test_corrupt_shm_dangles_the_handle(self, tmp_path):
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("corrupt_shm", shard=3)]
        )
        task = {"input": ("shm", ("real_segment", ())), "output": ("pickle",)}
        apply_process_faults(plan.spec(), 3, task, "start")
        assert task["input"][1][0] == CORRUPT_SHM_NAME
        # budget spent: a second firing is a no-op
        task2 = {"input": ("shm", ("real_segment", ()))}
        apply_process_faults(plan.spec(), 3, task2, "start")
        assert task2["input"][1][0] == "real_segment"

    def test_drop_result_raises_at_finish_only(self, tmp_path):
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("drop_result", shard=0)]
        )
        apply_process_faults(plan.spec(), 0, {}, "start")  # no-op
        assert plan.remaining(0) == 1
        with pytest.raises(ResultDropped):
            apply_process_faults(plan.spec(), 0, {}, "finish")

    def test_result_dropped_bypasses_except_exception(self):
        assert ResultDropped("x").repro_dropped_result is True
        assert not isinstance(ResultDropped("x"), Exception)
        assert isinstance(ResultDropped("x"), BaseException)


# --- tentpole: recovery paths, each bit-identical --------------------------


class TestRetryRecovery:
    def test_sigkill_mid_run_recovers_bit_identically(self, tmp_path):
        reference = reference_samples()
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("kill", shard=1, times=1)]
        )
        with ParallelRunner(fast_policy(), fault_plan=plan) as runner:
            out = runner.run_monte_carlo(BASE, draws=600, seed=7)
        assert plan.remaining(0) == 0, "the kill must actually have fired"
        np.testing.assert_array_equal(
            reference.series["total_g"], out.series["total_g"]
        )
        assert out.partial is None
        assert out.supervision.retries >= 1
        assert out.supervision.respawns >= 1
        causes = {failure.cause for failure in out.supervision.failures}
        assert "worker-death" in causes

    def test_stalled_shard_hits_deadline_and_recovers(self, tmp_path):
        reference = reference_samples()
        plan = ProcessFaultPlan.create(
            tmp_path,
            [ProcessFault("stall", shard=1, times=1, stall_seconds=30.0)],
        )
        policy = fast_policy(shard_deadline_seconds=0.4)
        with ParallelRunner(policy, fault_plan=plan) as runner:
            out = runner.run_monte_carlo(BASE, draws=600, seed=7)
        np.testing.assert_array_equal(
            reference.series["total_g"], out.series["total_g"]
        )
        causes = {failure.cause for failure in out.supervision.failures}
        assert "deadline" in causes
        assert out.supervision.respawns >= 1

    def test_corrupt_shm_handle_is_retried(self, tmp_path):
        reference = reference_samples()
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("corrupt_shm", shard=0, times=1)]
        )
        with ParallelRunner(fast_policy(), fault_plan=plan) as runner:
            out = runner.run_monte_carlo(BASE, draws=600, seed=7)
        np.testing.assert_array_equal(
            reference.series["total_g"], out.series["total_g"]
        )
        assert out.supervision.retries >= 1
        assert any(
            "FileNotFoundError" in failure.detail
            for failure in out.supervision.failures
        )

    def test_dropped_result_is_resubmitted(self, tmp_path):
        reference = reference_samples()
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("drop_result", shard=1, times=1)]
        )
        with ParallelRunner(fast_policy(), fault_plan=plan) as runner:
            out = runner.run_monte_carlo(BASE, draws=600, seed=7)
        assert plan.remaining(0) == 0
        np.testing.assert_array_equal(
            reference.series["total_g"], out.series["total_g"]
        )
        assert out.partial is None

    def test_model_errors_are_never_retried(self, tmp_path):
        """A strict-guard ValidationError is deterministic: the supervisor
        must re-raise it immediately instead of burning the retry budget
        re-failing identically."""
        context = RunContext.create(describe_git=False)
        guard = GuardedEngine(policy="strict")
        columns = {"energy_kwh": np.full(600, np.nan)}
        with use_context(context):
            with ParallelRunner(fast_policy()) as runner:
                with pytest.raises(ValidationError):
                    runner.evaluate_columns(BASE, 600, columns, guard=guard)
        assert context.sink.of_type("shard_retry") == []

    def test_exhausted_budget_raises_shard_failed(self, tmp_path):
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("kill", shard=1, times=10)]
        )
        policy = fast_policy(max_retries=1)
        with ParallelRunner(policy, fault_plan=plan) as runner:
            with pytest.raises(ShardFailedError) as info:
                runner.run_monte_carlo(BASE, draws=600, seed=7)
        assert info.value.shard == 1
        assert info.value.attempts == 2  # first try + max_retries
        assert info.value.cause == "worker-death"


class TestDegradeRecovery:
    def test_quarantine_names_exactly_the_dead_shard(self, tmp_path):
        reference = reference_samples()
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("kill", shard=2, times=5)]
        )
        policy = fast_policy(failure_policy=DEGRADE, max_retries=2)
        with pytest.warns(RobustnessWarning, match="quarantined"):
            with ParallelRunner(policy, fault_plan=plan) as runner:
                out = runner.run_monte_carlo(BASE, draws=600, seed=7)
        assert isinstance(out.partial, PartialResult)
        assert out.partial.quarantined == (2,)
        assert out.partial.ranges == ((256, 384),)
        assert out.partial.causes() == {2: "worker-death"}
        # Quarantined rows are flagged, never silently zero or stale.
        assert np.isnan(out.series["total_g"][256:384]).all()
        assert not out.valid[256:384].any()
        assert any(d.reason == QUARANTINED for d in out.diagnostics)
        # Every surviving row is bit-identical to the unfaulted run.
        survivors = np.r_[0:256, 384:600]
        np.testing.assert_array_equal(
            reference.series["total_g"][survivors],
            out.series["total_g"][survivors],
        )
        assert len(out.samples()) == 600 - 128

    def test_degraded_monte_carlo_result_carries_partial(self, tmp_path):
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("kill", shard=0, times=5)]
        )
        # run_monte_carlo builds its own runner; arm chaos via a manual
        # runner to keep the public API surface unchanged.
        policy = fast_policy(failure_policy=DEGRADE, max_retries=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RobustnessWarning)
            with ParallelRunner(policy, fault_plan=plan) as runner:
                evaluation = runner.run_monte_carlo(BASE, draws=600, seed=7)
        assert evaluation.partial.rows == 128
        assert evaluation.supervision.quarantined == (0,)

    def test_serial_fallback_heals_fleet_only_faults(self, tmp_path):
        """With serial_fallback, a shard that keeps dying in workers gets
        one clean in-process attempt — chaos stripped — and the run ends
        complete, not partial."""
        reference = reference_samples()
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("kill", shard=1, times=10)]
        )
        policy = fast_policy(
            failure_policy=DEGRADE, max_retries=1, serial_fallback=True
        )
        with ParallelRunner(policy, fault_plan=plan) as runner:
            out = runner.run_monte_carlo(BASE, draws=600, seed=7)
        assert out.partial is None
        np.testing.assert_array_equal(
            reference.series["total_g"], out.series["total_g"]
        )

    def test_workers_1_degrade_quarantines_in_process(self, tmp_path):
        """The serial reference path honors the same failure policy: an
        in-process infrastructure fault (dangling shm handle) is retried
        and then quarantined without any pool existing."""
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("corrupt_shm", shard=1, times=3)]
        )
        policy = fast_policy(
            workers=1, failure_policy=DEGRADE, max_retries=1
        )
        with pytest.warns(RobustnessWarning, match="quarantined"):
            with ParallelRunner(policy, fault_plan=plan) as runner:
                out = runner.run_monte_carlo(BASE, draws=600, seed=7)
        assert out.partial.quarantined == (1,)
        assert np.isnan(out.series["total_g"][128:256]).all()

    def test_pareto_refuses_to_degrade(self, tmp_path):
        """A partial non-dominance mask is wrong, not weaker — pareto
        raises instead of quarantining."""
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("kill", shard=0, times=10)]
        )
        policy = fast_policy(
            failure_policy=DEGRADE, max_retries=0, shard_rows=8
        )
        rng = np.random.default_rng(3)
        objectives = rng.random((32, 3))
        with ParallelRunner(policy, fault_plan=plan) as runner:
            with pytest.raises(ShardFailedError, match="pareto"):
                runner.pareto_mask(objectives)


# --- observability ---------------------------------------------------------


class TestSupervisionObservability:
    def test_retry_respawn_and_quarantine_are_reported(self, tmp_path):
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("kill", shard=2, times=5)]
        )
        policy = fast_policy(failure_policy=DEGRADE, max_retries=1)
        context = RunContext.create(describe_git=False)
        with use_context(context):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RobustnessWarning)
                with ParallelRunner(policy, fault_plan=plan) as runner:
                    runner.run_monte_carlo(BASE, draws=600, seed=7)
        retries = context.sink.of_type("shard_retry")
        respawns = context.sink.of_type("worker_respawn")
        quarantines = context.sink.of_type("shard_quarantined")
        assert retries and respawns
        assert [event["shard"] for event in quarantines] == [2]
        rendered = context.metrics.render()
        assert "parallel.retries" in rendered
        assert "parallel.respawns" in rendered
        assert "parallel.quarantined" in rendered


# --- shm lifecycle under crash (satellite 4) -------------------------------


class TestShmCrashLifecycle:
    def test_worker_death_between_attach_and_detach_leaks_nothing(self):
        """A worker SIGKILLed while attached must not leak the segment
        (parent unlink still works) nor blow up the parent's cleanup
        with BufferError."""
        before = _shm_entries()
        store = SharedArrayStore.create({"data": np.arange(64.0)})
        segment_entry = store.handle()[0].lstrip("/")
        pool = WorkerPool(1)
        try:
            with pytest.raises(WorkerError):
                pool.run(_attach_and_die, [store.handle()])
        finally:
            pool.close()
            store.unlink()  # must not raise BufferError
        after = _shm_entries()
        assert segment_entry not in after
        assert after - before == set()

    def test_chaos_run_leaks_no_segments(self, tmp_path):
        before = _shm_entries()
        plan = ProcessFaultPlan.create(
            tmp_path, [ProcessFault("kill", shard=1, times=1)]
        )
        with ParallelRunner(fast_policy(), fault_plan=plan) as runner:
            runner.run_monte_carlo(BASE, draws=600, seed=7)
        assert _shm_entries() - before == set()


# --- checkpoint resume composes with partial results -----------------------


class TestCheckpointPartialResume:
    def _chunked(self, tmp_path, checkpoint, *, fault_plan=None, resume=False):
        policy = fast_policy(
            failure_policy=DEGRADE, max_retries=0, backoff_seconds=0.0
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RobustnessWarning)
            return run_monte_carlo_chunked(
                BASE,
                draws=768,
                seed=11,
                chunk_rows=128,
                checkpoint=checkpoint,
                resume=resume,
                policy=policy,
                fault_plan=fault_plan,
            )

    def test_resume_reattempts_only_quarantined_rows(self, tmp_path):
        checkpoint = tmp_path / "mc.npz"
        reference = self._chunked(tmp_path, None)
        assert reference.partial is None

        plan = ProcessFaultPlan.create(
            tmp_path / "faults", [ProcessFault("kill", shard=1, times=1)]
        )
        partial = self._chunked(tmp_path, checkpoint, fault_plan=plan)
        assert partial.partial is not None
        assert partial.partial.ranges == ((128, 256),)
        assert len(partial.samples) == 768 - 128

        # Resume with the fault cleared: only the quarantined range is
        # re-attempted — no chunk re-evaluates — and the result converges
        # bit-identically to the never-faulted run.
        context = RunContext.create(describe_git=False)
        with use_context(context):
            resumed = self._chunked(tmp_path, checkpoint, resume=True)
        assert resumed.partial is None
        np.testing.assert_array_equal(reference.samples, resumed.samples)
        retry_events = context.sink.of_type("quarantine_retry")
        assert [
            (event["start"], event["stop"]) for event in retry_events
        ] == [(128, 256)]
        assert all(event["healed"] for event in retry_events)
        # The completed prefix rode along from the checkpoint: the resume
        # evaluated zero regular chunks.
        assert context.sink.of_type("chunk") == []

    def test_still_faulty_resume_stays_partial(self, tmp_path):
        checkpoint = tmp_path / "mc.npz"
        plan = ProcessFaultPlan.create(
            tmp_path / "faults", [ProcessFault("kill", shard=1, times=1)]
        )
        self._chunked(tmp_path, checkpoint, fault_plan=plan)
        still_faulty = ProcessFaultPlan.create(
            tmp_path / "faults2", [ProcessFault("kill", shard=0, times=1)]
        )
        resumed = self._chunked(
            tmp_path, checkpoint, fault_plan=still_faulty, resume=True
        )
        assert resumed.partial is not None
        assert resumed.partial.ranges == ((128, 256),)
        # And a second resume with the fault gone converges fully.
        final = self._chunked(tmp_path, checkpoint, resume=True)
        assert final.partial is None
        assert len(final.samples) == 768


# --- CLI flags (satellite 3) ----------------------------------------------


class TestCliParallelFlags:
    def _run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_shard_rows_and_transport_accepted(self, capsys):
        code, out, _ = self._run(
            capsys,
            "montecarlo",
            "--draws", "400",
            "--workers", "2",
            "--shard-rows", "100",
            "--transport", "pickle",
        )
        assert code == 0
        assert "mean" in out

    def test_shard_rows_alone_opts_into_sharded_stream(self, capsys):
        _, sharded, _ = self._run(
            capsys, "montecarlo", "--draws", "400", "--shard-rows", "100"
        )
        _, legacy, _ = self._run(capsys, "montecarlo", "--draws", "400")
        sharded_mean = [l for l in sharded.splitlines() if "mean" in l]
        legacy_mean = [l for l in legacy.splitlines() if "mean" in l]
        assert sharded_mean and legacy_mean  # both complete; streams differ

    def test_invalid_shard_rows_exits_2(self, capsys):
        code, _, err = self._run(
            capsys, "montecarlo", "--draws", "100", "--shard-rows", "-5"
        )
        assert code == 2
        assert "shard_rows" in err

    def test_invalid_transport_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            self._run(
                capsys, "montecarlo", "--draws", "100",
                "--transport", "carrier-pigeon",
            )
        assert info.value.code == 2

    def test_invalid_max_retries_exits_2(self, capsys):
        code, _, err = self._run(
            capsys,
            "montecarlo", "--draws", "100",
            "--failure-policy", "retry", "--max-retries", "-1",
        )
        assert code == 2
        assert "max_retries" in err

    def test_sensitivity_accepts_parallel_flags(self, capsys):
        code, out, _ = self._run(
            capsys,
            "sensitivity",
            "--draws", "300",
            "--workers", "2",
            "--shard-rows", "100",
            "--failure-policy", "retry",
        )
        assert code == 0
        assert "Monte Carlo" in out

    def test_experiment_accepts_parallel_flags(self, capsys):
        code, _, _ = self._run(
            capsys,
            "experiment", "fig14",
            "--workers", "1",
            "--transport", "shm",
        )
        assert code == 0


# --- policy validation -----------------------------------------------------


class TestFailurePolicyValidation:
    def test_unknown_failure_policy_rejected(self):
        with pytest.raises(ParameterError, match="failure policy"):
            ExecutionPolicy(failure_policy="pray")

    def test_negative_retries_rejected(self):
        with pytest.raises(ParameterError, match="max_retries"):
            ExecutionPolicy(max_retries=-1)

    def test_bad_deadline_rejected(self):
        with pytest.raises(ParameterError, match="shard_deadline"):
            ExecutionPolicy(shard_deadline_seconds=0.0)

    def test_fail_fast_stays_the_default(self):
        assert ExecutionPolicy().failure_policy == FAIL_FAST

    def test_one_shot_monte_carlo_threads_partial(self):
        """run_monte_carlo's parallel path forwards partial=None for a
        healthy run (the field exists for degraded ones)."""
        result = run_monte_carlo(
            BASE,
            draws=400,
            seed=3,
            policy=ExecutionPolicy(workers=2, shard_rows=100),
        )
        assert result.partial is None
