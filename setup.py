"""Legacy setup shim.

The execution environment has no `wheel` package, so PEP-517 editable
installs (`pip install -e .`) cannot build an editable wheel.  This shim lets
`pip install -e . --no-use-pep517` (or `python setup.py develop`) work
offline; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
