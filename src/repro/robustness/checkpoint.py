"""Chunked, checkpointed, cancellable execution of long batched runs.

A 100k-draw Monte Carlo or a million-point sweep should survive being
killed: these runners split the work into chunks, persist every completed
wave through the crash-consistent chunk store
(:class:`~repro.robustness.durability.DurableChunkStore` — write-ahead
CRC-framed records plus an atomically-replaced manifest), and resume from
the last committed generation.  A kill, torn write, or full disk mid-
checkpoint can cost at most the uncommitted tail; on resume the salvage
path recovers the longest valid committed prefix and recomputes only what
was actually lost.

Resumption is **bit-for-bit**: the full sample/grid columns are generated
deterministically up front from the seed, so the values a resumed run
evaluates are exactly the values the uninterrupted run would have — the
chunk boundaries only decide *when* a row is evaluated, never *what* it
is.  A content fingerprint (the SHA-256 of the generated columns plus the
run configuration, including the resolved kernel backend and — for sweeps
— the resolved planner mode) is stored in the checkpoint and verified on
resume, so a checkpoint can never silently continue a *different* run
(:class:`~repro.core.errors.CheckpointError` otherwise).

Cooperative cancellation goes through :class:`CancelToken` — a deadline
or an explicit ``cancel()`` makes the runner stop at the next chunk
boundary, checkpoint what it has, and raise
:class:`~repro.core.errors.RunInterrupted` carrying the partial results.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.montecarlo import (
    TRIANGULAR,
    MonteCarloResult,
    sample_parameter_columns,
    sample_parameter_columns_sharded,
)
from repro.analysis.scenario import ActScenario
from repro.core.errors import CheckpointError, RunInterrupted
from repro.core.parameters import require_positive
from repro.dse.sweep import BatchSweepResult
from repro.engine.batch import ScenarioBatch, product_columns
from repro.engine.cache import EvaluationCache, evaluate_cached
from repro.engine.kernels import BatchResult
from repro.obs.context import current_context
from repro.robustness.durability import DurableChunkStore, load_store_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.guard import GuardedEngine

#: Checkpoint schema version; bumped on incompatible layout changes.
#: Version 2: the durable chunk-store format (write-ahead CRC-framed
#: records + manifest) with backend/planner folded into fingerprints.
CHECKPOINT_VERSION = 2

#: Default rows evaluated between two checkpoint writes.
DEFAULT_CHUNK_ROWS = 4096


@dataclass
class CancelToken:
    """Cooperative cancellation: a deadline, an explicit cancel, or both.

    Runners poll :meth:`should_stop` at chunk boundaries — nothing is
    interrupted mid-kernel, so checkpoints are always consistent.

    Attributes:
        deadline_seconds: Wall-clock budget measured from construction
            (``None`` = no deadline).
    """

    deadline_seconds: float | None = None
    _started: float = field(default_factory=time.monotonic, repr=False)
    _cancelled: bool = field(default=False, repr=False)

    def cancel(self) -> None:
        """Request a stop at the next chunk boundary."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def elapsed(self) -> float:
        """Seconds since the token was created."""
        return time.monotonic() - self._started

    def should_stop(self) -> bool:
        """Whether a runner polling this token must stop now."""
        if self._cancelled:
            return True
        return (
            self.deadline_seconds is not None
            and self.elapsed() >= self.deadline_seconds
        )


class CountingCancelToken(CancelToken):
    """A token that cancels itself after N polls — the test-suite's way of
    interrupting a run at a deterministic chunk boundary."""

    def __init__(self, stop_after_checks: int):
        super().__init__()
        self.stop_after_checks = stop_after_checks
        self.checks = 0

    def should_stop(self) -> bool:
        self.checks += 1
        return self.checks > self.stop_after_checks or super().should_stop()


# --- checkpoint file format ---------------------------------------------


def _fingerprint(
    kind: str, columns: Mapping[str, np.ndarray], metadata: Iterable[str]
) -> str:
    """Content hash binding a checkpoint to one exact run."""
    digest = hashlib.sha256()
    digest.update(kind.encode("ascii"))
    for item in metadata:
        digest.update(b"\x00")
        digest.update(str(item).encode("utf-8"))
    for name in sorted(columns):
        digest.update(name.encode("ascii"))
        digest.update(np.ascontiguousarray(columns[name]).tobytes())
    return digest.hexdigest()


def _checkpoint_backend_token(resolved_policy: "object | None") -> str:
    """The backend name a checkpoint must be bound to.

    The policy's explicit backend wins; otherwise the process-wide
    default — the same resolution order the serial chunk evaluation and
    the worker processes use, so serial and parallel runs of one
    configuration still share a fingerprint while a run evaluated under
    ``--backend fused`` can never silently resume a reference-backend
    checkpoint.
    """
    from repro.engine.backends import resolve_backend

    name = getattr(resolved_policy, "backend", None)
    if name:
        return str(name)
    return resolve_backend(None).name


def _coverage(spans: Iterable[tuple[int, int]]) -> int:
    """Rows covered contiguously from row 0 by ``spans``."""
    covered = 0
    for start, stop in sorted(spans):
        if start > covered:
            break
        covered = max(covered, stop)
    return covered


class _Checkpointer:
    """Adapter between the chunked runners and the durable chunk store.

    A no-op when ``path`` is ``None`` (persistence disabled).  Otherwise
    every completed wave is appended to the write-ahead log and committed
    (:class:`~repro.robustness.durability.DurableChunkStore`), and resume
    goes through the salvage-aware loader: a torn or partially-corrupt
    store yields the longest valid committed prefix, quarantines the rest
    for recompute, and surfaces what happened as a
    :class:`~repro.robustness.guard.RobustnessWarning` plus a
    ``checkpoint_salvage`` event — never silent acceptance, never
    wholesale discard.
    """

    def __init__(
        self,
        path: "str | os.PathLike | None",
        *,
        kind: str,
        fingerprint: str,
        total: int,
        series: Mapping[str, np.ndarray],
    ):
        self.path = os.fspath(path) if path is not None else None
        self.kind = kind
        self.fingerprint = fingerprint
        self.total = int(total)
        self.series = series
        self.context = current_context()
        self._store: "DurableChunkStore | None" = None

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def _meta(
        self, completed: int, quarantined: Iterable[tuple[int, int]]
    ) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "completed": int(completed),
            "total": self.total,
            "quarantined": [
                [int(start), int(stop)] for start, stop in quarantined
            ],
        }

    def _io_error(self, operation: str, error: OSError) -> CheckpointError:
        return CheckpointError(
            f"checkpoint {operation} failed for {self.path!r}: {error}",
            path=self.path,
            reason="io",
        )

    def begin(self) -> None:
        """Start a fresh store (commits an empty generation immediately)."""
        if not self.enabled:
            return
        self._store = DurableChunkStore(
            self.path, kind=self.kind, fingerprint=self.fingerprint
        )
        try:
            self._store.create(self._meta(0, ()))
        except OSError as error:
            raise self._io_error("create", error) from error

    def resume(self) -> tuple[int, list[tuple[int, int]]]:
        """Load (salvaging if needed) and reopen the store for appending.

        Fills :attr:`series` with the recovered rows and returns
        ``(completed, quarantined_ranges)``.  Raises
        :class:`~repro.core.errors.CheckpointError` — with the salvage
        summary in the message — when nothing usable was recovered or the
        store belongs to a different run configuration.
        """
        if not self.enabled:
            raise CheckpointError(
                "resume requested without a checkpoint path", reason="missing"
            )
        state = load_store_state(self.path)
        report = state.report
        salvage = report.summary()
        chunks = [
            record
            for record in state.chunks
            if record.kind == self.kind
            and record.fingerprint == self.fingerprint
        ]
        meta = state.meta
        if meta is None:
            if not chunks:
                # An empty log with no manifest is a crash one instant
                # after create(): nothing committed, nothing torn —
                # treat it as absent so callers can restart fresh.
                reason = "corrupt" if report.torn_bytes else "missing"
                raise CheckpointError(
                    f"cannot resume: checkpoint {self.path!r} has no "
                    f"committed state ({salvage})",
                    path=self.path,
                    reason=reason,
                    salvage=salvage,
                )
            # Manifest destroyed but the log itself is healthy: the
            # fingerprint-matched records are trustworthy (CRC + content
            # hash), so synthesize the metadata instead of discarding.
            meta = self._meta(_coverage((r.start, r.stop) for r in chunks), ())
        if int(meta.get("version", -1)) != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"cannot resume: checkpoint {self.path!r} has version "
                f"{meta.get('version')}, expected {CHECKPOINT_VERSION}",
                path=self.path,
                reason="version",
                salvage=salvage,
            )
        if str(meta.get("kind", "")) != self.kind:
            raise CheckpointError(
                f"cannot resume: checkpoint {self.path!r} holds a "
                f"{str(meta.get('kind', ''))!r} run, not {self.kind!r}",
                path=self.path,
                reason="mismatch",
                salvage=salvage,
            )
        if str(meta.get("fingerprint", "")) != self.fingerprint:
            raise CheckpointError(
                f"cannot resume: checkpoint {self.path!r} was written by a "
                "different run configuration (seed, draws, parameters, "
                "backend, planner, or policy differ)",
                path=self.path,
                reason="mismatch",
                salvage=salvage,
            )
        committed = int(meta.get("completed", 0))
        if committed > self.total or int(meta.get("total", -1)) != self.total:
            raise CheckpointError(
                f"checkpoint {self.path!r} covers "
                f"{committed}/{meta.get('total')} rows, expected {self.total}",
                path=self.path,
                reason="mismatch",
                salvage=salvage,
            )
        spans = []
        for record in chunks:
            for name, values in record.arrays.items():
                if name in self.series:
                    self.series[name][record.start : record.stop] = values
            spans.append((record.start, record.stop))
        completed = min(committed, _coverage(spans))
        # Quarantined holes sit inside the completed prefix; any range a
        # lossy salvage pushed past `completed` gets recomputed by the
        # main loop anyway.
        quarantined = [
            (int(start), int(stop))
            for start, stop in meta.get("quarantined", [])
            if int(stop) <= completed
        ]
        lossy = report.lossy or completed < committed
        if lossy:
            from repro.robustness.guard import RobustnessWarning

            warnings.warn(
                f"checkpoint {self.path!r} was damaged; recovered the "
                f"longest valid committed prefix ({salvage}); "
                f"{committed - completed} row(s) will be recomputed",
                RobustnessWarning,
                stacklevel=3,
            )
            if self.context.enabled:
                self.context.count("checkpoint.salvages")
                self.context.event(
                    "checkpoint_salvage",
                    kind=self.kind,
                    path=self.path,
                    chunks_kept=report.chunks_kept,
                    chunks_quarantined=len(report.chunks_quarantined),
                    generation=report.generation,
                    completed=completed,
                    committed=committed,
                    summary=salvage,
                )
        if self.context.enabled:
            self.context.count("checkpoint.restores")
            self.context.event(
                "checkpoint_restore",
                kind=self.kind,
                path=self.path,
                completed=completed,
                total=self.total,
            )
        self._store = DurableChunkStore(
            self.path, kind=self.kind, fingerprint=self.fingerprint
        )
        try:
            self._store.open_resume(state)
        except OSError as error:
            raise self._io_error("reopen", error) from error
        return completed, quarantined

    def append_range(self, start: int, stop: int) -> None:
        """Write-ahead one series row range (visible after next commit)."""
        if self._store is None or stop <= start:
            return
        arrays = {
            name: values[start:stop] for name, values in self.series.items()
        }
        try:
            self._store.append(start, stop, arrays)
        except OSError as error:
            raise self._io_error("append", error) from error

    def save(
        self,
        start: int,
        stop: int,
        *,
        completed: int,
        quarantined: Iterable[tuple[int, int]] = (),
    ) -> None:
        """Append rows [start, stop) and commit the new generation."""
        if not self.enabled:
            return
        self.append_range(start, stop)
        self.commit(completed, quarantined)

    def commit(
        self,
        completed: int,
        quarantined: Iterable[tuple[int, int]] = (),
    ) -> None:
        """Commit every appended record under updated run metadata."""
        if self._store is None:
            return
        try:
            self._store.commit(self._meta(completed, quarantined))
        except OSError as error:
            raise self._io_error("commit", error) from error
        if self.context.enabled:
            self.context.count("checkpoint.saves")
            self.context.event(
                "checkpoint_save",
                kind=self.kind,
                path=self.path,
                completed=int(completed),
                total=self.total,
            )

    def close(self) -> None:
        """Release the append handle (safe when persistence is off)."""
        if self._store is not None:
            self._store.close()
            self._store = None


# --- Monte Carlo ---------------------------------------------------------


def run_monte_carlo_chunked(
    base: ActScenario,
    parameters: Iterable[str] | None = None,
    *,
    draws: int = 2000,
    seed: int = 2022,
    distribution: str = TRIANGULAR,
    ranges: Mapping[str, tuple[float, float]] | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    cancel: CancelToken | None = None,
    cache: EvaluationCache | None = None,
    guard: "GuardedEngine | None" = None,
    policy: "object | int | None" = None,
    fault_plan: object = None,
) -> MonteCarloResult:
    """:func:`~repro.analysis.montecarlo.run_monte_carlo`, chunked.

    Identical results to the one-shot runner (same seed ⇒ bit-identical
    samples), but evaluated ``chunk_rows`` at a time with an atomic
    checkpoint after every chunk, an optional guard per chunk, and
    cooperative cancellation between chunks.

    Chunked runs compose with graceful degradation: under a
    ``failure_policy="degrade"`` policy, shards quarantined in a wave are
    recorded (as global row ranges) in the checkpoint, and a later
    ``resume=True`` re-attempts **only** those quarantined ranges — every
    healthy row is taken from the checkpoint untouched — converging to
    the bit-identical full result once the fault is gone (the sample
    columns are pure functions of the seed, so when a row is evaluated
    never changes what it evaluates to).

    Args:
        chunk_rows: Rows per evaluation chunk (and checkpoint cadence).
        checkpoint: Checkpoint file path (``None`` disables persistence).
        resume: Load ``checkpoint`` and continue from its last chunk.
        cancel: Cooperative cancellation token polled at chunk boundaries.
        guard: Optional :class:`~repro.robustness.guard.GuardedEngine`;
            masked rows are dropped from the final sample set exactly as
            in the one-shot guarded runner.
        policy: An :class:`~repro.parallel.ExecutionPolicy`, a bare worker
            count, or ``None`` to pick up an installed process-wide
            policy.  Any resolved policy (even ``workers=1``) switches the
            sampler to the sharded per-chunk SeedSequence streams (one
            child stream per ``chunk_rows`` chunk) so the chunk is the
            unit of both checkpointing and parallel dispatch; the samples
            are then bit-identical across worker counts, and a checkpoint
            written at one worker count resumes at any other.  Sharded
            streams differ from the legacy ``policy=None`` single stream,
            so their fingerprints differ and the two cannot resume each
            other's checkpoints.
        fault_plan: An armed
            :class:`~repro.robustness.faultinject.ProcessFaultPlan`
            threaded into the parallel runner (chaos testing only).

    Raises:
        CheckpointError: ``resume`` without a usable, matching checkpoint.
        RunInterrupted: ``cancel`` fired; partial results are checkpointed
            (and carried on the exception's ``partial`` attribute).
    """
    require_positive("chunk_rows", chunk_rows)
    from repro.parallel.policy import resolve_policy

    resolved_policy = resolve_policy(policy)
    context = current_context()
    if resolved_policy is not None:
        columns = sample_parameter_columns_sharded(
            base,
            parameters,
            draws=draws,
            seed=seed,
            shard_rows=chunk_rows,
            distribution=distribution,
            ranges=ranges,
        )
    else:
        columns = sample_parameter_columns(
            base,
            parameters,
            draws=draws,
            seed=seed,
            distribution=distribution,
            ranges=ranges,
        )
    guard_tag = guard.policy if guard is not None else "off"
    # The sampled columns are a pure function of the entries below, so
    # the fingerprint hashes the configuration, not the (potentially
    # hundreds of MB of) column data itself: same identity guarantee,
    # none of the hashing cost on the hot path.
    fingerprint = _fingerprint(
        "montecarlo",
        {},
        (
            draws,
            seed,
            distribution,
            guard_tag,
            f"backend={_checkpoint_backend_token(resolved_policy)}",
            f"columns={','.join(sorted(columns))}",
            f"ranges={sorted(ranges.items()) if ranges else None}",
            f"sharded={chunk_rows if resolved_policy is not None else None}",
            sorted(base.as_dict().items()),
        ),
    )
    samples = np.full(draws, np.nan)
    completed = 0
    ckpt = _Checkpointer(
        checkpoint,
        kind="montecarlo",
        fingerprint=fingerprint,
        total=draws,
        series={"samples": samples},
    )
    # Global (start, stop) row ranges lost to quarantined shards; persisted
    # with the checkpoint so a resume knows exactly which completed rows
    # are holes to re-attempt (older checkpoints simply lack the key).
    quarantined_ranges: list[tuple[int, int]] = []
    if resume:
        completed, quarantined_ranges = ckpt.resume()
    else:
        ckpt.begin()

    parallel = resolved_policy is not None and resolved_policy.parallel
    # One wave dispatches `workers` chunks at once; `completed` always
    # stays a whole-chunk prefix, so a checkpoint written mid-run at one
    # worker count resumes cleanly at any other.
    wave_rows = (
        chunk_rows * resolved_policy.workers if parallel else chunk_rows
    )
    runner = None
    if parallel:
        from repro.parallel.runner import ParallelRunner

        runner = ParallelRunner(
            resolved_policy.replace(shard_rows=chunk_rows),
            fault_plan=fault_plan,
        )
    try:
        with context.span(
            "analysis.montecarlo_chunked",
            draws=draws,
            chunk_rows=chunk_rows,
            workers=resolved_policy.workers if resolved_policy else 0,
        ):
            while completed < draws:
                if cancel is not None and cancel.should_stop():
                    ckpt.commit(completed, quarantined_ranges)
                    error = RunInterrupted(
                        f"Monte Carlo interrupted at {completed}/{draws} draws"
                        + (
                            f"; resume from {os.fspath(checkpoint)!r}"
                            if checkpoint is not None
                            else " (no checkpoint path — partial results not "
                            "persisted)"
                        ),
                        completed=completed,
                        total=draws,
                        checkpoint=checkpoint,
                    )
                    error.partial = samples[:completed][
                        np.isfinite(samples[:completed])
                    ]
                    raise error
                stop = min(completed + wave_rows, draws)
                chunk = {
                    name: column[completed:stop]
                    for name, column in columns.items()
                }
                if runner is not None:
                    evaluation = runner.evaluate_columns(
                        base, stop - completed, chunk, guard=guard
                    )
                    samples[completed:stop] = evaluation.full_series("total_g")
                    if evaluation.partial is not None:
                        # Shard-local ranges → global rows; the holes are
                        # checkpointed so a resume can target them.
                        quarantined_ranges.extend(
                            (completed + start, completed + stop_local)
                            for start, stop_local in evaluation.partial.ranges
                        )
                elif guard is not None:
                    guarded = guard.evaluate_columns(
                        base, stop - completed, chunk
                    )
                    samples[completed:stop] = guarded.full_series("total_g")
                else:
                    batch = ScenarioBatch.from_columns(
                        base, stop - completed, chunk
                    )
                    samples[completed:stop] = evaluate_cached(
                        batch, cache
                    ).total_g
                wave_start = completed
                completed = stop
                if context.enabled:
                    context.count("analysis.montecarlo.chunks")
                    context.event(
                        "chunk",
                        kind="montecarlo",
                        completed=completed,
                        total=draws,
                    )
                ckpt.save(
                    wave_start,
                    completed,
                    completed=completed,
                    quarantined=quarantined_ranges,
                )
            if resume and quarantined_ranges:
                # A resumed partial run re-attempts ONLY the quarantined
                # holes — every healthy row rides along from the
                # checkpoint — and converges bit-identically once the
                # fault is cleared (sample columns are seed-determined,
                # so re-evaluation timing cannot change values).
                still: list[tuple[int, int]] = []
                for start, stop in quarantined_ranges:
                    chunk = {
                        name: column[start:stop]
                        for name, column in columns.items()
                    }
                    if runner is not None:
                        evaluation = runner.evaluate_columns(
                            base, stop - start, chunk, guard=guard
                        )
                        samples[start:stop] = evaluation.full_series(
                            "total_g"
                        )
                        if evaluation.partial is not None:
                            still.extend(
                                (start + lo, start + hi)
                                for lo, hi in evaluation.partial.ranges
                            )
                    elif guard is not None:
                        guarded = guard.evaluate_columns(
                            base, stop - start, chunk
                        )
                        samples[start:stop] = guarded.full_series("total_g")
                    else:
                        batch = ScenarioBatch.from_columns(
                            base, stop - start, chunk
                        )
                        samples[start:stop] = evaluate_cached(
                            batch, cache
                        ).total_g
                    if context.enabled:
                        context.count("checkpoint.quarantine_retries")
                        context.event(
                            "quarantine_retry",
                            kind="montecarlo",
                            start=int(start),
                            stop=int(stop),
                            healed=(start, stop) not in still,
                        )
                    # Write-ahead the re-attempted rows: the record
                    # overlays the already-committed chunk on replay.
                    ckpt.append_range(start, stop)
                quarantined_ranges = still
                ckpt.commit(completed, quarantined_ranges)
    finally:
        ckpt.close()
        if runner is not None:
            runner.close()

    # Guarded runs mark masked rows NaN — and so do quarantined shards;
    # drop them like the one-shot path.
    holes = bool(quarantined_ranges)
    finished = (
        samples[np.isfinite(samples)]
        if (guard is not None or holes)
        else samples
    )
    partial = None
    if holes:
        from repro.parallel.supervisor import PartialResult

        ranges = tuple(quarantined_ranges)
        partial = PartialResult(
            quarantined=tuple(start // chunk_rows for start, _ in ranges),
            ranges=ranges,
            failures=(),
        )
    return MonteCarloResult(
        samples=np.array(finished, copy=True),
        base_response=base.total_g(),
        partial=partial,
    )


# --- grid sweeps ---------------------------------------------------------


def sweep_grid_batched_chunked(
    base: ActScenario,
    grids: Mapping[str, Sequence[float]],
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    cancel: CancelToken | None = None,
    cache: EvaluationCache | None = None,
    policy: "object | int | None" = None,
    planner: str | None = None,
) -> BatchSweepResult:
    """:func:`~repro.dse.sweep.sweep_grid_batched`, chunked and resumable.

    Evaluates the Cartesian grid ``chunk_rows`` rows at a time and
    reassembles a :class:`~repro.dse.sweep.BatchSweepResult` bit-identical
    to the one-shot sweep (the kernels are elementwise, so chunk
    boundaries cannot change any value).

    Args:
        policy: An :class:`~repro.parallel.ExecutionPolicy`, a bare worker
            count, or ``None`` to pick up an installed process-wide
            policy.  A parallel policy dispatches ``workers`` chunks per
            wave; grid columns (and so the checkpoint fingerprint) are
            unchanged, so serial and parallel runs of the same sweep
            resume each other's checkpoints freely.
        planner: ``"auto"`` / ``"on"`` / ``"off"``, or ``None`` for the
            process-wide mode.  On the serial path an engaged planner
            (:mod:`repro.engine.plan`) factors Eq. 1-8 once into
            per-axis partial tables and each chunk only gathers its row
            range — bit-identical values.  The *resolved* mode is folded
            into the checkpoint fingerprint, so a run checkpointed under
            one planner mode refuses (``CheckpointError``, reason
            ``"mismatch"``) to resume under another — re-run with the
            original mode instead.  Parallel waves always evaluate
            densely.
    """
    require_positive("chunk_rows", chunk_rows)
    from repro.engine.plan import (
        plan_product,
        planner_engaged,
        resolve_planner_mode,
    )
    from repro.parallel.policy import resolve_policy

    resolved_policy = resolve_policy(policy)
    planner_mode = resolve_planner_mode(planner)
    context = current_context()
    size, columns = product_columns(base, grids)
    names = tuple(grids)
    fingerprint = _fingerprint(
        "sweep",
        columns,
        (
            size,
            names,
            f"backend={_checkpoint_backend_token(resolved_policy)}",
            f"planner={planner_mode}",
            sorted(base.as_dict().items()),
        ),
    )
    series_names = tuple(BatchResult.__dataclass_fields__)
    series = {name: np.full(size, np.nan) for name in series_names}
    completed = 0
    ckpt = _Checkpointer(
        checkpoint,
        kind="sweep",
        fingerprint=fingerprint,
        total=size,
        series=series,
    )
    if resume:
        completed, _ = ckpt.resume()
    else:
        ckpt.begin()

    parallel = resolved_policy is not None and resolved_policy.parallel
    wave_rows = (
        chunk_rows * resolved_policy.workers if parallel else chunk_rows
    )
    runner = None
    if parallel:
        from repro.parallel.runner import ParallelRunner

        runner = ParallelRunner(
            resolved_policy.replace(shard_rows=chunk_rows)
        )
    plan = factor_tables = None
    if not parallel and planner_engaged(planner_mode, size):
        # Factor Eq. 1-8 once up front; each chunk below then only
        # gathers its row range out of the broadcasted outer product.
        # Values are bit-identical to the dense chunk evaluation; the
        # resolved mode is still folded into the fingerprint so resumes
        # can never silently cross planner settings.
        plan = plan_product(base, grids)
        factor_tables = plan.partial_series()
    try:
        with context.span(
            "dse.sweep_grid_chunked",
            points=size,
            chunk_rows=chunk_rows,
            workers=resolved_policy.workers if resolved_policy else 0,
        ):
            while completed < size:
                if cancel is not None and cancel.should_stop():
                    ckpt.commit(completed)
                    raise RunInterrupted(
                        f"grid sweep interrupted at {completed}/{size} rows"
                        + (
                            f"; resume from {os.fspath(checkpoint)!r}"
                            if checkpoint is not None
                            else " (no checkpoint path — partial results not "
                            "persisted)"
                        ),
                        completed=completed,
                        total=size,
                        checkpoint=checkpoint,
                    )
                stop = min(completed + wave_rows, size)
                if runner is not None:
                    chunk = {
                        name: column[completed:stop]
                        for name, column in columns.items()
                    }
                    evaluation = runner.evaluate_columns(
                        base, stop - completed, chunk
                    )
                    for name in series_names:
                        series[name][completed:stop] = evaluation.full_series(
                            name
                        )
                elif factor_tables is not None:
                    chunk_series = plan.gather_rows(
                        factor_tables, completed, stop
                    )
                    for name in series_names:
                        series[name][completed:stop] = chunk_series[name]
                else:
                    chunk_batch = ScenarioBatch(
                        **{
                            name: np.ascontiguousarray(column[completed:stop])
                            for name, column in columns.items()
                        }
                    )
                    chunk_result = evaluate_cached(chunk_batch, cache)
                    for name in series_names:
                        series[name][completed:stop] = getattr(
                            chunk_result, name
                        )
                wave_start = completed
                completed = stop
                if context.enabled:
                    context.count("dse.sweep.chunks")
                    context.event(
                        "chunk", kind="sweep", completed=completed, total=size
                    )
                ckpt.save(wave_start, completed, completed=completed)
    finally:
        ckpt.close()
        if runner is not None:
            runner.close()

    batch = ScenarioBatch(**columns)
    result = BatchResult(**series)
    return BatchSweepResult(names=names, batch=batch, result=result)


# --- scheduling policy sweeps --------------------------------------------


def run_schedule_sweep_chunked(
    spec: "object",
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    checkpoint_path: str | os.PathLike | None = None,
    resume: bool = False,
    cancel: CancelToken | None = None,
    policy: "object | int | None" = None,
    backend: "object | str | None" = None,
    cache: EvaluationCache | None = None,
) -> dict[str, np.ndarray]:
    """A scheduling policy sweep, chunked, checkpointed, and cancellable.

    Evaluates a :class:`~repro.scheduling.sweep.ScheduleSweepSpec`
    ``chunk_rows`` rows at a time through the vectorized
    :func:`~repro.scheduling.batch.evaluate_schedule_batch` path and
    returns the raw per-row series
    (:data:`~repro.scheduling.batch.SCHEDULE_SERIES`, each ``spec.rows``
    long, float64) for :func:`~repro.scheduling.sweep.summarize_sweep`.

    Scenario rows are *regenerated* per chunk from the spec's seed
    (:func:`~repro.scheduling.sweep.build_schedule_batch` is pure in
    ``(spec, row)``), so the checkpoint fingerprint is the spec's own
    identity plus the resolved backend name — no materialized columns to
    hash — and a checkpoint written at one worker count or chunk size
    resumes bit-identically at any other (but never across backends).

    Args:
        chunk_rows: Rows per evaluation chunk (and checkpoint cadence).
        checkpoint_path: Checkpoint file (``None`` disables persistence).
        resume: Load ``checkpoint_path`` and continue where it stopped.
        cancel: Cooperative cancellation token polled at chunk boundaries.
        policy: An :class:`~repro.parallel.ExecutionPolicy`, a bare worker
            count, or ``None`` to pick up an installed process-wide
            policy; a parallel policy dispatches ``workers`` chunks per
            wave through :meth:`ParallelRunner.evaluate_schedule`.
        backend: Kernel backend (name or instance) for the vectorized
            evaluator; threaded to workers by name on the parallel path.
        cache: Schedule-batch evaluation cache (serial path only — worker
            processes keep their own).

    Raises:
        CheckpointError: ``resume`` without a usable, matching checkpoint.
        RunInterrupted: ``cancel`` fired; completed rows are checkpointed
            and carried on the exception's ``partial`` attribute as a
            name → array mapping.
    """
    require_positive("chunk_rows", chunk_rows)
    from repro.engine.backends import resolve_backend
    from repro.parallel.policy import resolve_policy
    from repro.scheduling.batch import (
        SCHEDULE_SERIES,
        evaluate_schedule_cached,
    )
    from repro.scheduling.sweep import ScheduleSweepSpec, build_schedule_batch

    if not isinstance(spec, ScheduleSweepSpec):
        raise CheckpointError(
            "run_schedule_sweep_chunked needs a ScheduleSweepSpec, got "
            f"{type(spec).__name__}",
            reason="mismatch",
        )
    resolved_policy = resolve_policy(policy)
    backend_name = (
        resolve_backend(backend).name if backend is not None else None
    )
    # The explicit backend argument wins; otherwise the policy's backend
    # or the process-wide default — the same resolution the evaluation
    # paths use, folded into the fingerprint so a sweep evaluated under
    # one backend cannot silently resume another's checkpoint.
    backend_token = (
        backend_name
        if backend_name is not None
        else _checkpoint_backend_token(resolved_policy)
    )
    context = current_context()
    rows = spec.rows
    fingerprint = _fingerprint(
        "schedule",
        {},
        tuple(
            f"{key}={value}"
            for key, value in sorted(spec.fingerprint_metadata().items())
        )
        + (f"backend={backend_token}",),
    )
    series = {name: np.full(rows, np.nan) for name in SCHEDULE_SERIES}
    completed = 0
    ckpt = _Checkpointer(
        checkpoint_path,
        kind="schedule",
        fingerprint=fingerprint,
        total=rows,
        series=series,
    )
    if resume:
        completed, _ = ckpt.resume()
    else:
        ckpt.begin()

    parallel = resolved_policy is not None and resolved_policy.parallel
    wave_rows = (
        chunk_rows * resolved_policy.workers if parallel else chunk_rows
    )
    runner = None
    if parallel:
        from repro.parallel.runner import ParallelRunner

        runner_policy = resolved_policy.replace(shard_rows=chunk_rows)
        if backend_name is not None:
            runner_policy = runner_policy.replace(backend=backend_name)
        runner = ParallelRunner(runner_policy)
    try:
        with context.span(
            "scheduling.sweep_chunked",
            rows=rows,
            chunk_rows=chunk_rows,
            workers=resolved_policy.workers if resolved_policy else 0,
        ):
            while completed < rows:
                if cancel is not None and cancel.should_stop():
                    ckpt.commit(completed)
                    error = RunInterrupted(
                        f"schedule sweep interrupted at {completed}/{rows} "
                        "rows"
                        + (
                            f"; resume from {os.fspath(checkpoint_path)!r}"
                            if checkpoint_path is not None
                            else " (no checkpoint path — partial results not "
                            "persisted)"
                        ),
                        completed=completed,
                        total=rows,
                        checkpoint=checkpoint_path,
                    )
                    error.partial = {
                        name: np.array(series[name][:completed], copy=True)
                        for name in SCHEDULE_SERIES
                    }
                    raise error
                stop = min(completed + wave_rows, rows)
                if runner is not None:
                    evaluation = runner.evaluate_schedule(
                        spec, start=completed, stop=stop
                    )
                    for name in SCHEDULE_SERIES:
                        series[name][completed:stop] = evaluation.full_series(
                            name
                        )
                else:
                    chunk_batch = build_schedule_batch(spec, completed, stop)
                    chunk_result = evaluate_schedule_cached(
                        chunk_batch, cache, backend_name
                    )
                    for name in SCHEDULE_SERIES:
                        series[name][completed:stop] = getattr(
                            chunk_result, name
                        )
                wave_start = completed
                completed = stop
                if context.enabled:
                    context.count("scheduling.sweep.chunks")
                    context.event(
                        "chunk",
                        kind="schedule",
                        completed=completed,
                        total=rows,
                    )
                ckpt.save(wave_start, completed, completed=completed)
    finally:
        ckpt.close()
        if runner is not None:
            runner.close()
    return series
