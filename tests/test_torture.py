"""Bounded torture-campaign smoke tests and the ``repro torture`` CLI.

The full kill-at-every-crash-point campaigns run in the dedicated
crash-consistency CI job (``repro torture``); here a bounded subset
keeps the tier-1 suite fast while still proving the harness machinery
end to end: point recording, in-process power-loss crashes, a real
SIGKILL subprocess crash, error-injection recovery, and the CLI wiring.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.errors import ParameterError
from repro.robustness.torture import (
    ERROR_KINDS,
    KILL_KINDS,
    TORTURE_WORKLOADS,
    run_error_campaign,
    run_kill_campaign,
    run_record_campaign,
)

#: A fast representative subset: one point per protocol stage (chunk
#: write, manifest commit, durable marker, JSONL audit stream).
SUBSET = (
    "store.chunk.write",
    "store.manifest.rename",
    "store.committed",
    "obs.jsonl.write",
)


class TestRecordCampaign:
    def test_mc_workload_reaches_the_required_point_count(self):
        traces = run_record_campaign("mc")
        distinct = set(traces["fresh"]) | set(traces["resume"])
        assert len(distinct) >= 15
        for expected in SUBSET:
            assert expected in distinct
        # Resume exercises the trim path a fresh run never reaches.
        assert "store.log.truncate" in traces["resume"]

    def test_unknown_workload_raises(self):
        with pytest.raises(ParameterError):
            run_record_campaign("definitely-not-a-workload")

    def test_registry_names_all_workloads(self):
        assert set(TORTURE_WORKLOADS) == {"mc", "sweep", "schedule"}


class TestKillCampaign:
    def test_inprocess_crashes_converge_bit_identically(self):
        result = run_kill_campaign(
            "mc", mode="inprocess", kinds=("crash",), points=SUBSET
        )
        assert result.outcomes, "no faults were armed"
        assert result.passed, result.summary()
        assert set(result.points_covered) == set(SUBSET)
        assert all(outcome.fired for outcome in result.outcomes)

    def test_subprocess_sigkill_converges(self):
        result = run_kill_campaign(
            "mc", kinds=("crash",), points=("store.manifest.rename",)
        )
        assert result.mode == "subprocess"
        assert result.outcomes and result.passed, result.summary()

    def test_torn_write_and_dropped_fsync_converge(self):
        result = run_kill_campaign(
            "mc",
            mode="inprocess",
            kinds=("torn", "drop_fsync"),
            points=("store.chunk.write", "store.chunk.fsync"),
        )
        assert result.outcomes
        assert result.passed, result.summary()

    def test_subprocess_mode_rejects_non_crash_kinds(self):
        with pytest.raises(ParameterError):
            run_kill_campaign("mc", mode="subprocess", kinds=("torn",))

    def test_unknown_kind_raises(self):
        with pytest.raises(ParameterError):
            run_kill_campaign("mc", kinds=("meteor",))
        with pytest.raises(ParameterError):
            run_error_campaign("mc", kinds=("meteor",))

    def test_as_dict_is_json_serializable(self):
        result = run_kill_campaign(
            "mc", mode="inprocess", kinds=("crash",),
            points=("store.committed",),
        )
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["workload"] == "mc"
        assert payload["passed"] is True


class TestErrorCampaign:
    def test_enospc_and_eio_recover_bit_identically(self):
        result = run_error_campaign(
            "mc", kinds=ERROR_KINDS,
            points=("store.chunk.fsync", "store.manifest.tmp.write"),
        )
        assert len(result.outcomes) == 4  # 2 kinds x 2 points
        assert result.passed, result.summary()


class TestTortureCli:
    def test_list_points_prints_the_registry(self, capsys):
        assert cli_main(["torture", "--list-points"]) == 0
        out = capsys.readouterr().out
        assert "store.chunk.write:" in out
        assert "obs.jsonl.write:" in out

    def test_bounded_campaign_exits_zero_with_json(self, capsys):
        code = cli_main(
            [
                "torture", "--workload", "mc", "--mode", "inprocess",
                "--kinds", "crash", "--points", "store.committed", "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload[0]["passed"] is True
        assert payload[0]["outcomes"]

    def test_unknown_kind_exits_two(self, capsys):
        code = cli_main(["torture", "--kinds", "meteor"])
        assert code == 2
        assert "unknown fault kinds" in capsys.readouterr().err

    def test_kind_lists_stay_in_sync_with_the_harness(self):
        # The CLI splits --kinds against these exact registries.
        assert set(KILL_KINDS) == {"crash", "torn", "torn_rename", "drop_fsync"}
        assert set(ERROR_KINDS) == {"enospc", "eio"}
