"""Platform aggregation (Eq. 3) and end-to-end footprint (Eq. 1-2)."""

import pytest

from repro.core import units
from repro.core.components import (
    DramComponent,
    LogicComponent,
    SsdComponent,
)
from repro.core.model import Platform, device_footprint, footprint
from repro.core.operational import EnergyProfile, operational_footprint_g
from repro.core.parameters import DEFAULT_PACKAGING_G, ParameterError


@pytest.fixture()
def phone() -> Platform:
    return Platform(
        "phone",
        (
            LogicComponent.at_node("SoC", 98.5, "7"),
            DramComponent.of("DRAM", 4, "lpddr4"),
            SsdComponent.of("NAND", 64, "nand_v3_tlc"),
        ),
    )


class TestOperational:
    def test_eq2(self):
        assert operational_footprint_g(2.0, 300.0) == pytest.approx(600.0)

    def test_zero_ci_is_zero(self):
        assert operational_footprint_g(100.0, 0.0) == 0.0

    def test_negative_energy_rejected(self):
        with pytest.raises(ParameterError):
            operational_footprint_g(-1.0, 300.0)

    def test_energy_profile_device_energy(self):
        profile = EnergyProfile(power_w=1000.0, duration_hours=2.0)
        assert profile.device_energy_kwh == pytest.approx(2.0)

    def test_energy_profile_effectiveness_inflates(self):
        profile = EnergyProfile(1000.0, 1.0, effectiveness=1.5)
        assert profile.delivered_energy_kwh == pytest.approx(1.5)

    def test_energy_profile_footprint(self):
        profile = EnergyProfile(500.0, 2.0)  # 1 kWh
        assert profile.footprint_g(300.0) == pytest.approx(300.0)


class TestPlatform:
    def test_packaging_term(self, phone):
        report = phone.embodied()
        assert report.ic_count == 3
        assert report.packaging_g == pytest.approx(3 * DEFAULT_PACKAGING_G)

    def test_total_is_components_plus_packaging(self, phone):
        report = phone.embodied()
        assert report.total_g == pytest.approx(
            report.components_g + report.packaging_g
        )

    def test_by_category_covers_total(self, phone):
        report = phone.embodied()
        assert sum(report.by_category().values()) == pytest.approx(report.total_g)

    def test_category_share_sums_to_one(self, phone):
        report = phone.embodied()
        shares = [
            report.category_share(category) for category in report.by_category()
        ]
        assert sum(shares) == pytest.approx(1.0)

    def test_custom_packaging(self):
        platform = Platform(
            "x", (DramComponent.of("d", 1),), packaging_g_per_ic=0.0
        )
        assert platform.embodied().packaging_g == 0.0

    def test_extended_adds_components(self, phone):
        extended = phone.extended(SsdComponent.of("extra", 64, "nand_v3_tlc"))
        assert extended.ic_count == phone.ic_count + 1
        assert extended.embodied_g() > phone.embodied_g()
        # The original is untouched.
        assert phone.ic_count == 3

    def test_components_tuple_from_list(self):
        platform = Platform("x", [DramComponent.of("d", 1)])
        assert isinstance(platform.components, tuple)

    def test_empty_platform_is_zero(self):
        platform = Platform("empty", ())
        assert platform.embodied_g() == 0.0
        assert platform.embodied().category_share("soc") == 0.0


class TestFootprint:
    def test_eq1_composition(self, phone):
        report = footprint(
            phone,
            energy_kwh=1.0,
            ci_use_g_per_kwh=300.0,
            duration_hours=units.years_to_hours(1.0),
            lifetime_years=3.0,
        )
        assert report.operational_g == pytest.approx(300.0)
        assert report.lifetime_fraction == pytest.approx(1.0 / 3.0)
        assert report.total_g == pytest.approx(
            300.0 + phone.embodied_g() / 3.0
        )

    def test_shares_sum_to_one(self, phone):
        report = footprint(
            phone,
            energy_kwh=5.0,
            ci_use_g_per_kwh=300.0,
            duration_hours=100.0,
            lifetime_years=3.0,
        )
        assert report.operational_share + report.embodied_share == pytest.approx(1.0)

    def test_requires_exactly_one_energy_input(self, phone):
        with pytest.raises(ValueError, match="exactly one"):
            footprint(
                phone,
                ci_use_g_per_kwh=300.0,
                duration_hours=1.0,
                lifetime_years=3.0,
            )
        with pytest.raises(ValueError, match="exactly one"):
            footprint(
                phone,
                energy_kwh=1.0,
                energy=EnergyProfile(1.0, 1.0),
                ci_use_g_per_kwh=300.0,
                duration_hours=1.0,
                lifetime_years=3.0,
            )

    def test_energy_profile_path(self, phone):
        report = footprint(
            phone,
            energy=EnergyProfile(power_w=1000.0, duration_hours=1.0),
            ci_use_g_per_kwh=100.0,
            duration_hours=1.0,
            lifetime_years=1.0,
        )
        assert report.operational_g == pytest.approx(100.0)

    def test_zero_duration_means_no_embodied_charge(self, phone):
        report = footprint(
            phone,
            energy_kwh=0.0,
            ci_use_g_per_kwh=300.0,
            duration_hours=0.0,
            lifetime_years=3.0,
        )
        assert report.total_g == 0.0

    def test_device_footprint_charges_full_embodied(self, phone):
        report = device_footprint(
            phone,
            average_power_w=1.0,
            ci_use_g_per_kwh=300.0,
            lifetime_years=3.0,
        )
        assert report.lifetime_fraction == pytest.approx(1.0)
        assert report.amortized_embodied_g == pytest.approx(phone.embodied_g())

    def test_device_footprint_utilization_scales_energy(self, phone):
        full = device_footprint(
            phone, average_power_w=2.0, ci_use_g_per_kwh=300.0,
            lifetime_years=3.0, utilization=1.0,
        )
        half = device_footprint(
            phone, average_power_w=2.0, ci_use_g_per_kwh=300.0,
            lifetime_years=3.0, utilization=0.5,
        )
        assert half.operational_g == pytest.approx(full.operational_g / 2)

    def test_total_kg(self, phone):
        report = device_footprint(
            phone, average_power_w=0.0, ci_use_g_per_kwh=300.0, lifetime_years=3.0
        )
        assert report.total_kg == pytest.approx(phone.embodied_kg())
