"""Systematic crash-point torture: kill, salvage, resume, compare bits.

The durability layer (:mod:`repro.robustness.durability`) registers a
named crash point at every filesystem boundary it crosses.  This module
*proves* the crash-consistency contract at each of them, for real
workloads, by construction:

1. **Record** — run the workload under a recording
   :class:`~repro.robustness.faultinject.FaultyIO` and enumerate the
   boundary trace (which points fire, in what order), both for a fresh
   run and for a resume after a clean interrupt.
2. **Torture** — for every reached point, run the workload again with a
   fault armed at that point: a crash (real ``SIGKILL`` in a subprocess,
   or a simulated power loss + :class:`CrashPoint` in-process), a torn
   write, a dropped fsync paired with a later crash, a torn rename, or
   an ``ENOSPC``/``EIO`` error.
3. **Converge** — resume from whatever the crash left behind (salvage
   included) and assert the final result is **bit-identical** to the
   uninterrupted baseline.

Subprocess mode (``SIGKILL``) validates durability against the actual
kernel; it is used at ``workers=1``.  At ``workers=4`` the campaigns run
in-process with simulated power loss instead: the worker pool's
processes are daemonized, so SIGKILLing the parent mid-wave would orphan
them — the simulation covers the same boundaries without leaking
processes.

Driven by ``repro torture`` from the CLI, by the crash-consistency CI
job, and by ``tests/test_torture.py``.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import tempfile
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.errors import CheckpointError, ParameterError, RunInterrupted
from repro.robustness.durability import (
    CP_COMMITTED,
    CRASH_POINTS,
    atomic_write_json,
    use_durable_io,
)
from repro.robustness.faultinject import (
    IO_FAULT_CRASH,
    IO_FAULT_DROP_FSYNC,
    IO_FAULT_EIO,
    IO_FAULT_ENOSPC,
    IO_FAULT_TORN,
    IO_FAULT_TORN_RENAME,
    CrashPoint,
    FaultyIO,
    IOFault,
)

#: How many salvage/resume rounds a recovery may take before the
#: campaign declares the store non-convergent.
MAX_RESUME_ATTEMPTS = 5

#: Crash kinds exercised by :func:`run_kill_campaign`, with the point
#: suffix each applies to (``None`` = every reached point).
KILL_KINDS: dict[str, "str | None"] = {
    IO_FAULT_CRASH: None,
    IO_FAULT_TORN: ".write",
    IO_FAULT_TORN_RENAME: ".rename",
    IO_FAULT_DROP_FSYNC: ".fsync",
}

#: Error kinds exercised by :func:`run_error_campaign`.
ERROR_KINDS = (IO_FAULT_ENOSPC, IO_FAULT_EIO)


# --------------------------------------------------------------------------
# Workloads
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TortureWorkload:
    """One deterministic checkpointed workload the harness can torture.

    Attributes:
        name: Registry key (``repro torture --workload <name>``).
        description: One-line human description.
        run: ``run(checkpoint, resume, workers, cancel)`` executing the
            workload and returning its result as a name → float64 array
            mapping (the bit-identity comparison unit).
    """

    name: str
    description: str
    run: Callable


def _mc_workload(checkpoint, resume, workers, cancel):
    from repro.analysis.scenario import ActScenario
    from repro.robustness.checkpoint import run_monte_carlo_chunked

    result = run_monte_carlo_chunked(
        ActScenario(),
        draws=600,
        seed=20221,
        chunk_rows=64,
        checkpoint=checkpoint,
        resume=resume,
        policy=workers,
        cancel=cancel,
    )
    return {"samples": result.samples}


def _sweep_workload(checkpoint, resume, workers, cancel):
    from repro.analysis.scenario import ActScenario
    from repro.robustness.checkpoint import sweep_grid_batched_chunked

    grids = {
        "fab_yield": [0.6, 0.7, 0.8, 0.9, 1.0],
        "energy_kwh": [float(value) for value in range(1, 9)],
    }
    result = sweep_grid_batched_chunked(
        ActScenario(),
        grids,
        chunk_rows=8,
        checkpoint=checkpoint,
        resume=resume,
        policy=workers,
        cancel=cancel,
    )
    series = result.result
    return {
        name: getattr(series, name)
        for name in type(series).__dataclass_fields__
    }


def _schedule_workload(checkpoint, resume, workers, cancel):
    from repro.core.intensity import CarbonIntensityTrace
    from repro.robustness.checkpoint import run_schedule_sweep_chunked
    from repro.scheduling.sweep import ScheduleSweepSpec

    spec = ScheduleSweepSpec(
        trace=CarbonIntensityTrace(
            "torture",
            (400.0, 300.0, 100.0, 200.0, 500.0, 50.0, 450.0, 350.0),
        ),
        windows=12,
        jobs_per_window=3,
        slack_hours_max=12,
    )
    series = run_schedule_sweep_chunked(
        spec,
        chunk_rows=8,
        checkpoint_path=checkpoint,
        resume=resume,
        policy=workers,
        cancel=cancel,
    )
    return dict(series)


#: The workload registry, name → :class:`TortureWorkload`.
TORTURE_WORKLOADS: dict[str, TortureWorkload] = {
    "mc": TortureWorkload(
        "mc", "chunked Monte Carlo (600 draws, 64-row chunks)", _mc_workload
    ),
    "sweep": TortureWorkload(
        "sweep", "chunked grid sweep (40 rows, 8-row chunks)", _sweep_workload
    ),
    "schedule": TortureWorkload(
        "schedule",
        "chunked schedule policy sweep (12 windows, 8-row chunks)",
        _schedule_workload,
    ),
}


def _result_digest(result: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over the result arrays — the bit-identity token."""
    digest = hashlib.sha256()
    for name in sorted(result):
        array = np.ascontiguousarray(result[name])
        digest.update(name.encode("utf-8"))
        digest.update(array.dtype.str.encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _identical(
    left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]
) -> bool:
    return _result_digest(left) == _result_digest(right)


def _execute(
    workload: TortureWorkload,
    *,
    checkpoint: "str | None",
    resume: bool,
    workers: int,
    io=None,
    cancel=None,
    events_path: "str | None" = None,
    manifest_path: "str | None" = None,
):
    """Run a workload, optionally under an injected I/O layer.

    ``events_path`` attaches a JSONL event sink (so the ``obs.jsonl.*``
    crash points are exercised); ``manifest_path`` writes a result digest
    via the atomic protocol afterwards (exercising ``atomic.*``).
    """
    from repro.obs.context import RunContext, use_context
    from repro.obs.events import JsonlEventSink

    context = None
    with ExitStack() as stack:
        if events_path is not None:
            context = RunContext(sink=JsonlEventSink(events_path))
            stack.enter_context(use_context(context))
        if io is not None:
            stack.enter_context(use_durable_io(io))
        try:
            result = workload.run(checkpoint, resume, workers, cancel)
            if manifest_path is not None:
                atomic_write_json(
                    manifest_path, {"digest": _result_digest(result)}
                )
        finally:
            # Restore the real I/O layer (ExitStack unwinds on return
            # too, but the sink below must write through clean I/O).
            pass
    if context is not None:
        context.close()
    return result


def _interrupt(
    workload: TortureWorkload, checkpoint: str, workers: int
) -> None:
    """Leave a genuinely partial (but healthy) store at ``checkpoint``."""
    from repro.robustness.checkpoint import CountingCancelToken

    try:
        _execute(
            workload,
            checkpoint=checkpoint,
            resume=False,
            workers=workers,
            cancel=CountingCancelToken(1),
        )
    except RunInterrupted:
        return
    raise ParameterError(
        f"workload {workload.name!r} completed before the interrupt token "
        "fired; shrink chunk_rows or grow the workload"
    )


def _recover(
    workload: TortureWorkload,
    checkpoint: str,
    workers: int,
    events_path: "str | None" = None,
):
    """Resume a (possibly damaged) store to completion, salvaging as needed.

    Returns ``(result, attempts)``.  A store with no committed state
    (reason ``"missing"``) restarts fresh — that is the contract for a
    crash before the first commit.
    """
    import warnings as warnings_module

    attempts = 0
    while attempts < MAX_RESUME_ATTEMPTS:
        attempts += 1
        try:
            with warnings_module.catch_warnings():
                warnings_module.simplefilter("ignore")
                return (
                    _execute(
                        workload,
                        checkpoint=checkpoint,
                        resume=True,
                        workers=workers,
                        events_path=events_path,
                    ),
                    attempts,
                )
        except CheckpointError as error:
            if error.reason != "missing":
                raise
            return (
                _execute(
                    workload,
                    checkpoint=checkpoint,
                    resume=False,
                    workers=workers,
                    events_path=events_path,
                ),
                attempts,
            )
    raise CheckpointError(
        f"store {checkpoint!r} did not converge within "
        f"{MAX_RESUME_ATTEMPTS} resume attempts",
        path=checkpoint,
        reason="corrupt",
    )


# --------------------------------------------------------------------------
# Campaign results
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PointOutcome:
    """What happened when one fault was armed at one crash point.

    Attributes:
        point: The crash-point name the fault was armed at.
        kind: The fault kind (``crash``, ``torn``, ``enospc``, ...).
        phase: ``"fresh"`` (fault during an initial run) or ``"resume"``
            (fault while resuming an interrupted store).
        fired: Whether the fault actually triggered (a point may be
            unreached in a given phase).
        identical: ``True`` when the converged result matched the
            uninterrupted baseline bit-for-bit; ``None`` when the fault
            never fired.
        detail: Failure diagnostics (empty on success).
    """

    point: str
    kind: str
    phase: str
    fired: bool
    identical: "bool | None"
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Whether this outcome upholds the contract."""
        return self.identical is not False and not self.detail


@dataclass
class CampaignResult:
    """The aggregated verdict of one torture campaign.

    Attributes:
        workload: Workload name the campaign ran.
        workers: Worker count used for every run.
        mode: ``"subprocess"`` (real SIGKILL) or ``"inprocess"``
            (simulated power loss).
        outcomes: One :class:`PointOutcome` per armed fault.
    """

    workload: str
    workers: int
    mode: str
    outcomes: list[PointOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every fired fault converged bit-identically."""
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def points_covered(self) -> tuple[str, ...]:
        """Distinct crash points at which a fault actually fired."""
        return tuple(
            sorted({o.point for o in self.outcomes if o.fired})
        )

    def summary(self) -> str:
        """One operator-readable line."""
        fired = sum(1 for o in self.outcomes if o.fired)
        failed = [o for o in self.outcomes if not o.ok]
        line = (
            f"{self.workload} (workers={self.workers}, {self.mode}): "
            f"{fired}/{len(self.outcomes)} faults fired across "
            f"{len(self.points_covered)} points"
        )
        if failed:
            worst = ", ".join(
                f"{o.kind}@{o.point}[{o.phase}]" for o in failed[:5]
            )
            return f"{line}; FAILED {len(failed)}: {worst}"
        return f"{line}; all converged bit-identically"

    def as_dict(self) -> dict:
        """JSON-ready rendering (for ``repro torture --json``)."""
        return {
            "workload": self.workload,
            "workers": self.workers,
            "mode": self.mode,
            "passed": self.passed,
            "points_covered": list(self.points_covered),
            "outcomes": [
                {
                    "point": o.point,
                    "kind": o.kind,
                    "phase": o.phase,
                    "fired": o.fired,
                    "identical": o.identical,
                    "detail": o.detail,
                }
                for o in self.outcomes
            ],
        }


# --------------------------------------------------------------------------
# Campaigns
# --------------------------------------------------------------------------


def run_record_campaign(
    workload: str = "mc", *, workers: int = 1
) -> dict[str, tuple[str, ...]]:
    """Enumerate the crash points a workload reaches, per phase.

    Returns ``{"fresh": trace, "resume": trace}`` — the ordered boundary
    traces of an uninterrupted checkpointed run and of a resume after a
    clean interrupt.  The torture campaigns arm faults only at points a
    phase actually reaches.
    """
    spec = _workload(workload)
    with tempfile.TemporaryDirectory(prefix="repro-torture-") as base:
        recorder = FaultyIO()
        _execute(
            spec,
            checkpoint=os.path.join(base, "fresh.ck"),
            resume=False,
            workers=workers,
            io=recorder,
            events_path=os.path.join(base, "fresh.events.jsonl"),
            manifest_path=os.path.join(base, "fresh.json"),
        )
        fresh = tuple(recorder.trace)
        resume_path = os.path.join(base, "resume.ck")
        _interrupt(spec, resume_path, workers)
        resumer = FaultyIO()
        _execute(
            spec,
            checkpoint=resume_path,
            resume=True,
            workers=workers,
            io=resumer,
            events_path=os.path.join(base, "resume.events.jsonl"),
            manifest_path=os.path.join(base, "resume.json"),
        )
        return {"fresh": fresh, "resume": tuple(resumer.trace)}


def _workload(name: str) -> TortureWorkload:
    if name not in TORTURE_WORKLOADS:
        raise ParameterError(
            f"unknown torture workload {name!r} (available: "
            f"{', '.join(sorted(TORTURE_WORKLOADS))})"
        )
    return TORTURE_WORKLOADS[name]


def _unique_in_order(trace: Sequence[str]) -> list[str]:
    seen: set[str] = set()
    ordered = []
    for point in trace:
        if point not in seen:
            seen.add(point)
            ordered.append(point)
    return ordered


def _arm(kind: str, point: str, trace: Sequence[str]) -> "list[IOFault] | None":
    """The fault list for ``kind`` at ``point``, or ``None`` if inapplicable."""
    suffix = KILL_KINDS.get(kind)
    if suffix is not None and not point.endswith(suffix):
        return None
    if kind == IO_FAULT_DROP_FSYNC:
        # Dropping an fsync is only observable if the process dies after
        # the commit that lied about it: pair it with a crash at the
        # next committed-marker occurrence in the recorded trace.
        index = trace.index(point) if point in trace else -1
        if index < 0:
            return None
        commits_before = sum(
            1 for entry in trace[: index + 1] if entry == CP_COMMITTED
        )
        if CP_COMMITTED not in trace[index + 1 :]:
            return None
        return [
            IOFault(IO_FAULT_DROP_FSYNC, point),
            IOFault(IO_FAULT_CRASH, CP_COMMITTED, occurrence=commits_before + 1),
        ]
    return [IOFault(kind, point)]


def run_kill_campaign(
    workload: str = "mc",
    *,
    workers: int = 1,
    mode: "str | None" = None,
    kinds: Sequence[str] = (IO_FAULT_CRASH,),
    points: "Sequence[str] | None" = None,
) -> CampaignResult:
    """Kill the workload at every reached crash point; prove convergence.

    For each fault kind in ``kinds`` (see :data:`KILL_KINDS`), each phase
    (fresh run / resume of an interrupted store), and each applicable
    crash point the phase reaches: arm the fault, let it kill the run
    (real ``SIGKILL`` in ``"subprocess"`` mode, simulated power loss in
    ``"inprocess"`` mode), then resume the survivor and assert the final
    result is bit-identical to the uninterrupted baseline.

    ``mode=None`` picks ``"subprocess"`` at ``workers=1`` and
    ``"inprocess"`` otherwise (SIGKILLing a parent mid-wave would orphan
    its daemonized pool workers).  Subprocess mode supports only the
    ``crash`` kind; the others need the in-process power-loss simulation.
    """
    spec = _workload(workload)
    if mode is None:
        mode = "subprocess" if workers == 1 else "inprocess"
    if mode not in ("subprocess", "inprocess"):
        raise ParameterError(f"unknown torture mode {mode!r}")
    if mode == "subprocess":
        unsupported = [k for k in kinds if k != IO_FAULT_CRASH]
        if unsupported:
            raise ParameterError(
                f"subprocess mode only supports 'crash' faults, got "
                f"{unsupported}"
            )
    for kind in kinds:
        if kind not in KILL_KINDS:
            raise ParameterError(
                f"unknown kill-campaign kind {kind!r} "
                f"(available: {', '.join(KILL_KINDS)})"
            )
    result = CampaignResult(workload=workload, workers=workers, mode=mode)
    traces = run_record_campaign(workload, workers=workers)
    with tempfile.TemporaryDirectory(prefix="repro-torture-") as base:
        baseline = _execute(
            spec, checkpoint=None, resume=False, workers=workers
        )
        iteration = 0
        for kind in kinds:
            for phase in ("fresh", "resume"):
                trace = traces[phase]
                for point in _unique_in_order(trace):
                    if points is not None and point not in points:
                        continue
                    faults = _arm(kind, point, trace)
                    if faults is None:
                        continue
                    iteration += 1
                    result.outcomes.append(
                        _torture_once(
                            spec,
                            baseline,
                            kind=kind,
                            phase=phase,
                            point=point,
                            faults=faults,
                            workers=workers,
                            mode=mode,
                            scratch=os.path.join(base, str(iteration)),
                        )
                    )
    return result


def _torture_once(
    spec: TortureWorkload,
    baseline: Mapping[str, np.ndarray],
    *,
    kind: str,
    phase: str,
    point: str,
    faults: Sequence[IOFault],
    workers: int,
    mode: str,
    scratch: str,
) -> PointOutcome:
    os.makedirs(scratch, exist_ok=True)
    checkpoint = os.path.join(scratch, "run.ck")
    events = os.path.join(scratch, "events.jsonl")
    manifest = os.path.join(scratch, "result.json")
    if phase == "resume":
        _interrupt(spec, checkpoint, workers)
    fired = False
    detail = ""
    if mode == "subprocess":
        code = _run_child(
            spec.name,
            checkpoint=checkpoint,
            events=events,
            manifest=manifest,
            resume=(phase == "resume"),
            workers=workers,
            faults=faults,
        )
        if code == -9:  # killed by the armed SIGKILL
            fired = True
        elif code != 0:
            return PointOutcome(
                point,
                kind,
                phase,
                fired=True,
                identical=False,
                detail=f"child exited with {code} instead of SIGKILL",
            )
    else:
        io = FaultyIO(faults, mode="exception")
        try:
            _execute(
                spec,
                checkpoint=checkpoint,
                resume=(phase == "resume"),
                workers=workers,
                io=io,
                events_path=events,
                manifest_path=manifest,
            )
        except CrashPoint:
            fired = True
    if not fired:
        return PointOutcome(point, kind, phase, fired=False, identical=None)
    try:
        recovered, _ = _recover(spec, checkpoint, workers)
    except Exception as error:  # noqa: BLE001 - verdict, not control flow
        return PointOutcome(
            point,
            kind,
            phase,
            fired=True,
            identical=False,
            detail=f"recovery failed: {type(error).__name__}: {error}",
        )
    identical = _identical(recovered, baseline)
    if not identical:
        detail = "recovered result differs from uninterrupted baseline"
    return PointOutcome(
        point, kind, phase, fired=True, identical=identical, detail=detail
    )


def run_error_campaign(
    workload: str = "mc",
    *,
    workers: int = 1,
    kinds: Sequence[str] = ERROR_KINDS,
    points: "Sequence[str] | None" = None,
) -> CampaignResult:
    """Inject ``ENOSPC``/``EIO`` at every store boundary; prove recovery.

    For each error kind and each ``store.*``/``atomic.*`` point the fresh
    run reaches: arm the error, assert the run fails with a *typed* error
    (:class:`~repro.core.errors.CheckpointError` with reason ``"io"`` from
    the checkpoint layer, or the raw ``OSError`` from the generic atomic
    writer), then resume with the fault cleared and assert bit-identical
    convergence.  Runs in-process (an injected errno needs no subprocess).
    """
    spec = _workload(workload)
    for kind in kinds:
        if kind not in ERROR_KINDS:
            raise ParameterError(
                f"unknown error-campaign kind {kind!r} "
                f"(available: {', '.join(ERROR_KINDS)})"
            )
    result = CampaignResult(
        workload=workload, workers=workers, mode="inprocess"
    )
    traces = run_record_campaign(workload, workers=workers)
    eligible = [
        p
        for p in _unique_in_order(traces["fresh"])
        if p.startswith(("store.", "atomic."))
        and (points is None or p in points)
    ]
    with tempfile.TemporaryDirectory(prefix="repro-torture-") as base:
        baseline = _execute(
            spec, checkpoint=None, resume=False, workers=workers
        )
        for index, (kind, point) in enumerate(
            (kind, point) for kind in kinds for point in eligible
        ):
            scratch = os.path.join(base, str(index))
            os.makedirs(scratch, exist_ok=True)
            checkpoint = os.path.join(scratch, "run.ck")
            manifest = os.path.join(scratch, "result.json")
            io = FaultyIO([IOFault(kind, point)])
            fired = False
            detail = ""
            try:
                _execute(
                    spec,
                    checkpoint=checkpoint,
                    resume=False,
                    workers=workers,
                    io=io,
                    manifest_path=manifest,
                )
            except CheckpointError as error:
                fired = True
                if error.reason != "io":
                    detail = (
                        f"expected reason 'io', got {error.reason!r}: {error}"
                    )
            except OSError as error:
                fired = True
                if not point.startswith("atomic."):
                    detail = f"raw OSError escaped the checkpoint layer: {error}"
            if not fired:
                result.outcomes.append(
                    PointOutcome(point, kind, "fresh", False, None)
                )
                continue
            if detail:
                result.outcomes.append(
                    PointOutcome(point, kind, "fresh", True, False, detail)
                )
                continue
            try:
                recovered, _ = _recover(spec, checkpoint, workers)
            except Exception as error:  # noqa: BLE001 - verdict, not control
                result.outcomes.append(
                    PointOutcome(
                        point,
                        kind,
                        "fresh",
                        True,
                        False,
                        f"recovery failed: {type(error).__name__}: {error}",
                    )
                )
                continue
            identical = _identical(recovered, baseline)
            result.outcomes.append(
                PointOutcome(
                    point,
                    kind,
                    "fresh",
                    True,
                    identical,
                    "" if identical else "recovered result differs",
                )
            )
    return result


# --------------------------------------------------------------------------
# Subprocess child
# --------------------------------------------------------------------------


def _run_child(
    workload: str,
    *,
    checkpoint: str,
    events: str,
    manifest: str,
    resume: bool,
    workers: int,
    faults: Sequence[IOFault],
) -> int:
    """Spawn a child that runs the workload with real-SIGKILL faults armed."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    command = [
        sys.executable,
        "-m",
        "repro.robustness.torture",
        "--child",
        "--workload",
        workload,
        "--checkpoint",
        checkpoint,
        "--events",
        events,
        "--manifest",
        manifest,
        "--workers",
        str(workers),
    ]
    if resume:
        command.append("--resume")
    for fault in faults:
        command += ["--fault", f"{fault.kind}:{fault.point}:{fault.occurrence}"]
    completed = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=300
    )
    if completed.returncode not in (0, -9):
        sys.stderr.write(completed.stderr[-2000:])
    return completed.returncode


def _child_main(args: "argparse.Namespace") -> int:
    """Torture-child entry: arm real-SIGKILL faults and run the workload."""
    from repro.robustness.durability import install_durable_io

    faults = []
    for token in args.fault or []:
        kind, point, occurrence = token.rsplit(":", 2)
        faults.append(IOFault(kind, point, occurrence=int(occurrence)))
    install_durable_io(FaultyIO(faults, mode="sigkill"))
    spec = _workload(args.workload)
    _execute(
        spec,
        checkpoint=args.checkpoint,
        resume=args.resume,
        workers=args.workers,
        events_path=args.events,
        manifest_path=args.manifest,
    )
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    """``python -m repro.robustness.torture`` — the subprocess child."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", action="store_true")
    parser.add_argument("--workload", default="mc")
    parser.add_argument("--checkpoint", required=True)
    parser.add_argument("--events", default=None)
    parser.add_argument("--manifest", default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--fault", action="append", default=[])
    args = parser.parse_args(argv)
    if not args.child:
        parser.error("this entry point is the torture child; use `repro torture`")
    return _child_main(args)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
