"""Benchmark: regenerate Table 4: CPU/GPU/DSP inference latency, power, OPCF, ECF."""


def test_bench_tab4(verify):
    """Table 4: CPU/GPU/DSP inference latency, power, OPCF, ECF — regenerate, print, and verify against the paper."""
    verify("tab4")
