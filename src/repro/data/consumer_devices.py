"""A consumer-device life-cycle survey (after "Chasing Carbon", HPCA'21).

The paper's motivation rests on Gupta et al.'s survey of consumer devices,
data centers, and fabs: "the majority of emissions in computing platforms
comes from hardware manufacturing."  This module encodes a representative
device survey (life-cycle phase shares per product class, consistent with
published product environmental reports) and the aggregate statistics the
motivation cites, so the Figure 1 story can be checked beyond two iPhones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import UnknownEntryError
from repro.data.provenance import INDUSTRY_REPORT, Source

_SURVEY = Source(
    INDUSTRY_REPORT,
    "product environmental reports (Chasing Carbon-style survey)",
    "representative per-class values; always-on / plugged-in devices "
    "remain use-dominated, battery devices are manufacturing-dominated",
)


@dataclass(frozen=True)
class SurveyDevice:
    """One surveyed product's life-cycle split.

    Attributes:
        name: Canonical identifier.
        device_class: Product class (wearable / phone / tablet / laptop /
            desktop / speaker / console).
        year: Report year.
        total_kg: Whole-life footprint.
        manufacturing_share / use_share / transport_share / eol_share:
            Phase fractions (sum to 1).
    """

    name: str
    device_class: str
    year: int
    total_kg: float
    manufacturing_share: float
    use_share: float
    transport_share: float
    eol_share: float
    source: Source = _SURVEY

    @property
    def manufacturing_dominated(self) -> bool:
        return self.manufacturing_share > self.use_share


SURVEY_DEVICES: dict[str, SurveyDevice] = {
    device.name: device
    for device in (
        SurveyDevice("smartwatch", "wearable", 2019, 10.0, 0.80, 0.14, 0.05, 0.01),
        SurveyDevice("fitness_band", "wearable", 2019, 5.5, 0.82, 0.12, 0.05, 0.01),
        SurveyDevice("iphone11_class", "phone", 2019, 66.2, 0.79, 0.17, 0.03, 0.01),
        SurveyDevice("android_flagship", "phone", 2019, 60.0, 0.76, 0.19, 0.04, 0.01),
        SurveyDevice("tablet_10in", "tablet", 2019, 80.6, 0.79, 0.17, 0.03, 0.01),
        SurveyDevice("laptop_13in", "laptop", 2019, 250.0, 0.75, 0.20, 0.04, 0.01),
        SurveyDevice("laptop_15in", "laptop", 2019, 300.0, 0.70, 0.25, 0.04, 0.01),
        SurveyDevice("desktop_tower", "desktop", 2019, 620.0, 0.45, 0.51, 0.03, 0.01),
        SurveyDevice("all_in_one", "desktop", 2019, 560.0, 0.52, 0.44, 0.03, 0.01),
        SurveyDevice("smart_speaker", "speaker", 2019, 35.0, 0.40, 0.55, 0.04, 0.01),
        SurveyDevice("game_console", "console", 2019, 480.0, 0.35, 0.61, 0.03, 0.01),
    )
}


def survey_device(name: str) -> SurveyDevice:
    """Look up a surveyed device by name."""
    key = name.strip().lower().replace(" ", "_").replace("-", "_")
    try:
        return SURVEY_DEVICES[key]
    except KeyError:
        raise UnknownEntryError("survey device", name, SURVEY_DEVICES) from None


def devices_in_class(device_class: str) -> tuple[SurveyDevice, ...]:
    """All surveyed devices of one class."""
    matches = tuple(
        device
        for device in SURVEY_DEVICES.values()
        if device.device_class == device_class
    )
    if not matches:
        classes = {device.device_class for device in SURVEY_DEVICES.values()}
        raise UnknownEntryError("device class", device_class, classes)
    return matches


def manufacturing_dominated_fraction() -> float:
    """Share of surveyed devices whose manufacturing phase dominates.

    The paper's motivation: "the majority of emissions in computing
    platforms comes from hardware manufacturing" — true for the
    battery-powered majority of the survey.
    """
    devices = SURVEY_DEVICES.values()
    dominated = sum(device.manufacturing_dominated for device in devices)
    return dominated / len(devices)


def average_manufacturing_share(device_class: str | None = None) -> float:
    """Mean manufacturing share, optionally restricted to one class."""
    devices = (
        devices_in_class(device_class)
        if device_class is not None
        else tuple(SURVEY_DEVICES.values())
    )
    return sum(device.manufacturing_share for device in devices) / len(devices)
