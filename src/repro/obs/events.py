"""Structured event sinks: the JSONL audit stream of a traced run.

Every observable happening — run start/end, span enter/exit, checkpoint
save/restore, chunk progress — is one flat JSON object per line.  The
schema is deliberately minimal and stable:

* ``ts`` — wall-clock Unix timestamp (seconds, float);
* ``event`` — the event type (``run_start``, ``span_start``, ``span_end``,
  ``checkpoint_save``, ``checkpoint_restore``, ``chunk``, ``metric``,
  ``run_end``);
* everything else — event-specific fields (span ``name`` and ``attributes``,
  chunk ``completed``/``total``, the final metrics snapshot, ...).

A line-oriented format means a killed run still leaves a readable prefix,
and ``jq``/pandas can consume the stream without a schema registry.
:func:`read_events` is the matching consumer: it tolerates exactly the
damage a crash can cause (a torn *trailing* line) and refuses the damage
a crash cannot (garbage in the middle of the stream).

Path-based sinks write through the process-wide
:class:`~repro.robustness.durability.DurableIO` layer, so the torture
harness can kill a run mid-line and prove the stream stays parseable.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Mapping

from repro.core.errors import CheckpointError


class EventSink:
    """Base sink: silently drops every event (the null object)."""

    def emit(self, event: str, **fields: object) -> None:
        """Record one event (no-op in the base sink)."""

    def close(self) -> None:
        """Flush and release any underlying resources (no-op here)."""


def _jsonable(value: object) -> object:
    """Coerce numpy scalars / paths / exotic values into JSON-safe types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    item = getattr(value, "item", None)  # numpy scalar
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


class MemoryEventSink(EventSink):
    """Keeps every event in a list — the test- and profile-friendly sink."""

    def __init__(self) -> None:
        self.events: list[dict[str, object]] = []
        self._lock = threading.Lock()

    def emit(self, event: str, **fields: object) -> None:
        record: dict[str, object] = {"ts": time.time(), "event": event}
        record.update({key: _jsonable(value) for key, value in fields.items()})
        with self._lock:
            self.events.append(record)

    def of_type(self, event: str) -> list[dict[str, object]]:
        """Every recorded event of one type, in order."""
        with self._lock:
            return [
                record for record in self.events if record["event"] == event
            ]


class JsonlEventSink(EventSink):
    """Appends one JSON object per event to a file (or file-like object).

    The file is opened lazily on the first event and flushed per line, so
    an interrupted run leaves a valid (truncated) JSONL prefix.  Writes
    are serialized under a lock, so concurrent request threads (the
    service's access log) never interleave half-lines.
    """

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self.path: str | None = target
            self._handle: IO[str] | None = None
        else:
            self.path = None
            self._handle = target
        self.emitted = 0
        self._lock = threading.Lock()

    @staticmethod
    def _io():
        # Imported lazily: the durability module lives in the robustness
        # package, whose __init__ transitively imports this module.
        from repro.robustness import durability

        return durability, durability.current_io()

    def _file(self) -> IO[str]:
        if self._handle is None:
            assert self.path is not None
            durability, layer = self._io()
            self._handle = layer.open(
                self.path, "w", durability.CP_JSONL_OPEN
            )
        return self._handle

    def emit(self, event: str, **fields: object) -> None:
        record: dict[str, object] = {"ts": time.time(), "event": event}
        record.update({key: _jsonable(value) for key, value in fields.items()})
        line = json.dumps(record) + "\n"
        with self._lock:
            handle = self._file()
            if self.path is not None:
                durability, layer = self._io()
                layer.write(handle, line, durability.CP_JSONL_WRITE)
                layer.flush(handle, durability.CP_JSONL_FLUSHED)
            else:
                handle.write(line)
                handle.flush()
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self.path is not None:
                self._handle.close()
                self._handle = None


def read_events(
    path: str, *, strict: bool = False
) -> list[dict[str, object]]:
    """Parse a JSONL event stream, tolerating a torn trailing line.

    A crash mid-append can leave exactly one kind of damage: an
    incomplete *final* line.  That line is silently dropped (unless
    ``strict=True``).  Anything else — unparseable JSON *followed by
    more lines*, or a non-object record — cannot be produced by the
    append-and-flush protocol and raises
    :class:`~repro.core.errors.CheckpointError` (reason ``"corrupt"``)
    instead of being skipped: an audit stream with holes in the middle
    must not pass for a healthy one.

    Args:
        path: The JSONL file to read.
        strict: Raise on a torn trailing line instead of dropping it.

    Returns:
        The parsed event records, in emission order.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        content = handle.read()
    events: list[dict[str, object]] = []
    lines = content.split("\n")
    # A healthy stream ends with "\n", so the final split element is "".
    terminated = lines and lines[-1] == ""
    if terminated:
        lines = lines[:-1]
    for index, line in enumerate(lines):
        is_last = index == len(lines) - 1
        torn_tail_allowed = is_last and not terminated and not strict
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("event record is not a JSON object")
        except ValueError as error:
            if torn_tail_allowed:
                break
            raise CheckpointError(
                f"event stream {path!r} is corrupt at line {index + 1}: "
                f"{error}",
                path=path,
                reason="corrupt",
            ) from error
        events.append(record)
    return events
