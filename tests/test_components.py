"""Component embodied-carbon models (Eq. 4, 6, 7, 8)."""

import pytest

from repro.core.components import (
    CATEGORY_DRAM,
    CATEGORY_SOC,
    DramComponent,
    FixedCarbonComponent,
    HddComponent,
    LogicComponent,
    SsdComponent,
)
from repro.core.errors import ParameterError
from repro.fabs.fab import default_fab
from repro.fabs.yield_models import FixedYield


class TestLogicComponent:
    def test_embodied_is_area_times_cpa(self):
        die = LogicComponent.at_node("SoC", 100.0, "7")
        assert die.embodied_g() == pytest.approx(1.0 * die.cpa_g_per_cm2())

    def test_area_conversion(self):
        die = LogicComponent.at_node("SoC", 98.5, "7")
        assert die.area_cm2 == pytest.approx(0.985)

    def test_embodied_linear_in_area_with_fixed_yield(self):
        from repro.fabs.fab import FabScenario

        fab = FabScenario.for_node("7", yield_model=FixedYield(0.9))
        small = LogicComponent("a", 50.0, fab)
        large = LogicComponent("b", 100.0, fab)
        assert large.embodied_g() == pytest.approx(2 * small.embodied_g())

    def test_newer_node_more_carbon_at_same_area(self):
        old = LogicComponent.at_node("a", 100.0, "28")
        new = LogicComponent.at_node("b", 100.0, "5")
        assert new.embodied_g() > old.embodied_g()

    def test_with_area_copies(self):
        die = LogicComponent.at_node("SoC", 100.0, "7")
        bigger = die.with_area(200.0)
        assert bigger.area_mm2 == 200.0
        assert die.area_mm2 == 100.0
        assert bigger.fab == die.fab

    def test_default_category_and_ics(self):
        die = LogicComponent.at_node("SoC", 10.0, "7")
        assert die.category == CATEGORY_SOC
        assert die.ic_count == 1

    def test_multi_ic_component(self):
        die = LogicComponent.at_node("cameras", 90.0, "28", ics=3)
        assert die.ic_count == 3

    def test_zero_area_rejected(self):
        with pytest.raises(ParameterError):
            LogicComponent.at_node("SoC", 0.0, "7")

    def test_negative_ics_rejected(self):
        with pytest.raises(ValueError):
            LogicComponent("x", 10.0, default_fab("7"), ics=-1)


class TestMemoryStorageComponents:
    def test_dram_eq6(self):
        dram = DramComponent.of("DRAM", 8, "lpddr4")
        assert dram.embodied_g() == pytest.approx(8 * 48.0)

    def test_dram_default_technology(self):
        dram = DramComponent("DRAM", 4)
        assert dram.technology.name == "lpddr4"
        assert dram.category == CATEGORY_DRAM

    def test_dram_zero_capacity_is_zero_carbon(self):
        assert DramComponent.of("none", 0).embodied_g() == 0.0

    def test_dram_negative_capacity_rejected(self):
        with pytest.raises(ParameterError):
            DramComponent.of("bad", -1)

    def test_ssd_eq8(self):
        ssd = SsdComponent.of("SSD", 512, "nand_10nm")
        assert ssd.embodied_g() == pytest.approx(512 * 10.0)

    def test_ssd_technology_selection_matters(self):
        old = SsdComponent.of("old", 100, "nand_30nm")
        new = SsdComponent.of("new", 100, "nand_v3_tlc")
        assert old.embodied_g() > new.embodied_g()

    def test_hdd_eq7(self):
        hdd = HddComponent.of("HDD", 4000, "exos_x12")
        assert hdd.embodied_g() == pytest.approx(4000 * 1.14)

    def test_hdd_default_model(self):
        assert HddComponent("HDD", 1000).model.name == "barracuda"

    def test_fractional_capacity_supported(self):
        # The NPU buffer DRAM is 0.224 GB.
        dram = DramComponent.of("buffer", 0.224, "lpddr4")
        assert dram.embodied_g() == pytest.approx(10.752)


class TestFixedCarbonComponent:
    def test_passthrough(self):
        part = FixedCarbonComponent("battery", 5000.0)
        assert part.embodied_g() == 5000.0

    def test_default_contributes_no_packaging(self):
        assert FixedCarbonComponent("battery", 5000.0).ic_count == 0

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            FixedCarbonComponent("bad", -1.0)
