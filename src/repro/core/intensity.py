"""Time-varying carbon intensity of electricity.

The appendix notes that "while these are average values, carbon intensity
can fluctuate over time" — renewable-heavy grids swing hour by hour.  This
module provides intensity *traces* so use-phase emissions can be computed
against a realistic grid instead of one annual average, plus synthetic
profiles (a solar-shaped diurnal grid) and carbon-aware scheduling helpers
(run flexible load in the greenest hours — the "renewable energy driven
hardware" lever of the paper's Reduce tenet).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ParameterError
from repro.core.parameters import require_non_negative, require_positive

HOURS_PER_DAY = 24


@dataclass(frozen=True)
class CarbonIntensityTrace:
    """An hourly carbon-intensity profile that repeats periodically.

    Attributes:
        name: Display name.
        hourly_g_per_kwh: One period of hourly intensities (g CO2/kWh);
            hour ``t`` uses entry ``t % len``.
    """

    name: str
    hourly_g_per_kwh: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "hourly_g_per_kwh", tuple(float(v) for v in self.hourly_g_per_kwh)
        )
        if not self.hourly_g_per_kwh:
            raise ParameterError("a trace needs at least one hourly value")
        for value in self.hourly_g_per_kwh:
            require_non_negative("hourly carbon intensity", value)

    def __len__(self) -> int:
        return len(self.hourly_g_per_kwh)

    def at_hour(self, hour: int) -> float:
        """Intensity during hour ``hour`` (wraps around the period).

        ``hour`` is a simulation hour, so it must be non-negative: Python's
        modulo would otherwise wrap ``-1`` to the *last* trace entry and
        silently hand schedulers an intensity for an hour that never
        happened.
        """
        if hour < 0:
            raise ParameterError(
                f"hour must be non-negative, got {hour} (negative hours "
                "would silently wrap to the end of the trace)"
            )
        return self.hourly_g_per_kwh[hour % len(self.hourly_g_per_kwh)]

    @property
    def average(self) -> float:
        """Period-average intensity — what a flat-rate model would use."""
        return sum(self.hourly_g_per_kwh) / len(self.hourly_g_per_kwh)

    @property
    def minimum(self) -> float:
        """The greenest hour's intensity."""
        return min(self.hourly_g_per_kwh)

    def greenest_hours(self, count: int) -> tuple[int, ...]:
        """The ``count`` hours with the lowest intensity, greenest first."""
        require_positive("count", count)
        if count > len(self.hourly_g_per_kwh):
            raise ParameterError(
                f"asked for {count} hours from a {len(self)}-hour trace"
            )
        ranked = sorted(
            range(len(self.hourly_g_per_kwh)),
            key=lambda hour: (self.hourly_g_per_kwh[hour], hour),
        )
        return tuple(ranked[:count])


def constant_trace(ci_g_per_kwh: float, name: str = "constant") -> CarbonIntensityTrace:
    """A flat trace — reduces every computation to the average-CI model."""
    require_non_negative("ci_g_per_kwh", ci_g_per_kwh)
    return CarbonIntensityTrace(name, (ci_g_per_kwh,) * HOURS_PER_DAY)


def solar_diurnal_trace(
    base_ci_g_per_kwh: float,
    solar_share_at_noon: float = 0.6,
    solar_ci_g_per_kwh: float = 41.0,
    name: str = "solar diurnal",
) -> CarbonIntensityTrace:
    """A synthetic grid where solar displaces the base supply around noon.

    Solar output follows a half-sine between 06:00 and 18:00, peaking at
    ``solar_share_at_noon`` of demand; the remainder comes from the base
    supply at ``base_ci_g_per_kwh``.
    """
    require_non_negative("base_ci_g_per_kwh", base_ci_g_per_kwh)
    if not 0.0 <= solar_share_at_noon <= 1.0:
        raise ParameterError(
            f"solar_share_at_noon must be in [0, 1], got {solar_share_at_noon}"
        )
    hours = []
    for hour in range(HOURS_PER_DAY):
        if 6 <= hour <= 18:
            share = solar_share_at_noon * math.sin(math.pi * (hour - 6) / 12.0)
        else:
            share = 0.0
        hours.append(
            base_ci_g_per_kwh * (1.0 - share) + solar_ci_g_per_kwh * share
        )
    return CarbonIntensityTrace(name, tuple(hours))


def trace_footprint_g(
    hourly_energy_kwh: Sequence[float],
    trace: CarbonIntensityTrace,
    start_hour: int = 0,
) -> float:
    """Eq. 2 evaluated hour by hour against a trace.

    Args:
        hourly_energy_kwh: Energy drawn in each consecutive hour.
        trace: The grid's intensity profile.
        start_hour: The trace hour at which the load begins.
    """
    total = 0.0
    for offset, energy in enumerate(hourly_energy_kwh):
        require_non_negative("hourly energy", energy)
        total += energy * trace.at_hour(start_hour + offset)
    return total


def greenest_window_footprint_g(
    energy_kwh: float,
    duration_hours: int,
    trace: CarbonIntensityTrace,
) -> tuple[int, float]:
    """Best-case emissions of a deferrable load of ``duration_hours``.

    Slides a contiguous window over one trace period and returns
    (best start hour, emissions there), assuming the energy spreads evenly
    across the window.  This quantifies the carbon-aware-scheduling
    opportunity a flat-average model cannot see.
    """
    require_non_negative("energy_kwh", energy_kwh)
    require_positive("duration_hours", duration_hours)
    if duration_hours > len(trace):
        raise ParameterError(
            f"window of {duration_hours}h exceeds the {len(trace)}h trace period"
        )
    per_hour = energy_kwh / duration_hours
    best_start, best_total = 0, math.inf
    for start in range(len(trace)):
        total = trace_footprint_g((per_hour,) * duration_hours, trace, start)
        if total < best_total:
            best_start, best_total = start, total
    return best_start, best_total


def scheduling_saving(
    duration_hours: int, trace: CarbonIntensityTrace
) -> float:
    """Emission ratio of naive (flat-average) vs carbon-aware placement.

    Returns how many times dirtier an average placement of a
    ``duration_hours`` deferrable load is compared to the greenest window
    (>= 1; exactly 1 on a flat trace).
    """
    _, best = greenest_window_footprint_g(1.0, duration_hours, trace)
    average = trace.average  # 1 kWh at the average intensity
    if best == 0.0:
        return math.inf if average > 0 else 1.0
    return average / best
