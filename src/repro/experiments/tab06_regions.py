"""Table 6: global carbon efficiency of electricity by region."""

from __future__ import annotations

from repro.data.regions import REGIONS
from repro.experiments.base import ExperimentResult, check_close, check_true

EXPERIMENT_ID = "tab6"
TITLE = "Regional grid carbon intensities (world ... Iceland)"

#: The paper's Table 6 values, verbatim.
PAPER_VALUES = {
    "world": 301.0,
    "india": 725.0,
    "australia": 597.0,
    "taiwan": 583.0,
    "singapore": 495.0,
    "united_states": 380.0,
    "europe": 295.0,
    "brazil": 82.0,
    "iceland": 28.0,
}


def run() -> ExperimentResult:
    """Regenerate Table 6 and check every row verbatim."""
    rows = tuple(
        (region.name, region.ci_g_per_kwh, region.dominant_source)
        for region in REGIONS.values()
    )
    checks = [
        check_close(
            f"{name} grid carbon intensity (g CO2/kWh)",
            REGIONS[name].ci_g_per_kwh,
            expected,
            rel_tol=1e-9,
        )
        for name, expected in PAPER_VALUES.items()
    ]
    coal_heavy = REGIONS["india"].ci_g_per_kwh
    hydro_heavy = REGIONS["iceland"].ci_g_per_kwh
    checks.append(
        check_true(
            "coal-heavy grids are >20x dirtier than hydro-heavy grids",
            coal_heavy / hydro_heavy > 20,
            f"{coal_heavy / hydro_heavy:.1f}x",
            "India (coal) vs Iceland (hydro)",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        table_headers=("region", "g CO2/kWh", "dominant source"),
        table_rows=rows,
        reference={"paper": PAPER_VALUES},
        checks=tuple(checks),
    )
