"""Hardware components whose embodied carbon ACT models (Eq. 3-8).

Each component type knows how to turn its hardware description into grams of
embodied CO2 (excluding IC packaging, which the platform model adds per IC
via ``Nr * Kr``):

* :class:`LogicComponent` — processors/SoCs/ASICs: ``Area × CPA`` (Eq. 4).
* :class:`DramComponent` — DRAM: ``CPS_DRAM × Capacity`` (Eq. 6).
* :class:`SsdComponent` — NAND-flash storage: ``CPS_SSD × Capacity`` (Eq. 8).
* :class:`HddComponent` — magnetic storage: ``CPS_HDD × Capacity`` (Eq. 7).
* :class:`FixedCarbonComponent` — escape hatch for externally characterized
  parts (e.g. an LCA-reported module).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Protocol, runtime_checkable

from repro.core import units
from repro.core.parameters import require_non_negative, require_positive
from repro.data.dram import DramTechnology, dram_technology
from repro.data.hdd import HddModel, hdd_model
from repro.data.ssd import SsdTechnology, ssd_technology
from repro.fabs.fab import FabScenario, default_fab

#: Component categories used for breakdown reporting.
CATEGORY_SOC = "soc"
CATEGORY_DRAM = "dram"
CATEGORY_SSD = "ssd"
CATEGORY_HDD = "hdd"
CATEGORY_OTHER = "other"


@runtime_checkable
class Component(Protocol):
    """Anything whose embodied carbon the platform model can aggregate."""

    name: str
    category: str

    @property
    def ic_count(self) -> int:
        """Number of discrete ICs this component contributes (for Eq. 3's
        packaging term ``Nr * Kr``)."""
        ...

    def embodied_g(self) -> float:
        """Embodied carbon in grams of CO2, excluding packaging."""
        ...


@dataclass(frozen=True)
class LogicComponent:
    """A processor, SoC, or ASIC die (Eq. 4: ``E_SoC = Area × CPA``).

    Attributes:
        name: Display name (e.g. ``"A13 Bionic"``).
        area_mm2: Die area in mm^2.
        fab: Manufacturing scenario; determines CPA via Eq. 5.
        category: Breakdown category; defaults to ``"soc"``.
        ics: Number of discrete packaged dies (usually 1).
    """

    name: str
    area_mm2: float
    fab: FabScenario
    category: str = CATEGORY_SOC
    ics: int = 1

    def __post_init__(self) -> None:
        require_positive("area_mm2", self.area_mm2)
        if self.ics < 0:
            raise ValueError(f"ics must be >= 0, got {self.ics}")

    @classmethod
    def at_node(
        cls,
        name: str,
        area_mm2: float,
        node: str | float,
        *,
        category: str = CATEGORY_SOC,
        ics: int = 1,
    ) -> "LogicComponent":
        """A logic die manufactured in the ACT default fab for ``node``."""
        return cls(name, area_mm2, default_fab(node), category=category, ics=ics)

    @property
    def area_cm2(self) -> float:
        """Die area in cm^2."""
        return units.mm2_to_cm2(self.area_mm2)

    @property
    def ic_count(self) -> int:
        return self.ics

    def cpa_g_per_cm2(self) -> float:
        """Carbon per good area for this die's size and fab (Eq. 5)."""
        return self.fab.cpa_g_per_cm2(self.area_cm2)

    def embodied_g(self) -> float:
        """Eq. 4: die area times carbon-per-area."""
        return self.area_cm2 * self.cpa_g_per_cm2()

    def with_area(self, area_mm2: float) -> "LogicComponent":
        """A copy with a different die area (used by DSE sweeps)."""
        return replace(self, area_mm2=area_mm2)


@dataclass(frozen=True)
class DramComponent:
    """A DRAM package (Eq. 6: ``E_DRAM = CPS_DRAM × Capacity``)."""

    name: str
    capacity_gb: float
    technology: DramTechnology = field(
        default_factory=lambda: dram_technology("lpddr4")
    )
    category: str = CATEGORY_DRAM
    ics: int = 1

    def __post_init__(self) -> None:
        require_non_negative("capacity_gb", self.capacity_gb)

    @classmethod
    def of(
        cls, name: str, capacity_gb: float, technology: str = "lpddr4", ics: int = 1
    ) -> "DramComponent":
        """Build from a named Table 9 technology."""
        return cls(name, capacity_gb, dram_technology(technology), ics=ics)

    @property
    def ic_count(self) -> int:
        return self.ics

    def embodied_g(self) -> float:
        return self.technology.cps_g_per_gb * self.capacity_gb


@dataclass(frozen=True)
class SsdComponent:
    """An SSD / NAND-flash package (Eq. 8: ``E_SSD = CPS_SSD × Capacity``)."""

    name: str
    capacity_gb: float
    technology: SsdTechnology = field(
        default_factory=lambda: ssd_technology("nand_v3_tlc")
    )
    category: str = CATEGORY_SSD
    ics: int = 1

    def __post_init__(self) -> None:
        require_non_negative("capacity_gb", self.capacity_gb)

    @classmethod
    def of(
        cls,
        name: str,
        capacity_gb: float,
        technology: str = "nand_v3_tlc",
        ics: int = 1,
    ) -> "SsdComponent":
        """Build from a named Table 10 technology."""
        return cls(name, capacity_gb, ssd_technology(technology), ics=ics)

    @property
    def ic_count(self) -> int:
        return self.ics

    def embodied_g(self) -> float:
        return self.technology.cps_g_per_gb * self.capacity_gb


@dataclass(frozen=True)
class HddComponent:
    """A hard-disk drive (Eq. 7: ``E_HDD = CPS_HDD × Capacity``)."""

    name: str
    capacity_gb: float
    model: HddModel = field(default_factory=lambda: hdd_model("barracuda"))
    category: str = CATEGORY_HDD
    ics: int = 1

    def __post_init__(self) -> None:
        require_non_negative("capacity_gb", self.capacity_gb)

    @classmethod
    def of(
        cls, name: str, capacity_gb: float, model: str = "barracuda", ics: int = 1
    ) -> "HddComponent":
        """Build from a named Table 11 drive model."""
        return cls(name, capacity_gb, hdd_model(model), ics=ics)

    @property
    def ic_count(self) -> int:
        return self.ics

    def embodied_g(self) -> float:
        return self.model.cps_g_per_gb * self.capacity_gb


@dataclass(frozen=True)
class FixedCarbonComponent:
    """A component with externally characterized embodied carbon.

    Useful for parts ACT does not model bottom-up (batteries, displays,
    enclosures) when assembling device-level comparisons.
    """

    name: str
    carbon_g: float
    category: str = CATEGORY_OTHER
    ics: int = 0

    def __post_init__(self) -> None:
        require_non_negative("carbon_g", self.carbon_g)

    @property
    def ic_count(self) -> int:
        return self.ics

    def embodied_g(self) -> float:
        return self.carbon_g
