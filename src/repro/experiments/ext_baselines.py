"""Extension experiment: ACT vs the prior-work models of Section 2.3.

Makes the paper's qualitative critique quantitative: a GreenChip-style
90-28 nm parametric inventory diverges from ACT's imec-characterized curve
by a growing factor below 28 nm, and exergy (energy-balance) accounting is
structurally blind to fab energy mix.
"""

from __future__ import annotations

from repro.baselines.comparison import exergy_blind_spot, greenchip_vs_act
from repro.experiments.base import (
    ExperimentResult,
    check_close,
    check_in_band,
    check_true,
)
from repro.reporting.figures import FigureData, Series

EXPERIMENT_ID = "ext-baselines"
TITLE = "Extension: quantifying Section 2.3's critique of prior models"


def run() -> ExperimentResult:
    """Compare CPA curves and the exergy blind spot."""
    rows = greenchip_vs_act()
    nodes = tuple(row.node for row in rows)
    figure = FigureData(
        title="Carbon per area: ACT vs a 90-28 nm parametric inventory",
        x_label="process node",
        y_label="g CO2 / cm^2",
        series=(
            Series("ACT", nodes, tuple(r.act_cpa_g_per_cm2 for r in rows)),
            Series("old-inventory baseline", nodes,
                   tuple(r.baseline_cpa_g_per_cm2 for r in rows)),
        ),
    )

    ratios = {row.node: row.act_over_baseline for row in rows}
    blind = exergy_blind_spot()
    growing = ratios["3"] > ratios["7"] > ratios["14"] > ratios["28"]

    checks = (
        check_true(
            "baseline under-predicts at every modern node",
            all(ratio > 1.0 for ratio in ratios.values()),
            f"min ratio {min(ratios.values()):.2f}",
            "ACT/baseline > 1 everywhere",
        ),
        check_true(
            "the gap grows toward advanced nodes",
            growing,
            " -> ".join(f"{ratios[n]:.2f}" for n in ("28", "14", "7", "3")),
            "monotone growth 28nm -> 3nm",
        ),
        check_in_band(
            "divergence at 3nm", ratios["3"], 3.0, 6.0,
        ),
        check_close(
            "exergy cannot separate a dirty fab from a solar fab",
            blind.exergy_separation, 1.0, rel_tol=1e-9,
        ),
        check_in_band(
            "ACT separates the same pair", blind.act_separation, 1.5, 3.0,
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=(figure,),
        reference={
            "paper hook": "Section 2.3: GreenChip builds on 90-28 nm "
            "inventories; exergy ignores renewable energy",
        },
        checks=checks,
    )
