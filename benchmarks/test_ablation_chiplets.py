"""Ablation: chiplet partitioning across die sizes and defect densities.

Checks the crossover structure the Reuse tenet predicts: monolithic wins
for small dies, chiplets win for large dies, and the optimal split count
grows with defect density.
"""

from repro.fabs.chiplets import optimal_partition, partition
from repro.fabs.fab import default_fab
from repro.fabs.yield_models import PoissonYield

DIE_SIZES_MM2 = (50.0, 100.0, 200.0, 400.0, 800.0)
DEFECT_DENSITIES = (0.05, 0.2, 0.6)


def _run_ablation():
    fab = default_fab("7")
    table = {}
    for d0 in DEFECT_DENSITIES:
        model = PoissonYield(d0)
        for area in DIE_SIZES_MM2:
            best = optimal_partition(area, fab, yield_model=model)
            mono = partition(area, 1, fab, yield_model=model)
            table[(d0, area)] = (best.chiplets, mono.total_g / best.total_g)
    return table


def test_bench_ablation_chiplets(benchmark):
    """Optimal split and saving across (defect density, die size)."""
    table = benchmark(_run_ablation)
    print()
    for (d0, area), (chiplets, saving) in sorted(table.items()):
        print(f"D0={d0:4.2f}/cm^2 area={area:6.0f}mm^2 -> "
              f"{chiplets:2d} chiplets, {saving:5.2f}x vs monolithic")
    # Small dies at low defect density stay monolithic.
    assert table[(0.05, 50.0)][0] == 1
    # Reticle-class dies always split, with real savings.
    for d0 in DEFECT_DENSITIES:
        chiplets, saving = table[(d0, 800.0)]
        assert chiplets > 1
        assert saving > 1.2
    # Dirtier processes want at least as many chiplets.
    for area in DIE_SIZES_MM2:
        counts = [table[(d0, area)][0] for d0 in DEFECT_DENSITIES]
        assert counts == sorted(counts)
