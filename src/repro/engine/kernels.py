"""Vectorized Eq. 1-8 kernels over scenario batches.

Each kernel is the array form of one equation of the paper, written so the
math is term-for-term identical to the scalar reference implementation in
:class:`~repro.analysis.scenario.ActScenario` — same operations in the same
order, so batched and scalar results agree to floating-point reproducibility
(the equivalence suite pins them to 1e-9).

The kernels accept plain arrays (or scalars — numpy broadcasting applies),
and :func:`evaluate_batch` runs the whole pipeline over a
:class:`~repro.engine.batch.ScenarioBatch`, returning every intermediate
series in a :class:`BatchResult`.  *How* that pipeline executes is a
pluggable :class:`~repro.engine.backends.KernelBackend` — the functions in
this module are the reference backend's kernels; ``evaluate_batch``
dispatches to whichever backend is selected (explicitly via ``backend=``
or process-wide via :func:`~repro.engine.backends.use_backend`), defaulting
to the reference path so existing callers see identical behavior.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.engine.backends import KernelBackend, resolve_backend
from repro.engine.batch import ScenarioBatch
from repro.obs.context import current_context


def cpa_g_per_cm2(
    ci_fab_g_per_kwh: np.ndarray,
    epa_kwh_per_cm2: np.ndarray,
    gpa_g_per_cm2: np.ndarray,
    mpa_g_per_cm2: np.ndarray,
    fab_yield: np.ndarray,
) -> np.ndarray:
    """Eq. 5: carbon per good cm^2 of silicon."""
    return (
        np.asarray(ci_fab_g_per_kwh, dtype=np.float64) * epa_kwh_per_cm2
        + gpa_g_per_cm2
        + mpa_g_per_cm2
    ) / fab_yield


def soc_embodied_g(area_cm2: np.ndarray, cpa: np.ndarray) -> np.ndarray:
    """Eq. 4: logic-die embodied carbon."""
    return np.asarray(area_cm2, dtype=np.float64) * cpa


def storage_embodied_g(capacity_gb: np.ndarray, cps_g_per_gb: np.ndarray) -> np.ndarray:
    """Eq. 6-8: capacity x carbon-per-size, for DRAM / SSD / HDD alike."""
    return np.asarray(capacity_gb, dtype=np.float64) * cps_g_per_gb


def packaging_g(ic_count: np.ndarray, packaging_g_per_ic: np.ndarray) -> np.ndarray:
    """Eq. 3's ``Nr * Kr`` packaging term."""
    return np.asarray(ic_count, dtype=np.float64) * packaging_g_per_ic


def operational_g(energy_kwh: np.ndarray, ci_use_g_per_kwh: np.ndarray) -> np.ndarray:
    """Eq. 2: use-phase footprint."""
    return np.asarray(energy_kwh, dtype=np.float64) * ci_use_g_per_kwh


def total_g(
    operational: np.ndarray,
    embodied: np.ndarray,
    duration_hours: np.ndarray,
    lifetime_hours: np.ndarray,
) -> np.ndarray:
    """Eq. 1: operational plus lifetime-amortized embodied carbon."""
    amortization = np.asarray(duration_hours, dtype=np.float64) / lifetime_hours
    return operational + amortization * embodied


@dataclass(frozen=True)
class BatchResult:
    """Every Eq. 1-8 output series for one evaluated batch.

    All attributes are arrays of one uniform float dtype aligned with
    the batch's rows — float64 everywhere except results produced by a
    reduced-precision backend (e.g. ``float32``), whose dtype is
    preserved rather than silently widened.  Columns are marked
    read-only so cached results cannot be corrupted.
    """

    operational_g: np.ndarray
    cpa_g_per_cm2: np.ndarray
    soc_embodied_g: np.ndarray
    dram_embodied_g: np.ndarray
    ssd_embodied_g: np.ndarray
    hdd_embodied_g: np.ndarray
    packaging_g: np.ndarray
    embodied_g: np.ndarray
    lifetime_fraction: np.ndarray
    total_g: np.ndarray

    def __post_init__(self) -> None:
        columns = {
            name: np.asarray(getattr(self, name))
            for name in self.__dataclass_fields__
        }
        # Honor a backend's reduced precision only when *every* series
        # carries it; anything mixed or non-float coerces to the float64
        # reference dtype, preserving the historical guarantee.
        dtype = (
            np.dtype(np.float32)
            if all(c.dtype == np.float32 for c in columns.values())
            else np.dtype(np.float64)
        )
        for name, column in columns.items():
            column = np.ascontiguousarray(column, dtype=dtype)
            column.flags.writeable = False
            object.__setattr__(self, name, column)

    def __len__(self) -> int:
        return int(self.total_g.size)

    @property
    def dtype(self) -> np.dtype:
        """The uniform dtype of every output series."""
        return self.total_g.dtype

    @property
    def amortized_embodied_g(self) -> np.ndarray:
        """The embodied share actually charged to the workload (Eq. 1)."""
        return self.lifetime_fraction * self.embodied_g

    @property
    def embodied_share(self) -> np.ndarray:
        """Amortized embodied carbon as a fraction of the total footprint.

        Zero-footprint rows report a share of 0 rather than NaN.
        """
        with np.errstate(invalid="ignore", divide="ignore"):
            share = np.where(
                self.total_g == 0.0,
                0.0,
                self.amortized_embodied_g / self.total_g,
            )
        return share


def evaluate_batch(
    batch: ScenarioBatch,
    backend: "KernelBackend | str | None" = None,
) -> BatchResult:
    """Run Eq. 1-8 over every row of ``batch`` in one vectorized pass.

    Args:
        batch: The scenario batch to evaluate.
        backend: Which :class:`~repro.engine.backends.KernelBackend`
            executes the pass — an instance, a registered name, or
            ``None`` to use the process-wide selection
            (:func:`~repro.engine.backends.current_backend`, default
            ``reference``).

    Under an active :class:`~repro.obs.context.RunContext` the pass is
    recorded as an ``engine.evaluate_batch`` span (tagged with the
    backend name) and the registry accrues ``engine.rows_evaluated`` and
    ``engine.kernel_seconds``; under the default null context the only
    cost is one attribute check and one backend lookup.
    """
    resolved = resolve_backend(backend)
    context = current_context()
    if not context.enabled:
        return resolved.evaluate(batch)
    rows = len(batch)
    started = time.perf_counter()
    with context.span("engine.evaluate_batch", rows=rows, backend=resolved.name):
        result = resolved.evaluate(batch)
    context.count("engine.batches_evaluated")
    context.count("engine.rows_evaluated", rows)
    context.observe("engine.kernel_seconds", time.perf_counter() - started)
    return result


def _evaluate_batch_arrays(batch: ScenarioBatch) -> BatchResult:
    """The uninstrumented Eq. 1-8 kernel pass (the reference backend)."""
    cpa = cpa_g_per_cm2(
        batch.ci_fab_g_per_kwh,
        batch.epa_kwh_per_cm2,
        batch.gpa_g_per_cm2,
        batch.mpa_g_per_cm2,
        batch.fab_yield,
    )
    soc = soc_embodied_g(batch.soc_area_cm2, cpa)
    dram = storage_embodied_g(batch.dram_gb, batch.cps_dram_g_per_gb)
    ssd = storage_embodied_g(batch.ssd_gb, batch.cps_ssd_g_per_gb)
    hdd = storage_embodied_g(batch.hdd_gb, batch.cps_hdd_g_per_gb)
    packaging = packaging_g(batch.ic_count, batch.packaging_g_per_ic)
    # Summed in ActScenario.embodied_g's term order for bit-level parity.
    embodied = packaging + soc + dram + ssd + hdd
    operational = operational_g(batch.energy_kwh, batch.ci_use_g_per_kwh)
    fraction = batch.duration_hours / batch.lifetime_hours
    totals = operational + fraction * embodied
    return BatchResult(
        operational_g=operational,
        cpa_g_per_cm2=cpa,
        soc_embodied_g=soc,
        dram_embodied_g=dram,
        ssd_embodied_g=ssd,
        hdd_embodied_g=hdd,
        packaging_g=packaging,
        embodied_g=embodied,
        lifetime_fraction=fraction,
        total_g=totals,
    )
